//! The facade's unified error type: one enum wrapping every per-module
//! error of the workspace, tagged with pipeline-stage provenance.

use ipr_core::{ConvertError, InPlaceApplyError, ParallelApplyError};
use ipr_delta::codec::{DecodeError, EncodeError};
use ipr_delta::{ApplyError, ComposeError, ScriptError};
use ipr_pipeline::EngineError;
use std::fmt;

/// The pipeline stage an [`Error`] originated from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Script construction / invariant validation.
    Validation,
    /// Serializing a script to wire bytes.
    Encoding,
    /// Parsing wire bytes back into a script.
    Decoding,
    /// Composing consecutive deltas.
    Composition,
    /// In-place conversion (CRWI build, cycle-breaking sort, emission).
    Conversion,
    /// Applying a script (scratch-space, serial in-place, or
    /// wave-parallel).
    Application,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Validation => "validation",
            Stage::Encoding => "encoding",
            Stage::Decoding => "decoding",
            Stage::Composition => "composition",
            Stage::Conversion => "conversion",
            Stage::Application => "application",
        })
    }
}

/// Unified error over the whole workspace: wraps each module's error enum
/// so callers driving the full pipeline match a single type. The wrapped
/// error stays reachable through [`std::error::Error::source`], so
/// existing `source()` chains (e.g. `ConvertError` →
/// `ComponentTooLarge`) are preserved, one level deeper.
///
/// ```
/// use ipr::{Error, Stage};
/// use ipr::delta::{Command, DeltaScript};
///
/// let err: Error = DeltaScript::new(4, 8, vec![Command::copy(0, 0, 4)])
///     .unwrap_err()
///     .into();
/// assert_eq!(err.stage(), Stage::Validation);
/// assert!(err.to_string().contains("validation"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Script invariants violated ([`ScriptError`]).
    Script(ScriptError),
    /// Scratch-space application failed ([`ApplyError`]).
    Apply(ApplyError),
    /// Encoding failed ([`EncodeError`]).
    Encode(EncodeError),
    /// Decoding failed ([`DecodeError`]).
    Decode(DecodeError),
    /// Delta composition failed ([`ComposeError`]).
    Compose(ComposeError),
    /// In-place conversion failed ([`ConvertError`]).
    Convert(ConvertError),
    /// Serial in-place application failed ([`InPlaceApplyError`]).
    InPlaceApply(InPlaceApplyError),
    /// Wave-parallel application failed ([`ParallelApplyError`]).
    ParallelApply(ParallelApplyError),
    /// An [`Engine`](ipr_pipeline::Engine) entry point failed
    /// ([`EngineError`]).
    Engine(EngineError),
}

impl Error {
    /// The pipeline stage this error came from. [`Error::Engine`] reports
    /// the stage of the wrapped failure, not a separate "engine" stage.
    #[must_use]
    pub fn stage(&self) -> Stage {
        match self {
            Error::Script(_) => Stage::Validation,
            Error::Encode(_) => Stage::Encoding,
            Error::Decode(_) => Stage::Decoding,
            Error::Compose(_) => Stage::Composition,
            Error::Convert(_) => Stage::Conversion,
            Error::Apply(_) | Error::InPlaceApply(_) | Error::ParallelApply(_) => {
                Stage::Application
            }
            Error::Engine(e) => match e {
                EngineError::Convert(_) => Stage::Conversion,
                EngineError::Encode(_) => Stage::Encoding,
                EngineError::Compose(_) => Stage::Composition,
                EngineError::Apply(_) => Stage::Application,
            },
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = self.stage();
        match self {
            Error::Script(e) => write!(f, "{stage} failed: {e}"),
            Error::Apply(e) => write!(f, "{stage} failed: {e}"),
            Error::Encode(e) => write!(f, "{stage} failed: {e}"),
            Error::Decode(e) => write!(f, "{stage} failed: {e}"),
            Error::Compose(e) => write!(f, "{stage} failed: {e}"),
            Error::Convert(e) => write!(f, "{stage} failed: {e}"),
            Error::InPlaceApply(e) => write!(f, "{stage} failed: {e}"),
            Error::ParallelApply(e) => write!(f, "{stage} failed: {e}"),
            Error::Engine(e) => write!(f, "{stage} failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Script(e) => Some(e),
            Error::Apply(e) => Some(e),
            Error::Encode(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::Compose(e) => Some(e),
            Error::Convert(e) => Some(e),
            Error::InPlaceApply(e) => Some(e),
            Error::ParallelApply(e) => Some(e),
            Error::Engine(e) => Some(e),
        }
    }
}

macro_rules! impl_from {
    ($($variant:ident($ty:ty)),* $(,)?) => {
        $(impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        })*
    };
}

impl_from!(
    Script(ScriptError),
    Apply(ApplyError),
    Encode(EncodeError),
    Decode(DecodeError),
    Compose(ComposeError),
    Convert(ConvertError),
    InPlaceApply(InPlaceApplyError),
    ParallelApply(ParallelApplyError),
    Engine(EngineError),
);

//! # ipr — In-Place Reconstruction of Delta Compressed Files
//!
//! A Rust implementation of Burns & Long, *"In-Place Reconstruction of Delta
//! Compressed Files"* (PODC 1998), together with every substrate the paper
//! depends on: a delta-compression engine, codeword codecs, a graph toolkit,
//! workload generators and a constrained-device simulator.
//!
//! This facade crate re-exports the member crates of the workspace:
//!
//! * [`delta`] — copy/add command model, differencing engines and codecs.
//! * [`core`] — the paper's contribution: CRWI digraph construction,
//!   cycle-breaking topological sort, copy→add conversion and in-place
//!   appliers.
//! * [`digraph`] — digraph, topological sort, SCC and interval primitives.
//! * [`workloads`] — seeded corpora and the paper's adversarial inputs.
//! * [`device`] — fixed-capacity device with write-before-read fault
//!   detection, plus a transfer-time channel model.
//!
//! # Quickstart
//!
//! ```
//! use ipr::delta::diff::{Differ, GreedyDiffer};
//! use ipr::core::{convert_to_in_place, apply_in_place, ConversionConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let reference = b"the quick brown fox jumps over the lazy dog".to_vec();
//! let version = b"the quick red fox leaps over the lazy dog!".to_vec();
//!
//! // 1. Delta-compress the new version against the reference.
//! let script = GreedyDiffer::new(4).diff(&reference, &version);
//!
//! // 2. Post-process the delta so it can be applied with no scratch space.
//! let outcome = convert_to_in_place(&script, &reference, &ConversionConfig::default())?;
//!
//! // 3. Rebuild the new version in the buffer the old version occupies.
//! let mut buf = reference.clone();
//! buf.resize(version.len().max(reference.len()), 0);
//! apply_in_place(&outcome.script, &mut buf)?;
//! buf.truncate(version.len());
//! assert_eq!(buf, version);
//! # Ok(())
//! # }
//! ```

pub use ipr_core as core;
pub use ipr_delta as delta;
pub use ipr_device as device;
pub use ipr_digraph as digraph;
pub use ipr_workloads as workloads;

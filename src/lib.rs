//! Facade crate re-exporting the workspace: see the README below, which
//! doubles as this crate's documentation (its quickstart compiles as a
//! doctest).
#![doc = include_str!("../README.md")]

pub use ipr_core as core;
pub use ipr_delta as delta;
pub use ipr_device as device;
pub use ipr_digraph as digraph;
pub use ipr_fuzz as fuzz;
pub use ipr_pipeline as pipeline;
pub use ipr_store as store;
pub use ipr_trace as trace;
pub use ipr_workloads as workloads;

mod error;

pub use error::{Error, Stage};
pub use ipr_pipeline::{Engine, EngineConfig, EngineError, InPlaceDelta};

//! Property tests for content-defined chunking boundary stability: a
//! single random insertion or deletion may disturb only the O(1) cut
//! points whose deciding window overlaps the edit — every earlier
//! boundary is untouched and the chunkings re-align at the first cut
//! site they share past the edit.
//!
//! The guarantees tested here require `min >= 64` (the Gear hash's
//! effective window), per the [`CdcParams`] docs; the fuzz oracle
//! separately covers degenerate parameters where re-alignment is only
//! probabilistic.

use ipr::delta::remote::{cut_points, CdcParams};
use proptest::prelude::*;

/// The parameter set under test: small enough that kilobyte inputs
/// span many chunks, with `min` at the 64-byte stability threshold.
const PARAMS: CdcParams = CdcParams {
    min: 64,
    avg: 256,
    max: 1024,
};

/// Generous ceiling on how many boundaries one edit may disturb. The
/// theory says O(1): past the edit, both chunkings cut at the same
/// content-determined sites and disagree only while one suppresses a
/// site inside its post-cut `min` window (probability ~ min/avg = 1/4
/// per site), so disagreement beyond a handful of sites is vanishingly
/// rare. 64 gives the probabilistic tail no realistic way to flake
/// while still failing loudly if an edit ever rewrote boundaries
/// wholesale (a 48 KiB input has ~150 boundaries).
const MAX_DISTURBED: usize = 64;

/// Asserts the stability contract between an original byte string and
/// an edited copy: `edit_pos` is where the files first differ and
/// `shift` is `edited.len() - original.len()` (±1 for single-byte
/// edits).
fn assert_stable(
    original: &[u8],
    edited: &[u8],
    edit_pos: usize,
    label: &str,
) -> Result<(), TestCaseError> {
    let shift = edited.len() as i64 - original.len() as i64;
    let cuts_a = cut_points(original, PARAMS);
    let cuts_b = cut_points(edited, PARAMS);

    // 1. Boundaries strictly before the edit are byte-identical: cut
    //    decisions never look forward, so the shared prefix chunks
    //    identically.
    let prefix_a: Vec<usize> = cuts_a.iter().copied().filter(|&c| c < edit_pos).collect();
    let prefix_b: Vec<usize> = cuts_b.iter().copied().filter(|&c| c < edit_pos).collect();
    prop_assert_eq!(&prefix_a, &prefix_b, "{}: prefix boundaries moved", label);

    // 2. Re-alignment: map the edited file's boundaries back into the
    //    original's coordinates. Once the two sequences share one
    //    boundary past the edit's influence, every boundary after it
    //    must be shared too — the chunkers are in identical states on
    //    identical content.
    let tail_a: Vec<i64> = cuts_a
        .iter()
        .map(|&c| c as i64)
        .filter(|&c| c > edit_pos as i64)
        .collect();
    let tail_b: Vec<i64> = cuts_b
        .iter()
        .map(|&c| c as i64 - shift)
        .filter(|&c| c > edit_pos as i64)
        .collect();
    // Exclude the final (forced, end-of-data) boundary from the resync
    // search: it coincides only when the shift maps it exactly.
    let last_a = *cuts_a.last().unwrap_or(&0) as i64;
    if let Some(&resync) = tail_a.iter().find(|&&c| c < last_a && tail_b.contains(&c)) {
        let after_a: Vec<i64> = tail_a.iter().copied().filter(|&c| c >= resync).collect();
        let after_b: Vec<i64> = tail_b.iter().copied().filter(|&c| c >= resync).collect();
        prop_assert_eq!(
            &after_a,
            &after_b,
            "{}: boundaries diverged again after re-aligning at {}",
            label,
            resync
        );
    }

    // 3. O(1) disturbance: the symmetric difference of the two
    //    boundary sets (edit-shifted) stays under a constant that does
    //    not grow with input length.
    let set_a: std::collections::BTreeSet<i64> = tail_a.iter().copied().collect();
    let set_b: std::collections::BTreeSet<i64> = tail_b.iter().copied().collect();
    let disturbed =
        prefix_a.len().abs_diff(prefix_b.len()) + set_a.symmetric_difference(&set_b).count();
    prop_assert!(
        disturbed <= MAX_DISTURBED,
        "{}: one edit disturbed {} boundaries (of {} / {})",
        label,
        disturbed,
        cuts_a.len(),
        cuts_b.len()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One inserted byte moves only O(1) boundaries.
    #[test]
    fn single_insertion_disturbs_o1_boundaries(
        data in proptest::collection::vec(any::<u8>(), 8_192..49_152),
        pos in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let at = pos.index(data.len());
        let mut edited = data.clone();
        edited.insert(at, byte);
        assert_stable(&data, &edited, at, "insert")?;
    }

    /// One deleted byte moves only O(1) boundaries.
    #[test]
    fn single_deletion_disturbs_o1_boundaries(
        data in proptest::collection::vec(any::<u8>(), 8_192..49_152),
        pos in any::<prop::sample::Index>(),
    ) {
        let at = pos.index(data.len());
        let mut edited = data.clone();
        edited.remove(at);
        assert_stable(&data, &edited, at, "delete")?;
    }

    /// A short inserted run (the common "patch a config value" shape)
    /// still disturbs only O(1) boundaries.
    #[test]
    fn short_run_insertion_disturbs_o1_boundaries(
        data in proptest::collection::vec(any::<u8>(), 8_192..32_768),
        pos in any::<prop::sample::Index>(),
        run in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let at = pos.index(data.len());
        let mut edited = data.clone();
        edited.splice(at..at, run);
        assert_stable(&data, &edited, at, "run-insert")?;
    }
}

/// Deterministic spot check with pinned inputs, so a regression in the
/// Gear table or cut rule fails here with concrete numbers even before
/// the property tests run.
#[test]
fn insertion_in_structured_data_keeps_most_boundaries() {
    let mut x = 0x6a09_e667_f3bc_c908u64;
    let data: Vec<u8> = (0..48 * 1024)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect();
    let cuts = cut_points(&data, PARAMS);
    assert!(cuts.len() > 100, "corpus must span many chunks");

    let mut edited = data.clone();
    edited.splice(24_000..24_000, b"one small edit".iter().copied());
    let cuts_edited = cut_points(&edited, PARAMS);

    let set_a: std::collections::BTreeSet<i64> = cuts.iter().map(|&c| c as i64).collect();
    let set_b: std::collections::BTreeSet<i64> = cuts_edited
        .iter()
        .map(|&c| c as i64 - 14)
        .filter(|&c| c > 24_000)
        .chain(
            cuts_edited
                .iter()
                .map(|&c| c as i64)
                .filter(|&c| c <= 24_000),
        )
        .collect();
    let disturbed = set_a.symmetric_difference(&set_b).count();
    assert!(
        disturbed <= 16,
        "14-byte insertion disturbed {disturbed} of {} boundaries",
        cuts.len()
    );
}

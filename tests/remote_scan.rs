//! Equivalence proptests for the batched weak-scan kernel: the batched
//! generator ([`generate_delta`]) must emit a command stream
//! byte-identical to the byte-at-a-time reference
//! ([`generate_delta_scalar`]) on every input, and the word-batched
//! rolling-checksum machinery it rides on must agree with the naive
//! Adler/Fletcher loop at every window offset.
//!
//! The batched kernel advances eight positions per stride with a
//! closed-form multi-byte roll and consults only the weak presence
//! filter, so the dangerous inputs are exactly the ones exercised here:
//! windows shorter than a block (version tails), miss-runs that end
//! mid-stride, trickle readers that starve the look-ahead, and inputs
//! dense with real matches where the kernel must stop on the first
//! candidate position.

use std::io::Read;

use ipr::delta::remote::{
    generate_delta, generate_delta_scalar, weak_of, CdcParams, Chunking, RollingWeak, Signature,
};
use proptest::prelude::*;

/// The obviously-correct Adler/Fletcher pair the rolling forms must
/// reproduce: two wrapping accumulators over the window, low halves
/// packed into one digest.
fn naive_weak(window: &[u8]) -> u32 {
    let mut a = 0u32;
    let mut b = 0u32;
    for &x in window {
        a = a.wrapping_add(u32::from(x));
        b = b.wrapping_add(a);
    }
    (a & 0xffff) | (b << 16)
}

/// A reader that yields at most `chunk` bytes per call, forcing the
/// stream window to refill incrementally and the batched scan to cope
/// with look-ahead arriving in dribs.
struct Trickle<'a> {
    data: &'a [u8],
    chunk: usize,
}

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.data.len().min(self.chunk).min(buf.len());
        buf[..n].copy_from_slice(&self.data[..n]);
        self.data = &self.data[n..];
        Ok(n)
    }
}

/// Reference/version pairs in the regime the kernel must get right:
/// the version interleaves runs copied from the reference (so weak
/// matches and filter hits occur) with fresh literal runs (so miss-runs
/// of every length appear), at arbitrary alignments.
fn correlated_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        proptest::collection::vec(any::<u8>(), 1..2000),
        proptest::collection::vec(any::<u8>(), 0..200),
        proptest::collection::vec((any::<u16>(), any::<u8>(), any::<bool>()), 1..12),
    )
        .prop_map(|(reference, noise, plan)| {
            let mut version = Vec::new();
            for (salt, len_salt, from_reference) in plan {
                let len = 1 + usize::from(len_salt);
                if from_reference {
                    let start = salt as usize % reference.len();
                    let end = (start + len).min(reference.len());
                    version.extend_from_slice(&reference[start..end]);
                } else if !noise.is_empty() {
                    for i in 0..len {
                        version.push(noise[(salt as usize + i) % noise.len()]);
                    }
                }
            }
            (reference, version)
        })
}

proptest! {
    /// The word-batched reseed and the scalar roll agree with the naive
    /// loop at every offset: seed once, roll across the whole buffer,
    /// and compare each window's digest against both the naive pair and
    /// a fresh `weak_of` seed.
    #[test]
    fn rolled_digests_match_naive_at_every_offset(
        data in proptest::collection::vec(any::<u8>(), 1..600),
        window_salt in any::<u16>(),
    ) {
        let window = 1 + window_salt as usize % data.len().min(96);
        let mut weak = RollingWeak::new();
        weak.reseed(&data[..window]);
        for start in 0..=data.len() - window {
            let expect = naive_weak(&data[start..start + window]);
            prop_assert_eq!(weak.digest(), expect, "rolled digest at offset {}", start);
            prop_assert_eq!(weak_of(&data[start..start + window]), expect);
            if start + window < data.len() {
                weak.roll(data[start], data[start + window]);
            }
        }
    }

    /// Batched and scalar generators emit identical command streams on
    /// fixed-block signatures, across block sizes that leave
    /// shorter-than-block version tails and references with tail blocks.
    #[test]
    fn batched_matches_scalar_on_fixed_blocks(
        (reference, version) in correlated_pair(),
        block_salt in any::<u8>(),
    ) {
        let block_len = [16, 24, 32, 64, 128][block_salt as usize % 5];
        let signature = Signature::build(&reference, Chunking::Fixed(block_len)).unwrap();
        let batched = generate_delta(&signature, &version[..]).unwrap();
        let scalar = generate_delta_scalar(&signature, &version[..]).unwrap();
        prop_assert_eq!(batched.commands(), scalar.commands());
        prop_assert_eq!(ipr::delta::apply(&batched, &reference).unwrap(), version);
    }

    /// Trickle readers — including single-byte reads, reads smaller
    /// than the eight-lane stride, and reads that straddle it — never
    /// change the emitted commands relative to a whole-slice read.
    #[test]
    fn trickle_reads_match_slice_reads(
        (reference, version) in correlated_pair(),
        chunk_salt in any::<u8>(),
    ) {
        let chunk = [1, 3, 7, 8, 9, 64][chunk_salt as usize % 6];
        let signature = Signature::build(&reference, Chunking::Fixed(32)).unwrap();
        let whole = generate_delta(&signature, &version[..]).unwrap();
        let trickled = generate_delta(&signature, Trickle { data: &version, chunk }).unwrap();
        let scalar_trickled =
            generate_delta_scalar(&signature, Trickle { data: &version, chunk }).unwrap();
        prop_assert_eq!(whole.commands(), trickled.commands());
        prop_assert_eq!(whole.commands(), scalar_trickled.commands());
    }

    /// Content-defined chunking routes around the batched kernel, so
    /// the two generators must stay equal there too — across every CDC
    /// preset the suite uses, including the library default.
    #[test]
    fn batched_matches_scalar_on_cdc_presets(
        (reference, version) in correlated_pair(),
        preset_salt in any::<u8>(),
    ) {
        let params = [
            CdcParams { min: 64, avg: 256, max: 1024 },
            CdcParams { min: 128, avg: 512, max: 4096 },
            CdcParams::default(),
        ][preset_salt as usize % 3];
        let signature = Signature::build(&reference, Chunking::Cdc(params)).unwrap();
        let batched = generate_delta(&signature, &version[..]).unwrap();
        let scalar = generate_delta_scalar(&signature, &version[..]).unwrap();
        prop_assert_eq!(batched.commands(), scalar.commands());
        prop_assert_eq!(ipr::delta::apply(&batched, &reference).unwrap(), version);
    }
}

/// Deterministic stress along the batch boundary: versions sized to end
/// exactly at, one before, and one after every multiple of the
/// eight-lane stride around a block edge, against a reference whose
/// tail block is short.
#[test]
fn batch_boundary_tails_match_scalar() {
    let reference: Vec<u8> = (0..1000u32)
        .map(|i| (i.wrapping_mul(193) >> 3) as u8)
        .collect();
    let signature = Signature::build(&reference, Chunking::Fixed(64)).unwrap();
    for end in (56..=80).chain(120..=136) {
        let mut version = reference[3..3 + end].to_vec();
        version[end / 2] ^= 0x5a;
        let batched = generate_delta(&signature, &version[..]).unwrap();
        let scalar = generate_delta_scalar(&signature, &version[..]).unwrap();
        assert_eq!(batched.commands(), scalar.commands(), "version len {end}");
        assert_eq!(ipr::delta::apply(&batched, &reference).unwrap(), version);
    }
}

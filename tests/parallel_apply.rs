//! Property tests for the wave-parallel applier: bitwise equivalence with
//! the serial applier across random scripts, thread counts 1–8, both read
//! modes, and adversarial intra-wave orderings; plus the Fig. 3
//! quadratic-edge workload and an all-adds script as fixed cases.

use ipr::core::{
    apply_in_place, apply_in_place_parallel, apply_schedule_parallel, convert_to_in_place,
    required_capacity, ConversionConfig, ParallelConfig, ParallelSchedule, ReadMode,
};
use ipr::delta::diff::{Differ, GreedyDiffer};
use ipr::delta::{Command, DeltaScript};
use proptest::prelude::*;

/// A version derived from a reference by random edit operations (same
/// shape as tests/properties.rs): realistically compressible pairs whose
/// converted scripts have non-trivial wave structure.
fn edited_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    let reference = proptest::collection::vec(any::<u8>(), 0..2048);
    let edits = proptest::collection::vec(
        (
            0u8..5,
            any::<prop::sample::Index>(),
            1usize..200,
            any::<u8>(),
        ),
        0..8,
    );
    (reference, edits).prop_map(|(reference, edits)| {
        let mut version = reference.clone();
        for (op, pos, len, val) in edits {
            if version.is_empty() {
                version.extend(std::iter::repeat_n(val, len));
                continue;
            }
            let at = pos.index(version.len());
            match op {
                0 => version[at] = val,
                1 => {
                    let block: Vec<u8> = (0..len).map(|i| val.wrapping_add(i as u8)).collect();
                    version.splice(at..at, block);
                }
                2 => {
                    let end = (at + len).min(version.len());
                    version.drain(at..end);
                }
                3 => {
                    let end = (at + len).min(version.len());
                    let block: Vec<u8> = version.drain(at..end).collect();
                    let dst = if version.is_empty() {
                        0
                    } else {
                        pos.index(version.len() + 1)
                    };
                    version.splice(dst..dst, block);
                }
                _ => {
                    let end = (at + len).min(version.len());
                    let block: Vec<u8> = version[at..end].to_vec();
                    version.extend(block);
                }
            }
        }
        (reference, version)
    })
}

/// Serial oracle: the result of `apply_in_place` in the full-capacity
/// buffer, truncated to the target.
fn serial_oracle(script: &DeltaScript, reference: &[u8]) -> Vec<u8> {
    let mut buf = reference.to_vec();
    buf.resize(required_capacity(script) as usize, 0);
    apply_in_place(script, &mut buf).expect("serial apply");
    buf.truncate(script.target_len() as usize);
    buf
}

/// Runs the parallel applier and returns the rebuilt target.
fn parallel_result(script: &DeltaScript, reference: &[u8], config: &ParallelConfig) -> Vec<u8> {
    let mut buf = reference.to_vec();
    buf.resize(required_capacity(script) as usize, 0);
    apply_in_place_parallel(script, &mut buf, config).expect("parallel apply");
    buf.truncate(script.target_len() as usize);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel application is bitwise-identical to serial application
    /// for every thread count 1–8 and both read modes, with the
    /// small-wave serial threshold disabled so the thread fan-out path is
    /// actually exercised.
    #[test]
    fn parallel_matches_serial(
        (reference, version) in edited_pair(),
        threads in 1usize..=8,
    ) {
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let expected = serial_oracle(&out.script, &reference);
        prop_assert_eq!(&expected, &version, "serial oracle rebuilds the version");
        for read_mode in [ReadMode::ZeroCopy, ReadMode::Snapshot] {
            let config = ParallelConfig { threads, read_mode, serial_wave_bytes: 0 };
            prop_assert_eq!(
                &parallel_result(&out.script, &reference, &config),
                &expected,
                "threads={} mode={:?}", threads, read_mode
            );
        }
    }

    /// Intra-wave command order is irrelevant: adversarially permuted
    /// schedules produce the identical target.
    #[test]
    fn permuted_waves_match_serial(
        (reference, version) in edited_pair(),
        seed in any::<u64>(),
        threads in 1usize..=8,
    ) {
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let expected = serial_oracle(&out.script, &reference);
        let plan = ParallelSchedule::plan(&out.script).expect("converted script is safe");
        let shuffled = plan.permuted_within_waves(seed);
        let config = ParallelConfig { threads, read_mode: ReadMode::ZeroCopy, serial_wave_bytes: 0 };
        let mut buf = reference.clone();
        buf.resize(required_capacity(&out.script) as usize, 0);
        apply_schedule_parallel(&out.script, &shuffled, &mut buf, &config).unwrap();
        prop_assert_eq!(&buf[..version.len()], &expected[..]);
    }

    /// The default configuration (auto threads, zero-copy, serial
    /// threshold on) is equivalent too.
    #[test]
    fn default_config_matches_serial((reference, version) in edited_pair()) {
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let expected = serial_oracle(&out.script, &reference);
        prop_assert_eq!(
            &parallel_result(&out.script, &reference, &ParallelConfig::default()),
            &expected
        );
    }
}

/// The Fig. 3 quadratic-edge construction — the densest CRWI digraph the
/// paper exhibits — applies identically in parallel at every thread count.
#[test]
fn quadratic_edge_workload_matches_serial() {
    let case = ipr::workloads::adversarial::quadratic_edges(32);
    let out = convert_to_in_place(&case.script, &case.reference, &ConversionConfig::default())
        .expect("conversion cannot fail");
    let expected = serial_oracle(&out.script, &case.reference);
    assert_eq!(expected, case.version);
    for threads in 1..=8 {
        for read_mode in [ReadMode::ZeroCopy, ReadMode::Snapshot] {
            let config = ParallelConfig {
                threads,
                read_mode,
                serial_wave_bytes: 0,
            };
            assert_eq!(
                parallel_result(&out.script, &case.reference, &config),
                expected,
                "threads={threads} mode={read_mode:?}"
            );
        }
    }
}

/// A script that is nothing but adds (no reads at all) runs in one wave
/// and parallelizes trivially.
#[test]
fn all_adds_script_matches_serial() {
    let chunks: Vec<Command> = (0..64u64)
        .map(|i| Command::add(i * 128, vec![(i % 251) as u8; 128]))
        .collect();
    let script = DeltaScript::new(256, 64 * 128, chunks).unwrap();
    let reference = vec![0xEEu8; 256];
    let expected = serial_oracle(&script, &reference);
    for threads in [1usize, 2, 4, 8] {
        let config = ParallelConfig {
            threads,
            read_mode: ReadMode::ZeroCopy,
            serial_wave_bytes: 0,
        };
        assert_eq!(parallel_result(&script, &reference, &config), expected);
    }
}

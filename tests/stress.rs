//! Long-running randomized differential stress across the whole pipeline.
//!
//! Ignored by default; run with
//! `cargo test --test stress -- --ignored --nocapture` (or set
//! `IPR_STRESS_ITERS` to scale the workload). Every iteration draws a
//! seeded random file pair and drives diff → convert (all policies) →
//! encode (all formats) → decode → apply (scratch, in-place, buffered,
//! resumable, spilled, device) and cross-checks every path byte-for-byte.

use ipr::core::resumable::{resume_in_place, Journal, Progress};
use ipr::core::spill::{apply_in_place_spilled, convert_with_spill, SpillConfig};
use ipr::core::{
    apply_in_place, apply_in_place_buffered, check_in_place_safe, convert_to_in_place,
    required_capacity, ConversionConfig, CyclePolicy,
};
use ipr::delta::codec::{decode, encode, Format};
use ipr::delta::diff::{CorrectingDiffer, Differ, GreedyDiffer, OnePassDiffer, WindowedDiffer};
use ipr::device::Device;
use ipr::workloads::content::{generate, ContentKind};
use ipr::workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn iterations() -> u64 {
    std::env::var("IPR_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

#[test]
#[ignore = "long-running; opt in with --ignored"]
fn full_pipeline_differential_stress() {
    let iters = iterations();
    for seed in 0..iters {
        stress_one(seed);
        if seed % 10 == 9 {
            println!("stress: {}/{iters} seeds OK", seed + 1);
        }
    }
}

fn stress_one(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let kind = if rng.random_bool(0.5) {
        ContentKind::SourceLike
    } else {
        ContentKind::BinaryLike
    };
    let len = rng.random_range(256..64 * 1024);
    let reference = generate(&mut rng, kind, len);
    let profile = match seed % 4 {
        0 => MutationProfile::aligned(),
        1 => MutationProfile::light(),
        2 => MutationProfile::default(),
        _ => MutationProfile::heavy(),
    };
    let version = mutate(&mut rng, &reference, &profile);

    let differs: [&dyn Differ; 4] = [
        &GreedyDiffer::default(),
        &OnePassDiffer::default(),
        &CorrectingDiffer::default(),
        &WindowedDiffer::new(GreedyDiffer::default(), 8 * 1024, 2 * 1024),
    ];
    let differ = differs[(seed % 4) as usize];
    let script = differ.diff(&reference, &version);
    assert_eq!(
        ipr::delta::apply(&script, &reference).unwrap(),
        version,
        "seed {seed}: {} differ wrong",
        differ.name()
    );

    let policy = if seed.is_multiple_of(2) {
        CyclePolicy::LocallyMinimum
    } else {
        CyclePolicy::ConstantTime
    };
    let out =
        convert_to_in_place(&script, &reference, &ConversionConfig::with_policy(policy)).unwrap();
    check_in_place_safe(&out.script).unwrap();
    let capacity = required_capacity(&out.script) as usize;

    // In-place and buffered appliers.
    let mut a = reference.clone();
    a.resize(capacity, 0);
    apply_in_place(&out.script, &mut a).unwrap();
    assert_eq!(&a[..version.len()], &version[..], "seed {seed}: in-place");
    let chunk = rng.random_range(1..4096);
    let mut b = reference.clone();
    b.resize(capacity, 0);
    apply_in_place_buffered(&out.script, &mut b, chunk).unwrap();
    assert_eq!(a, b, "seed {seed}: buffered chunk {chunk}");

    // Resumable applier with random fuel.
    let mut c = reference.clone();
    c.resize(capacity, 0);
    let mut journal = Journal::new();
    let fuel = rng.random_range(1..10_000u64);
    while resume_in_place(&out.script, &mut c, &mut journal, 512, fuel).unwrap()
        == Progress::Suspended
    {}
    assert_eq!(a, c, "seed {seed}: resumable fuel {fuel}");

    // Spilled conversion with a random budget.
    let budget = rng.random_range(0..8 * 1024u64);
    let spilled = convert_with_spill(
        &script,
        &reference,
        &SpillConfig {
            conversion: ConversionConfig::with_policy(policy),
            scratch_budget: budget,
        },
    )
    .unwrap();
    let mut d = reference.clone();
    d.resize(required_capacity(&spilled.script) as usize, 0);
    apply_in_place_spilled(&spilled.script, &spilled.stashed, &mut d, budget).unwrap();
    assert_eq!(
        &d[..version.len()],
        &version[..],
        "seed {seed}: spilled {budget}"
    );

    // Codec round trip of the converted delta.
    let format = [Format::InPlace, Format::PaperInPlace, Format::Improved][(seed % 3) as usize];
    let wire = encode(&out.script, format).unwrap();
    let decoded = decode(&wire).unwrap();
    let mut e = reference.clone();
    e.resize(required_capacity(&decoded.script) as usize, 0);
    apply_in_place(&decoded.script, &mut e).unwrap();
    assert_eq!(&e[..version.len()], &version[..], "seed {seed}: {format}");

    // Checked device application.
    let mut device = Device::new(capacity);
    device.flash(&reference).unwrap();
    device.apply_update(&out.script).unwrap();
    assert_eq!(device.image(), &version[..], "seed {seed}: device");
}

#[test]
fn short_stress_smoke() {
    // A cut-down always-on version so regressions surface in CI even when
    // nobody runs --ignored.
    for seed in [0u64, 1, 2, 3] {
        stress_one(seed);
    }
}

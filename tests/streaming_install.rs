//! End-to-end resumable streaming installs: kill-at-every-chunk-boundary
//! crash sweeps (mirroring `store_crash.rs` for the OTA path), lossy
//! channel determinism and retransmission accounting, and proptests over
//! random image pairs.

use ipr::device::{
    stream_install, Channel, Device, InstallCheckpoint, LossyChannel, StreamProgress,
};
use ipr::pipeline::DeltaStream;
use ipr::Engine;
use proptest::prelude::*;
use std::time::Duration;

fn pair() -> (Vec<u8>, Vec<u8>) {
    let v1: Vec<u8> = (0..24_000u32).map(|i| (i * 31 % 253) as u8).collect();
    let mut v2 = v1.clone();
    v2.rotate_left(3000);
    for i in (0..v2.len()).step_by(151) {
        v2[i] = v2[i].wrapping_add(17);
    }
    (v1, v2)
}

fn prepared(reference: &[u8], version: &[u8], chunk: usize) -> DeltaStream {
    Engine::new()
        .stream_update(reference, version, chunk)
        .expect("prepare streaming update")
}

fn flashed(reference: &[u8], version: &[u8]) -> Device {
    let mut device = Device::new(reference.len().max(version.len()));
    device.flash(reference).expect("flash reference");
    device
}

#[test]
fn lossy_channel_is_deterministic_per_seed() {
    let base = Channel::dialup();
    for loss in [0.0, 0.1, 0.4] {
        for seed in [0u64, 7, 0xdead_beef] {
            let a = LossyChannel::new(base, loss, seed).simulate_transfer(100_000, 576);
            let b = LossyChannel::new(base, loss, seed).simulate_transfer(100_000, 576);
            assert_eq!(a, b, "loss {loss} seed {seed}");
        }
    }
    // Different seeds explore different loss patterns (at a rate where
    // at least one retransmission is effectively certain).
    let a = LossyChannel::new(base, 0.4, 1).simulate_transfer(1_000_000, 576);
    let b = LossyChannel::new(base, 0.4, 2).simulate_transfer(1_000_000, 576);
    assert_ne!(
        (a.time, a.retransmissions),
        (b.time, b.retransmissions),
        "independent seeds produced identical loss patterns"
    );
}

#[test]
fn retransmission_accounting_matches_the_report() {
    // With the payload a multiple of the MTU every frame costs the same,
    // so the report must satisfy the exact identity
    //   time == (frames + retransmissions) * transfer_time(mtu).
    let base = Channel::isdn();
    let mtu = 500usize;
    let bytes = 50_000u64; // 100 full frames
    for (loss, seed) in [(0.0, 1u64), (0.05, 2), (0.25, 3), (0.6, 4)] {
        let report = LossyChannel::new(base, loss, seed).simulate_transfer(bytes, mtu);
        assert_eq!(report.frames, bytes / mtu as u64, "loss {loss}");
        let per_frame = base.transfer_time(mtu as u64);
        assert_eq!(
            report.time,
            per_frame * u32::try_from(report.frames + report.retransmissions).unwrap(),
            "loss {loss}: time does not match per-frame accounting"
        );
        if loss == 0.0 {
            assert_eq!(report.retransmissions, 0);
        }
    }
}

#[test]
fn kill_at_every_chunk_boundary_resumes_byte_identical() {
    let (v1, v2) = pair();
    let chunk = 96usize;
    let stream = prepared(&v1, &v2, chunk);
    let total_chunks = stream.wire_len().div_ceil(chunk as u64);
    assert!(total_chunks > 8, "sweep needs several boundaries");
    let channel = LossyChannel::new(Channel::dialup(), 0.05, 9);

    for kill_at in 1..=total_chunks {
        let mut device = flashed(&v1, &v2);
        let progress = stream_install(&mut device, &stream, channel, 576, None, Some(kill_at))
            .expect("first power cycle");
        if let StreamProgress::Killed { checkpoint, .. } = progress {
            // Round-trip the checkpoint through its wire form, as a
            // device persisting it to flash would.
            let restored = checkpoint
                .map(|c| InstallCheckpoint::decode(&c.encode()).expect("checkpoint round-trips"));
            let resumed =
                stream_install(&mut device, &stream, channel, 576, restored.as_ref(), None)
                    .expect("resumed power cycle");
            assert!(
                matches!(resumed, StreamProgress::Complete(_)),
                "kill at {kill_at}: resume did not complete"
            );
        }
        assert_eq!(device.image(), &v2[..], "kill at {kill_at}");
    }
}

#[test]
fn streaming_beats_download_then_apply_to_first_byte() {
    // The whole point of streaming: reconstruction starts while the
    // delta is still on the wire. Time-to-first-reconstructed-byte must
    // come in under the full transfer time of download-then-apply.
    let (v1, v2) = pair();
    let stream = prepared(&v1, &v2, 512);
    let channel = LossyChannel::new(Channel::dialup(), 0.0, 1);
    let mut device = flashed(&v1, &v2);
    let StreamProgress::Complete(report) =
        stream_install(&mut device, &stream, channel, 576, None, None).expect("install")
    else {
        panic!("no kill requested");
    };
    let download_then_apply = channel.simulate_transfer(stream.wire_len(), 576).time;
    let ttfb = report.time_to_first_byte.expect("commands were applied");
    assert!(
        ttfb < download_then_apply,
        "streaming first byte at {ttfb:?}, download-then-apply needs {download_then_apply:?}"
    );
    assert!(report.commands_pre_eof > 0);
    assert!(report.transfer_time > Duration::ZERO);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random image pairs, chunkings and loss rates: a kill at every
    /// chunk boundary, resumed through a serialized checkpoint, must
    /// converge to the same bytes as an uninterrupted install — and
    /// replaying a checkpoint on a copy of the flash is idempotent.
    #[test]
    fn random_pairs_survive_boundary_kills(
        reference in proptest::collection::vec(any::<u8>(), 1..2048),
        edits in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..24),
        rotate in any::<prop::sample::Index>(),
        chunk in 16usize..256,
        loss_seed in any::<u64>(),
        lossy_run in any::<bool>(),
    ) {
        let mut version = reference.clone();
        let pivot = rotate.index(version.len().max(1));
        version.rotate_left(pivot);
        for (at, value) in &edits {
            let i = at.index(version.len());
            version[i] = *value;
        }
        let stream = prepared(&reference, &version, chunk);
        let loss = if lossy_run { 0.05 } else { 0.0 };
        let channel = LossyChannel::new(Channel::cellular(), loss, loss_seed);
        let total_chunks = stream.wire_len().div_ceil(chunk as u64).max(1);

        for kill_at in 1..=total_chunks {
            let mut device = flashed(&reference, &version);
            let progress =
                stream_install(&mut device, &stream, channel, 576, None, Some(kill_at))
                    .expect("first power cycle");
            if let StreamProgress::Killed { checkpoint, .. } = progress {
                let restored = checkpoint.map(|c| {
                    InstallCheckpoint::decode(&c.encode()).expect("round trip")
                });
                // Journal/checkpoint replay is idempotent: the same
                // checkpoint driven over two copies of the same flash
                // converges to identical images.
                let mut replica = device.clone();
                for dev in [&mut device, &mut replica] {
                    let done =
                        stream_install(dev, &stream, channel, 576, restored.as_ref(), None)
                            .expect("resumed power cycle");
                    prop_assert!(matches!(done, StreamProgress::Complete(_)));
                }
                prop_assert_eq!(device.image(), replica.image());
            }
            prop_assert_eq!(device.image(), &version[..], "kill at {}", kill_at);
        }
    }
}

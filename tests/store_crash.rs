//! Deterministic crash-injection sweep over the object store's
//! transaction layer, with real process kills.
//!
//! The transaction layer brackets every fsync and rename with numbered
//! durability boundaries (`ipr::store::fault`). This test re-executes
//! its own binary as a child per kill point: the child opens a
//! pristine copy of a prepared store, performs one operation (`put` or
//! `compact`) with `IPR_STORE_KILL=<n>` armed, and is killed by
//! `process::exit` at the n-th boundary — no unwinding, no destructors,
//! exactly what a power cut leaves behind. The parent then requires of
//! every crashed copy:
//!
//! * `fsck` runs, and two consecutive runs print identical findings
//!   (repair advice is reproducible);
//! * `fsck --repair` converges: no corruption, everything repairable
//!   repaired, and a rerun is clean;
//! * every version committed before the operation reconstructs
//!   byte-identically;
//! * if the crash landed past the commit point (the manifest swap),
//!   the new state is complete too — no committed object is ever lost.
//!
//! The sweep ends when a kill point lies beyond the operation's last
//! boundary and the child exits cleanly. CI runs this as the
//! `store-smoke` job.

use ipr::store::fault::{KILL_ENV, KILL_EXIT_CODE};
use ipr::store::{fsck, scratch_dir, Oid, Store};
use std::path::Path;
use std::process::Command;

const DIR_ENV: &str = "IPR_STORE_CRASH_DIR";
const OP_ENV: &str = "IPR_STORE_CRASH_OP";

/// The history both parent and child derive independently: enough
/// versions for real chains, drifting content so deltas pay off.
fn history() -> Vec<Vec<u8>> {
    (0u8..5)
        .map(|v| {
            (0..8192u32)
                .map(|i| {
                    let base = (i as u8).wrapping_mul(31).wrapping_add(7);
                    // Each version rewrites a sliding window and appends
                    // a version-tagged tail.
                    if i % 11 == u32::from(v) % 11 {
                        base ^ v.wrapping_mul(5)
                    } else {
                        base
                    }
                })
                .chain((0..64).map(|i| v.wrapping_add(i)))
                .collect()
        })
        .collect()
}

/// The child's half: run one operation on the prepared store with the
/// kill armed via the environment. Runs only when spawned by the sweep
/// (the guard env var is absent under a normal `cargo test`).
#[test]
#[ignore = "crash-sweep child; spawned by the sweep tests with IPR_STORE_CRASH_DIR set"]
fn crash_child() {
    let Some(dir) = std::env::var_os(DIR_ENV) else {
        return;
    };
    let op = std::env::var(OP_ENV).expect("sweep sets the operation");
    let mut store = Store::open(Path::new(&dir)).expect("child opens the prepared store");
    match op.as_str() {
        "put" => {
            let last = history().pop().expect("non-empty history");
            store
                .put(&last, None)
                .expect("put completes when not killed");
        }
        "compact" => {
            store.compact().expect("compact completes when not killed");
        }
        other => panic!("unknown crash op {other}"),
    }
}

/// Recursively copies the pristine store so every kill point starts
/// from the identical pre-operation state.
fn copy_store(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy root");
    for entry in std::fs::read_dir(from).expect("read store dir") {
        let entry = entry.expect("dir entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_store(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy store file");
        }
    }
}

fn render_findings(report: &ipr::store::FsckReport) -> Vec<String> {
    report.findings.iter().map(ToString::to_string).collect()
}

/// Everything the parent demands of one crashed store copy.
fn assert_crash_recoverable(root: &Path, kill: u64, committed: &[(Oid, Vec<u8>)]) {
    // Repair advice must be reproducible: two sweeps, identical lines.
    let first = fsck(root, false).unwrap_or_else(|e| panic!("kill {kill}: fsck failed: {e}"));
    let second =
        fsck(root, false).unwrap_or_else(|e| panic!("kill {kill}: fsck rerun failed: {e}"));
    assert_eq!(
        render_findings(&first),
        render_findings(&second),
        "kill {kill}: fsck findings not reproducible"
    );
    assert!(
        !first.has_corruption(),
        "kill {kill}: a crash mid-transaction corrupted committed state: {:?}",
        first.findings
    );

    // Repair converges to a clean store.
    let repair = fsck(root, true).unwrap_or_else(|e| panic!("kill {kill}: repair failed: {e}"));
    assert!(
        repair.fully_repaired() && !repair.has_corruption(),
        "kill {kill}: repair did not converge: {:?}",
        repair.findings
    );
    let clean = fsck(root, false).unwrap_or_else(|e| panic!("kill {kill}: post-repair: {e}"));
    assert!(
        clean.is_clean(),
        "kill {kill}: store not clean after repair: {:?}",
        clean.findings
    );

    // No committed object lost: everything durable before the crash
    // reads back byte-identically; anything the crashed operation got
    // far enough to commit does too (fsck's reconstruction sweep above
    // already walked every version the manifest knows).
    let mut store = Store::open(root).unwrap_or_else(|e| panic!("kill {kill}: reopen failed: {e}"));
    for (oid, want) in committed {
        let got = store
            .get(*oid)
            .unwrap_or_else(|e| panic!("kill {kill}: committed version {oid} lost: {e}"));
        assert_eq!(&got, want, "kill {kill}: committed version {oid} drifted");
    }
}

/// Drives the sweep for one operation: prepare a pristine store, then
/// kill a fresh copy's child at boundary 1, 2, … until the child
/// outruns the kill. Returns the number of kill points exercised.
fn sweep(op: &str, prepare: impl Fn(&mut Store) -> Vec<(Oid, Vec<u8>)>) -> u64 {
    let pristine = scratch_dir(&std::env::temp_dir(), &format!("crash-{op}-pristine"));
    let committed = {
        let mut store = Store::init(&pristine, 2).expect("init pristine store");
        prepare(&mut store)
    };

    let exe = std::env::current_exe().expect("own test binary");
    let mut kill = 0u64;
    loop {
        kill += 1;
        assert!(
            kill < 200,
            "sweep did not terminate; boundary counting broken?"
        );
        let copy = scratch_dir(&std::env::temp_dir(), &format!("crash-{op}-{kill}"));
        copy_store(&pristine, &copy);

        // Output is captured so the sweep's own log stays readable; it
        // resurfaces in the panic message when a child misbehaves.
        let out = Command::new(&exe)
            .args(["--exact", "crash_child", "--ignored"])
            .env(KILL_ENV, kill.to_string())
            .env(DIR_ENV, &copy)
            .env(OP_ENV, op)
            .output()
            .expect("spawn crash child");

        match out.status.code() {
            Some(code) if code == KILL_EXIT_CODE => {
                assert_crash_recoverable(&copy, kill, &committed);
                std::fs::remove_dir_all(&copy).ok();
            }
            Some(0) => {
                // The operation finished before boundary `kill`: the
                // sweep has covered every crash point. The completed
                // copy must simply be a healthy store.
                let report = fsck(&copy, false).expect("fsck of completed store");
                assert!(
                    report.is_clean(),
                    "completed run not clean: {:?}",
                    report.findings
                );
                std::fs::remove_dir_all(&copy).ok();
                break;
            }
            other => panic!(
                "kill {kill}: child exited with {other:?}, not a kill or success\n\
                 --- child stdout ---\n{}\n--- child stderr ---\n{}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            ),
        }
    }
    std::fs::remove_dir_all(&pristine).ok();
    kill - 1
}

#[test]
fn put_survives_a_kill_at_every_boundary() {
    let swept = sweep("put", |store| {
        let mut history = history();
        history.pop(); // the child puts the last version
        history
            .iter()
            .map(|v| (store.put(v, None).expect("prepare put").oid, v.clone()))
            .collect()
    });
    // Sanity floor: a put commits through a journal write, object
    // stage + publish, manifest swap and directory syncs — if the
    // sweep saw almost no boundaries, the instrumentation is broken.
    assert!(swept >= 10, "put crossed only {swept} boundaries");
}

#[test]
fn compact_survives_a_kill_at_every_boundary() {
    let swept = sweep("compact", |store| {
        history()
            .iter()
            .map(|v| (store.put(v, None).expect("prepare put").oid, v.clone()))
            .collect()
    });
    assert!(swept >= 10, "compact crossed only {swept} boundaries");
}

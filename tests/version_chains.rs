//! Sequential release chains applied hop by hop to a single device: the
//! realistic distribution pattern (a device several releases behind
//! catches up through consecutive in-place updates).

use ipr::core::ConversionConfig;
use ipr::delta::codec::Format;
use ipr::delta::diff::{CorrectingDiffer, Differ, GreedyDiffer};
use ipr::device::update::{install_update, prepare_update};
use ipr::device::{Channel, Device};
use ipr::workloads::chain::{ChainPattern, VersionChain};
use ipr::workloads::content::ContentKind;

fn run_chain(chain: &VersionChain, differ: &dyn Differ) {
    let capacity = chain.releases().iter().map(Vec::len).max().unwrap() + 4096;
    let mut device = Device::new(capacity);
    device.flash(chain.release(0)).unwrap();
    for (hop, (old, new)) in chain.hops().enumerate() {
        assert_eq!(device.image(), old, "device out of sync before hop {hop}");
        let update = prepare_update(
            differ,
            old,
            new,
            &ConversionConfig::default(),
            Format::InPlace,
        )
        .unwrap();
        let report = install_update(&mut device, &update.payload, Channel::cellular()).unwrap();
        assert!(report.crc_verified, "hop {hop}");
        assert_eq!(device.image(), new, "hop {hop} corrupted the image");
    }
}

#[test]
fn patch_chain_applies_hop_by_hop() {
    let chain = VersionChain::generate(
        11,
        ContentKind::BinaryLike,
        48 * 1024,
        6,
        ChainPattern::Patches,
    );
    run_chain(&chain, &GreedyDiffer::default());
}

#[test]
fn escalating_chain_with_correcting_differ() {
    let chain = VersionChain::generate(
        12,
        ContentKind::SourceLike,
        32 * 1024,
        7,
        ChainPattern::Escalating,
    );
    run_chain(&chain, &CorrectingDiffer::default());
}

#[test]
fn major_release_chain() {
    let chain = VersionChain::generate(
        13,
        ContentKind::BinaryLike,
        64 * 1024,
        5,
        ChainPattern::MajorEvery(2),
    );
    run_chain(&chain, &GreedyDiffer::default());
}

#[test]
fn chain_totals_beat_full_images() {
    // The aggregate payload over a patch chain must be far below shipping
    // each release in full.
    let chain = VersionChain::generate(
        14,
        ContentKind::SourceLike,
        128 * 1024,
        8,
        ChainPattern::Patches,
    );
    let differ = GreedyDiffer::default();
    let mut delta_total = 0usize;
    let mut full_total = 0usize;
    for (old, new) in chain.hops() {
        let update = prepare_update(
            &differ,
            old,
            new,
            &ConversionConfig::default(),
            Format::InPlace,
        )
        .unwrap();
        delta_total += update.payload.len();
        full_total += new.len();
    }
    assert!(
        delta_total * 3 < full_total,
        "chain deltas {delta_total} vs full {full_total}"
    );
}

//! Executable versions of the paper's qualitative claims: each test pins
//! a *shape* the evaluation section reports, on a reduced corpus so the
//! suite stays fast (the full-scale numbers live in the `ipr-bench`
//! binaries and EXPERIMENTS.md).

use ipr::core::{convert_to_in_place, ConversionConfig, CrwiGraph, CyclePolicy};
use ipr::delta::codec::{encoded_size, Format};
use ipr::delta::diff::{Differ, GreedyDiffer};
use ipr::workloads::adversarial::tree_digraph;
use ipr::workloads::corpus::CorpusSpec;
use std::time::Instant;

fn corpus() -> Vec<ipr::workloads::FilePair> {
    CorpusSpec {
        pairs: 24,
        min_len: 4 * 1024,
        max_len: 64 * 1024,
        ..CorpusSpec::default()
    }
    .build()
}

/// Table 1, column order: explicit write offsets cost compression, and
/// the in-place conversions cost a little more on top.
#[test]
fn compression_ordering_matches_table1() {
    let differ = GreedyDiffer::default();
    let mut version = 0u64;
    let mut ordered = 0u64;
    let mut offsets = 0u64;
    let mut lm = 0u64;
    let mut ct = 0u64;
    for pair in &corpus() {
        let script = differ.diff(&pair.reference, &pair.version);
        version += pair.version.len() as u64;
        ordered += encoded_size(&script, Format::Ordered).unwrap();
        offsets += encoded_size(&script, Format::InPlace).unwrap();
        for (policy, slot) in [
            (CyclePolicy::LocallyMinimum, &mut lm),
            (CyclePolicy::ConstantTime, &mut ct),
        ] {
            let out = convert_to_in_place(
                &script,
                &pair.reference,
                &ConversionConfig::with_policy(policy),
            )
            .unwrap();
            *slot += encoded_size(&out.script, Format::InPlace).unwrap();
        }
    }
    // Column ordering of Table 1 (prose orientation).
    assert!(ordered <= offsets, "write offsets must cost bytes");
    assert!(offsets <= lm, "conversion must cost bytes");
    assert!(lm <= ct, "local-min must lose no more than constant-time");
    // The whole corpus still compresses: in-place delta far below 100%.
    assert!((ct as f64) < 0.6 * version as f64);
    // Total loss of the best policy stays small (paper: 2.4% of original
    // size; allow slack for the synthetic corpus).
    assert!(((lm - ordered) as f64) < 0.08 * version as f64);
}

/// §7: in-place conversion takes less time than differencing.
#[test]
fn conversion_cheaper_than_differencing() {
    let differ = GreedyDiffer::default();
    let corpus = corpus();
    // Warm-up pass so allocator effects don't skew either side.
    for pair in &corpus {
        let script = differ.diff(&pair.reference, &pair.version);
        let _ = convert_to_in_place(&script, &pair.reference, &ConversionConfig::default());
    }
    let mut diff_time = std::time::Duration::ZERO;
    let mut convert_time = std::time::Duration::ZERO;
    for pair in &corpus {
        let t = Instant::now();
        let script = differ.diff(&pair.reference, &pair.version);
        diff_time += t.elapsed();
        let t = Instant::now();
        let _ =
            convert_to_in_place(&script, &pair.reference, &ConversionConfig::default()).unwrap();
        convert_time += t.elapsed();
    }
    assert!(
        convert_time < diff_time,
        "conversion ({convert_time:?}) should be cheaper than differencing ({diff_time:?})"
    );
}

/// §5: the locally-minimum policy can be beaten arbitrarily by the global
/// optimum (Figure 2), yet on realistic inputs it tracks the optimum
/// closely (the ablation binary quantifies this; here we pin Figure 2).
#[test]
fn figure2_gap_grows_with_depth() {
    let mut previous_ratio = 0.0;
    for depth in 2..=5usize {
        let case = tree_digraph(depth);
        let lm = convert_to_in_place(
            &case.script,
            &case.reference,
            &ConversionConfig::with_policy(CyclePolicy::LocallyMinimum),
        )
        .unwrap();
        let root = case
            .script
            .copies()
            .iter()
            .copied()
            .find(|c| c.to == 0)
            .unwrap();
        let optimal = Format::InPlace.conversion_cost(&root);
        let ratio = lm.report.conversion_cost as f64 / optimal as f64;
        assert!(
            ratio > previous_ratio,
            "depth {depth}: {ratio} !> {previous_ratio}"
        );
        previous_ratio = ratio;
    }
    assert!(previous_ratio >= 8.0, "gap should be unbounded in depth");
}

/// §4.1: adds are placed at the end of converted deltas.
#[test]
fn adds_are_last_in_converted_deltas() {
    let differ = GreedyDiffer::default();
    for pair in corpus().iter().take(8) {
        let script = differ.diff(&pair.reference, &pair.version);
        let out =
            convert_to_in_place(&script, &pair.reference, &ConversionConfig::default()).unwrap();
        let first_add = out
            .script
            .commands()
            .iter()
            .position(|c| c.is_add())
            .unwrap_or(out.script.len());
        assert!(
            out.script.commands()[first_add..]
                .iter()
                .all(|c| c.is_add()),
            "copies found after the first add in {}",
            pair.name
        );
    }
}

/// Lemma 1 on the corpus, and the §6 observation that realistic deltas
/// have sparse conflict graphs ("on delta files whose digraphs have
/// sparse edge relations, cycles are infrequent").
#[test]
fn corpus_graphs_are_sparse_and_bounded() {
    let differ = GreedyDiffer::default();
    for pair in &corpus() {
        let script = differ.diff(&pair.reference, &pair.version);
        let crwi = CrwiGraph::build(script.copies());
        assert!(
            crwi.edge_count() as u64 <= script.target_len(),
            "{}",
            pair.name
        );
        // Sparse: edges well below the quadratic bound.
        let n = crwi.node_count();
        if n > 10 {
            assert!(
                crwi.edge_count() < n * n / 4,
                "{}: dense conflict graph",
                pair.name
            );
        }
    }
}

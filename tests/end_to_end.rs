//! Cross-crate integration: the full pipeline — difference, convert,
//! serialize, transmit, rebuild in place on a checked device — over the
//! seeded corpus, for every differ, policy and wire format combination.

use ipr::core::{
    apply_in_place, apply_in_place_buffered, check_in_place_safe, convert_to_in_place,
    count_wr_conflicts, required_capacity, ConversionConfig, CyclePolicy,
};
use ipr::delta::codec::{decode, encode, encode_checked, Format};
use ipr::delta::diff::{Differ, GreedyDiffer, OnePassDiffer};
use ipr::device::update::{install_update, prepare_update};
use ipr::device::{Channel, Device};
use ipr::workloads::corpus::CorpusSpec;

fn corpus() -> Vec<ipr::workloads::FilePair> {
    CorpusSpec {
        pairs: 12,
        min_len: 2 * 1024,
        max_len: 32 * 1024,
        ..CorpusSpec::default()
    }
    .build()
}

#[test]
fn differs_reconstruct_every_pair() {
    let differs: [&dyn Differ; 2] = [&GreedyDiffer::default(), &OnePassDiffer::default()];
    for pair in &corpus() {
        for differ in differs {
            let script = differ.diff(&pair.reference, &pair.version);
            assert_eq!(
                ipr::delta::apply(&script, &pair.reference).unwrap(),
                pair.version,
                "{} on {}",
                differ.name(),
                pair.name
            );
        }
    }
}

#[test]
fn conversion_is_safe_and_equivalent_for_all_policies() {
    let differ = GreedyDiffer::default();
    for pair in &corpus() {
        let script = differ.diff(&pair.reference, &pair.version);
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            let out = convert_to_in_place(
                &script,
                &pair.reference,
                &ConversionConfig::with_policy(policy),
            )
            .unwrap();
            check_in_place_safe(&out.script)
                .unwrap_or_else(|v| panic!("{policy} unsafe on {}: {v}", pair.name));
            assert_eq!(count_wr_conflicts(&out.script), 0, "{policy} {}", pair.name);

            let mut buf = pair.reference.clone();
            buf.resize(required_capacity(&out.script) as usize, 0);
            apply_in_place(&out.script, &mut buf).unwrap();
            assert_eq!(
                &buf[..pair.version.len()],
                &pair.version[..],
                "{policy} {}",
                pair.name
            );
        }
    }
}

#[test]
fn wire_formats_preserve_safety_and_content() {
    let differ = OnePassDiffer::default();
    for pair in corpus().iter().take(6) {
        let script = differ.diff(&pair.reference, &pair.version);
        let out =
            convert_to_in_place(&script, &pair.reference, &ConversionConfig::default()).unwrap();
        for format in [Format::InPlace, Format::PaperInPlace, Format::Improved] {
            let wire = encode_checked(&out.script, format, &pair.version).unwrap();
            let decoded = decode(&wire).unwrap();
            assert!(
                check_in_place_safe(&decoded.script).is_ok(),
                "{format} broke command order on {}",
                pair.name
            );
            let mut buf = pair.reference.clone();
            buf.resize(required_capacity(&decoded.script) as usize, 0);
            apply_in_place(&decoded.script, &mut buf).unwrap();
            assert_eq!(
                &buf[..pair.version.len()],
                &pair.version[..],
                "{format} {}",
                pair.name
            );
        }
    }
}

#[test]
fn device_installs_every_pair() {
    let differ = GreedyDiffer::default();
    for pair in &corpus() {
        let update = prepare_update(
            &differ,
            &pair.reference,
            &pair.version,
            &ConversionConfig::default(),
            Format::InPlace,
        )
        .unwrap();
        let capacity = pair.reference.len().max(pair.version.len());
        let mut device = Device::new(capacity);
        device.flash(&pair.reference).unwrap();
        let report = install_update(&mut device, &update.payload, Channel::cellular()).unwrap();
        assert_eq!(device.image(), &pair.version[..], "{}", pair.name);
        assert!(report.crc_verified);
        assert_eq!(report.stats.scratch_bytes, 0);
    }
}

#[test]
fn buffered_apply_matches_unbuffered_on_corpus() {
    let differ = GreedyDiffer::default();
    for pair in corpus().iter().take(4) {
        let script = differ.diff(&pair.reference, &pair.version);
        let out =
            convert_to_in_place(&script, &pair.reference, &ConversionConfig::default()).unwrap();
        let capacity = required_capacity(&out.script) as usize;
        let mut expected = pair.reference.clone();
        expected.resize(capacity, 0);
        apply_in_place(&out.script, &mut expected).unwrap();
        for chunk in [1usize, 7, 64, 4096] {
            let mut buf = pair.reference.clone();
            buf.resize(capacity, 0);
            apply_in_place_buffered(&out.script, &mut buf, chunk).unwrap();
            assert_eq!(buf, expected, "chunk {chunk} on {}", pair.name);
        }
    }
}

#[test]
fn in_place_scripts_also_apply_with_scratch_space() {
    // An in-place delta is still an ordinary delta: scratch application
    // must give the same bytes (§3: any permutation works with scratch).
    let differ = GreedyDiffer::default();
    for pair in corpus().iter().take(6) {
        let script = differ.diff(&pair.reference, &pair.version);
        let out =
            convert_to_in_place(&script, &pair.reference, &ConversionConfig::default()).unwrap();
        assert_eq!(
            ipr::delta::apply(&out.script, &pair.reference).unwrap(),
            pair.version,
            "{}",
            pair.name
        );
    }
}

#[test]
fn ordered_format_roundtrips_unconverted_scripts() {
    let differ = GreedyDiffer::default();
    for pair in corpus().iter().take(6) {
        let script = differ.diff(&pair.reference, &pair.version);
        let wire = encode(&script, Format::Ordered).unwrap();
        let decoded = decode(&wire).unwrap();
        assert_eq!(decoded.script, script, "{}", pair.name);
    }
}

#[test]
fn shrinking_and_growing_versions_round_trip_in_place() {
    let reference: Vec<u8> = (0..50_000u32).map(|i| (i * 19 % 251) as u8).collect();
    for version_len in [1_000usize, 49_999, 50_000, 90_000] {
        let mut version: Vec<u8> = reference
            .iter()
            .copied()
            .cycle()
            .take(version_len)
            .collect();
        if version_len > 2_000 {
            version[1_500] ^= 0xff; // make it a real edit
        }
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let mut buf = reference.clone();
        buf.resize(required_capacity(&out.script) as usize, 0);
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(&buf[..version.len()], &version[..], "len {version_len}");
    }
}

//! Exhaustive crash-injection over the resumable in-place applier: the
//! application is snapshotted at *every* durable point (journal persist),
//! then restarted from each snapshot — including with torn, partially
//! written chunks — and must always converge to the correct version.

use ipr::core::resumable::{resume_in_place, resume_in_place_observed, Journal, Progress};
use ipr::core::{convert_to_in_place, required_capacity, ConversionConfig};
use ipr::delta::diff::{Differ, GreedyDiffer};
use ipr::delta::{Command, DeltaScript};

/// Runs the applier to completion one chunk per call, capturing
/// `(journal, buffer)` at every durable point. Durable point A stages a
/// chunk (buffer not yet written); durable point B records completion
/// (buffer written).
fn snapshot_run(
    script: &DeltaScript,
    start: &[u8],
    chunk: usize,
) -> (Vec<(Journal, Vec<u8>)>, Vec<u8>) {
    let mut buf = start.to_vec();
    let mut journal = Journal::new();
    let mut snapshots: Vec<(Journal, Vec<u8>)> = Vec::new();
    loop {
        let before = buf.clone();
        let mut seen: Vec<Journal> = Vec::new();
        let progress =
            resume_in_place_observed(script, &mut buf, &mut journal, chunk, 1, &mut |j| {
                seen.push(j.clone());
            })
            .expect("capacity checked by caller");
        for j in &seen {
            let buffer = if j.has_pending_chunk() { &before } else { &buf };
            snapshots.push((j.clone(), buffer.clone()));
        }
        if progress == Progress::Complete {
            break;
        }
    }
    (snapshots, buf)
}

fn finish(script: &DeltaScript, buf: &mut [u8], journal: &mut Journal, chunk: usize) {
    while resume_in_place(script, buf, journal, chunk, u64::MAX).unwrap() == Progress::Suspended {}
}

fn crash_matrix(script: &DeltaScript, reference: &[u8], version: &[u8], chunk: usize) {
    let capacity = required_capacity(script) as usize;
    let mut start = reference.to_vec();
    start.resize(capacity, 0);
    let (snapshots, final_buf) = snapshot_run(script, &start, chunk);
    assert_eq!(&final_buf[..version.len()], version, "baseline run wrong");
    assert!(!snapshots.is_empty());

    for (i, (journal, buf_at_persist)) in snapshots.iter().enumerate() {
        // Crash exactly at the persist point: resume from the snapshot.
        let mut buf = buf_at_persist.clone();
        let mut j = journal.clone();
        finish(script, &mut buf, &mut j, chunk);
        assert_eq!(&buf[..version.len()], version, "snapshot {i} (clean crash)");

        // Crash after a *torn* write of the staged chunk: every possible
        // prefix of the chunk reached storage, the rest is garbage.
        if let Some((to, data)) = journal.pending_chunk() {
            for torn_len in [0, data.len() / 2, data.len()] {
                let mut buf = buf_at_persist.clone();
                let start = to as usize;
                buf[start..start + torn_len].copy_from_slice(&data[..torn_len]);
                for b in &mut buf[start + torn_len..start + data.len()] {
                    *b = 0xEE; // garbage from the interrupted write
                }
                let mut j = journal.clone();
                finish(script, &mut buf, &mut j, chunk);
                assert_eq!(
                    &buf[..version.len()],
                    version,
                    "snapshot {i}, torn at {torn_len}/{}",
                    data.len()
                );
            }
        }
    }
}

#[test]
fn crash_at_every_durable_point_small_pair() {
    // Small but adversarial: a rotation plus growth, with self-overlapping
    // copies after conversion.
    let reference: Vec<u8> = (0..600u32).map(|i| (i * 7 % 251) as u8).collect();
    let mut version = reference.clone();
    version.rotate_left(123);
    version.extend_from_slice(&[0xAB; 40]);
    let script = GreedyDiffer::new(8).diff(&reference, &version);
    let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
    for chunk in [3usize, 64] {
        crash_matrix(&out.script, &reference, &version, chunk);
    }
}

#[test]
fn crash_matrix_on_hand_built_overlaps() {
    // Dense self-overlap: shift-by-one in both directions plus adds.
    let script = DeltaScript::new(
        32,
        32,
        vec![
            Command::copy(1, 0, 15),   // from > to: left-to-right
            Command::copy(15, 16, 15), // from < to: right-to-left
            Command::add(15, vec![0x5A]),
            Command::add(31, vec![0xA5]),
        ],
    )
    .unwrap();
    assert!(ipr::core::is_in_place_safe(&script));
    let reference: Vec<u8> = (0u8..32).collect();
    let version = ipr::delta::apply(&script, &reference).unwrap();
    for chunk in [1usize, 2, 5] {
        crash_matrix(&script, &reference, &version, chunk);
    }
}

#[test]
fn journal_chain_through_repeated_reboots() {
    // End-to-end: a persisted journal drives the update across reboots
    // where each boot applies a random-ish amount of work.
    let reference: Vec<u8> = (0..5000u32).map(|i| (i * 13 % 251) as u8).collect();
    let mut version = reference.clone();
    version.rotate_left(1111);
    let script = GreedyDiffer::default().diff(&reference, &version);
    let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
    let capacity = required_capacity(&out.script) as usize;

    let mut buf = reference.clone();
    buf.resize(capacity, 0);
    let mut journal = Journal::new();
    let mut fuel = 17u64;
    let mut boots = 0;
    loop {
        match resume_in_place(&out.script, &mut buf, &mut journal, 32, fuel).unwrap() {
            Progress::Complete => break,
            Progress::Suspended => {
                boots += 1;
                fuel = fuel.wrapping_mul(31).wrapping_add(7) % 997 + 1;
            }
        }
        assert!(boots < 100_000);
    }
    assert!(boots > 5);
    assert_eq!(&buf[..version.len()], &version[..]);
}

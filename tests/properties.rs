//! Property-based tests over the whole stack (invariants I1–I8 of
//! DESIGN.md), driven by proptest.

use ipr::core::{
    apply_in_place, apply_in_place_buffered, check_in_place_safe, convert_to_in_place,
    is_valid_outcome, required_capacity, sort_breaking_cycles, ConversionConfig, CrwiGraph,
    CyclePolicy,
};
use ipr::delta::codec::{decode, encode, Format};
use ipr::delta::diff::{CorrectingDiffer, Differ, GreedyDiffer, OnePassDiffer};
use ipr::delta::{varint, Command, DeltaScript};
use ipr::digraph::{topo, Digraph, Interval, IntervalSet};
use proptest::prelude::*;

/// A version derived from a reference by random edit operations, so the
/// pair is realistically delta-compressible (pure random pairs share no
/// strings and exercise only the all-literal path).
fn edited_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    let reference = proptest::collection::vec(any::<u8>(), 0..2048);
    let edits = proptest::collection::vec(
        (
            0u8..5,                       // op
            any::<prop::sample::Index>(), // position
            1usize..200,                  // length
            any::<u8>(),                  // value seed
        ),
        0..8,
    );
    (reference, edits).prop_map(|(reference, edits)| {
        let mut version = reference.clone();
        for (op, pos, len, val) in edits {
            if version.is_empty() {
                version.extend(std::iter::repeat_n(val, len));
                continue;
            }
            let at = pos.index(version.len());
            match op {
                0 => version[at] = val, // point edit
                1 => {
                    // insert
                    let block: Vec<u8> = (0..len).map(|i| val.wrapping_add(i as u8)).collect();
                    version.splice(at..at, block);
                }
                2 => {
                    // delete
                    let end = (at + len).min(version.len());
                    version.drain(at..end);
                }
                3 => {
                    // move
                    let end = (at + len).min(version.len());
                    let block: Vec<u8> = version.drain(at..end).collect();
                    let dst = if version.is_empty() {
                        0
                    } else {
                        pos.index(version.len() + 1)
                    };
                    version.splice(dst..dst, block);
                }
                _ => {
                    // duplicate
                    let end = (at + len).min(version.len());
                    let block: Vec<u8> = version[at..end].to_vec();
                    version.extend(block);
                }
            }
        }
        (reference, version)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// I2: differs always reconstruct the version exactly.
    #[test]
    fn differs_reconstruct((reference, version) in edited_pair()) {
        for differ in [
            &GreedyDiffer::new(8) as &dyn Differ,
            &OnePassDiffer::new(8, 12),
            &CorrectingDiffer::new(8, 12),
        ] {
            let script = differ.diff(&reference, &version);
            prop_assert!(script.is_write_ordered());
            prop_assert_eq!(&ipr::delta::apply(&script, &reference).unwrap(), &version);
        }
    }

    /// I3 + I6: converted scripts satisfy Equation 2 and rebuild in place,
    /// for every policy, matching the scratch-space result byte for byte.
    #[test]
    fn conversion_safe_and_equivalent(
        (reference, version) in edited_pair(),
        constant in any::<bool>(),
    ) {
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let policy = if constant { CyclePolicy::ConstantTime } else { CyclePolicy::LocallyMinimum };
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::with_policy(policy))
            .unwrap();
        prop_assert!(check_in_place_safe(&out.script).is_ok());
        let mut buf = reference.clone();
        buf.resize(required_capacity(&out.script) as usize, 0);
        apply_in_place(&out.script, &mut buf).unwrap();
        prop_assert_eq!(&buf[..version.len()], &version[..]);
    }

    /// I5 (Lemma 1): CRWI edges never exceed the version length, nor the
    /// total read length.
    #[test]
    fn lemma1_edge_bound((reference, version) in edited_pair()) {
        let script = OnePassDiffer::new(8, 12).diff(&reference, &version);
        let total_read: u64 = script.copies().iter().map(|c| c.len).sum();
        let crwi = CrwiGraph::build(script.copies());
        prop_assert!(crwi.edge_count() as u64 <= script.target_len());
        prop_assert!(crwi.edge_count() as u64 <= total_read);
    }

    /// I8: buffered in-place application is byte-identical at any chunk
    /// granularity.
    #[test]
    fn buffered_apply_equivalence(
        (reference, version) in edited_pair(),
        chunk in 1usize..512,
    ) {
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let capacity = required_capacity(&out.script) as usize;
        let mut a = reference.clone();
        a.resize(capacity, 0);
        apply_in_place(&out.script, &mut a).unwrap();
        let mut b = reference.clone();
        b.resize(capacity, 0);
        apply_in_place_buffered(&out.script, &mut b, chunk).unwrap();
        prop_assert_eq!(a, b);
    }

    /// I4: codec round trip on differenced scripts, every format.
    #[test]
    fn codec_round_trip((reference, version) in edited_pair()) {
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        for format in Format::ALL {
            let wire = encode(&script, format).unwrap();
            let decoded = decode(&wire).unwrap();
            // Exact command round trip for non-splitting formats; semantic
            // equivalence for all.
            if !matches!(format, Format::PaperOrdered | Format::PaperInPlace) {
                prop_assert_eq!(&decoded.script, &script);
            }
            prop_assert_eq!(
                &ipr::delta::apply(&decoded.script, &reference).unwrap(),
                &version
            );
        }
    }

    /// Corrupting any single byte of an encoded delta never panics the
    /// decoder: it either errors or yields some script.
    #[test]
    fn decoder_total_on_corruption(
        (reference, version) in edited_pair(),
        idx in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let mut wire = encode(&script, Format::InPlace).unwrap();
        let at = idx.index(wire.len());
        wire[at] ^= xor;
        let _ = decode(&wire); // must not panic
    }

    /// Varint round trip.
    #[test]
    fn varint_round_trip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::encode(v, &mut buf);
        prop_assert_eq!(buf.len(), varint::encoded_len(v));
        let (decoded, used) = varint::decode(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    /// IntervalSet agrees with a naive bitmap model.
    #[test]
    fn interval_set_model(ops in proptest::collection::vec((0u64..256, 0u64..64), 0..40)) {
        let mut set = IntervalSet::new();
        let mut model = vec![false; 360];
        for (start, len) in ops {
            set.insert(Interval::from_offset_len(start, len));
            for i in start..start + len {
                model[i as usize] = true;
            }
        }
        prop_assert_eq!(set.covered_bytes(), model.iter().filter(|&&b| b).count() as u64);
        for (start, len) in [(0u64, 360u64), (10, 5), (100, 100), (250, 60), (359, 1)] {
            let iv = Interval::from_offset_len(start, len);
            let expected = model[start as usize..(start + len) as usize]
                .iter()
                .filter(|&&b| b)
                .count() as u64;
            prop_assert_eq!(set.intersection_len(iv), expected);
            prop_assert_eq!(set.intersects(iv), expected > 0);
        }
    }

    /// The cycle-breaking sort yields a valid partition and topological
    /// order on arbitrary digraphs, under every policy.
    #[test]
    fn sort_valid_on_random_digraphs(
        n in 1usize..24,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..80),
        costs in proptest::collection::vec(0u64..1000, 24),
        constant in any::<bool>(),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = Digraph::from_edges(n, edges);
        let cost = &costs[..n];
        let policy = if constant { CyclePolicy::ConstantTime } else { CyclePolicy::LocallyMinimum };
        let out = sort_breaking_cycles(&g, cost, policy).unwrap();
        prop_assert!(is_valid_outcome(&g, &out));
        // Removing the removed set must leave the graph acyclic.
        let mut keep = vec![true; n];
        for &v in &out.removed {
            keep[v as usize] = false;
        }
        prop_assert!(topo::is_acyclic(&g.induced(&keep)));
    }

    /// The exhaustive policy is never worse than the heuristics.
    #[test]
    fn exhaustive_no_worse_than_heuristics(
        n in 1usize..10,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..30),
        costs in proptest::collection::vec(1u64..100, 10),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = Digraph::from_edges(n, edges);
        let cost = &costs[..n];
        let total = |removed: &[u32]| -> u64 {
            removed.iter().map(|&v| cost[v as usize]).sum()
        };
        let exact = sort_breaking_cycles(&g, cost, CyclePolicy::Exhaustive { limit: 12 }).unwrap();
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            let h = sort_breaking_cycles(&g, cost, policy).unwrap();
            prop_assert!(total(&exact.removed) <= total(&h.removed),
                "exhaustive {:?} worse than {policy} {:?}", exact.removed, h.removed);
        }
    }

    /// Spilled conversion is exact at every budget, and its cost is
    /// monotone non-increasing in the budget.
    #[test]
    fn spill_exact_and_monotone(
        (reference, version) in edited_pair(),
        budgets in proptest::collection::vec(0u64..4096, 1..4),
    ) {
        use ipr::core::spill::{apply_in_place_spilled, convert_with_spill, SpillConfig};
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let mut sorted = budgets.clone();
        sorted.sort_unstable();
        let mut previous_cost = u64::MAX;
        for budget in sorted {
            let out = convert_with_spill(&script, &reference, &SpillConfig {
                conversion: ConversionConfig::default(),
                scratch_budget: budget,
            }).unwrap();
            prop_assert!(out.conversion_cost <= previous_cost);
            previous_cost = out.conversion_cost;
            prop_assert!(out.scratch_used <= budget);
            prop_assert!(ipr::core::spill::is_spill_safe(&out.script, &out.stashed));
            let mut buf = reference.clone();
            buf.resize(required_capacity(&out.script) as usize, 0);
            apply_in_place_spilled(&out.script, &out.stashed, &mut buf, budget).unwrap();
            prop_assert_eq!(&buf[..version.len()], &version[..]);
        }
    }

    /// Wave-parallel schedules cover every command exactly once and the
    /// snapshot-concurrent application matches serial application.
    #[test]
    fn parallel_schedule_exact((reference, version) in edited_pair()) {
        use ipr::core::ParallelSchedule;
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let plan = ParallelSchedule::plan(&out.script).expect("converted script is safe");
        let mut seen = vec![false; out.script.len()];
        let capacity = required_capacity(&out.script) as usize;
        let mut buf = reference.clone();
        buf.resize(capacity, 0);
        for wave in plan.waves() {
            // All reads of a wave observe the pre-wave buffer.
            let mut writes: Vec<(usize, Vec<u8>)> = Vec::new();
            for &i in wave {
                prop_assert!(!seen[i]);
                seen[i] = true;
                match &out.script.commands()[i] {
                    ipr::delta::Command::Copy(c) => writes.push((
                        c.to as usize,
                        buf[c.read_interval().as_usize_range()].to_vec(),
                    )),
                    ipr::delta::Command::Add(a) => {
                        writes.push((a.to as usize, a.data.clone()));
                    }
                }
            }
            for (to, data) in writes {
                buf[to..to + data.len()].copy_from_slice(&data);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(&buf[..version.len()], &version[..]);
    }

    /// The windowed differ is exact for any window/margin geometry.
    #[test]
    fn windowed_differ_exact(
        (reference, version) in edited_pair(),
        window in 16usize..4096,
        margin in 0usize..1024,
    ) {
        use ipr::delta::diff::WindowedDiffer;
        let differ = WindowedDiffer::new(GreedyDiffer::new(8), window, margin);
        let script = differ.diff(&reference, &version);
        prop_assert_eq!(&ipr::delta::apply(&script, &reference).unwrap(), &version);
    }

    /// Streaming decode over arbitrary chunk boundaries equals batch
    /// decode.
    #[test]
    fn stream_decode_chunking_invariant(
        (reference, version) in edited_pair(),
        chunk in 1usize..64,
    ) {
        use ipr::delta::codec::stream::StreamDecoder;
        use ipr::delta::codec::{decode, encode, Format};
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let wire = encode(&script, Format::Improved).unwrap();
        let batch = decode(&wire).unwrap();
        let mut d = StreamDecoder::new();
        let mut commands = Vec::new();
        for part in wire.chunks(chunk) {
            d.push(part);
            while let Some(c) = d.next_command().unwrap() {
                commands.push(c);
            }
        }
        d.finish().unwrap();
        prop_assert_eq!(commands.as_slice(), batch.script.commands());
    }

    /// Delta composition is semantically exact: applying the composed
    /// delta equals applying the two hops, and the composed delta still
    /// converts for in-place application.
    #[test]
    fn composition_exact(
        (v1, v2) in edited_pair(),
        extra_edits in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..6),
    ) {
        // Derive v3 from v2 with a few more point edits.
        let mut v3 = v2.clone();
        for (pos, val) in extra_edits {
            if v3.is_empty() { break; }
            let at = pos.index(v3.len());
            v3[at] = val;
        }
        let differ = GreedyDiffer::new(8);
        let d12 = differ.diff(&v1, &v2);
        let d23 = differ.diff(&v2, &v3);
        let d13 = ipr::delta::compose(&d12, &d23).unwrap();
        prop_assert_eq!(&ipr::delta::apply(&d13, &v1).unwrap(), &v3);
        // And it flows through the in-place pipeline.
        let out = convert_to_in_place(&d13, &v1, &ConversionConfig::default()).unwrap();
        prop_assert!(check_in_place_safe(&out.script).is_ok());
        let mut buf = v1.clone();
        buf.resize(required_capacity(&out.script) as usize, 0);
        apply_in_place(&out.script, &mut buf).unwrap();
        prop_assert_eq!(&buf[..v3.len()], &v3[..]);
    }

    /// Any permutation of a script's commands still scratch-applies to the
    /// same version (§3: disjoint writes make order irrelevant off-device).
    #[test]
    fn scratch_apply_order_independent(
        (reference, version) in edited_pair(),
        seed in any::<u64>(),
    ) {
        let script = GreedyDiffer::new(8).diff(&reference, &version);
        let n = script.len();
        if n > 1 {
            // Deterministic Fisher-Yates from the seed.
            let mut order: Vec<usize> = (0..n).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let permuted = script.permuted(&order);
            prop_assert_eq!(&ipr::delta::apply(&permuted, &reference).unwrap(), &version);
        }
    }
}

/// Non-proptest sanity: scripts assembled by hand stay rejectable.
#[test]
fn script_validation_catches_hand_rolled_errors() {
    assert!(DeltaScript::new(4, 8, vec![Command::copy(0, 0, 4)]).is_err());
    assert!(DeltaScript::new(4, 4, vec![Command::copy(0, 0, 5)]).is_err());
    assert!(DeltaScript::new(4, 8, vec![Command::copy(0, 0, 4), Command::copy(0, 2, 4)]).is_err());
}

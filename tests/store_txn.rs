//! Transactional object store properties: arbitrary histories survive
//! compaction byte-identically, interrupted transactions are replayable
//! and leave no committed data behind, and `fsck` detects every
//! single-bit flip of an object file.
//!
//! The in-process companion of the child-process kill sweep in
//! `tests/store_crash.rs`: here faults are injected as typed I/O errors
//! at chosen durability boundaries (`ipr::store::fault::fail_after`),
//! so the transaction layer's error path — not just its crash path —
//! is exercised, and shrinking stays useful.

use ipr::store::{fault, fsck, scratch_dir, Store};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// A drifting version history: a base image plus per-version edit
/// batches, realistic for delta storage (consecutive versions share
/// most of their bytes) while still covering degenerate cases (empty
/// versions, total rewrites).
fn history() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let base = proptest::collection::vec(any::<u8>(), 0..2048);
    let steps = proptest::collection::vec(
        (
            0u8..4,                       // op
            any::<prop::sample::Index>(), // position
            1usize..256,                  // length
            any::<u8>(),                  // value seed
        ),
        1..10,
    );
    (base, proptest::collection::vec(steps, 1..8)).prop_map(|(base, batches)| {
        let mut versions = vec![base];
        for batch in batches {
            let mut next = versions.last().expect("non-empty").clone();
            for (op, pos, len, val) in batch {
                if next.is_empty() {
                    next.extend(std::iter::repeat_n(val, len));
                    continue;
                }
                let at = pos.index(next.len());
                match op {
                    0 => next[at] = val,
                    1 => {
                        let block: Vec<u8> = (0..len).map(|i| val.wrapping_add(i as u8)).collect();
                        next.splice(at..at, block);
                    }
                    2 => {
                        let end = (at + len).min(next.len());
                        next.drain(at..end);
                    }
                    _ => {
                        for b in next.iter_mut().skip(at).take(len) {
                            *b = b.wrapping_add(val | 1);
                        }
                    }
                }
            }
            versions.push(next);
        }
        // The store deduplicates identical content; drop repeats so the
        // version log and this list stay zippable.
        versions.dedup();
        versions
    })
}

fn scratch(tag: &str) -> PathBuf {
    scratch_dir(&std::env::temp_dir(), tag)
}

/// Puts `history` in order and returns the oid of every version.
fn put_all(store: &mut Store, history: &[Vec<u8>]) -> Vec<ipr::store::Oid> {
    history
        .iter()
        .map(|v| store.put(v, None).expect("put succeeds").oid)
        .collect()
}

/// Asserts every `(oid, bytes)` pair reconstructs byte-identically.
fn verify_all(store: &mut Store, oids: &[ipr::store::Oid], history: &[Vec<u8>]) {
    for (oid, want) in oids.iter().zip(history) {
        let got = store.get(*oid).expect("version reconstructs");
        assert_eq!(&got, want, "version {oid} drifted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compaction under any depth cap preserves every version of an
    /// arbitrary history byte-for-byte, enforces the cap, and the
    /// compacted store reopens clean.
    #[test]
    fn compacted_history_reconstructs_byte_identical(
        history in history(),
        cap in 1u32..4,
    ) {
        let root = scratch("txn-compact");
        let mut store = Store::init(&root, cap).expect("init");
        let oids = put_all(&mut store, &history);
        store.compact().expect("compact succeeds");
        prop_assert!(store.manifest().max_depth() <= cap);
        verify_all(&mut store, &oids, &history);

        // A fresh process (modelled by reopening) sees the same bytes,
        // and a full sweep finds nothing to complain about.
        drop(store);
        let report = fsck(&root, false).expect("fsck runs");
        prop_assert!(report.is_clean(), "fsck after compact: {:?}", report.findings);
        let mut reopened = Store::open(&root).expect("reopen");
        verify_all(&mut reopened, &oids, &history);
        std::fs::remove_dir_all(&root).ok();
    }

    /// A transaction interrupted at an arbitrary durability boundary
    /// leaves a store that reopens, repairs to a clean state, keeps all
    /// committed versions byte-identical, and accepts a replay of the
    /// interrupted operation. Boundaries past the operation's width
    /// mean the fault never fires — the success path of the same case.
    #[test]
    fn interrupted_put_replays_idempotently(
        history in history(),
        boundary in 1u64..28,
    ) {
        let (committed, last) = history.split_at(history.len() - 1);
        let root = scratch("txn-fault");
        let mut store = Store::init(&root, 2).expect("init");
        let oids = put_all(&mut store, committed);

        fault::fail_after(boundary);
        let outcome = store.put(&last[0], None);
        fault::clear();
        drop(store);

        // Whether or not the fault fired, the store must repair to a
        // clean, corruption-free state...
        let repair = fsck(&root, true).expect("fsck runs");
        prop_assert!(!repair.has_corruption(), "corruption: {:?}", repair.findings);
        prop_assert!(repair.fully_repaired(), "unrepaired: {:?}", repair.findings);
        let clean = fsck(&root, false).expect("fsck reruns");
        prop_assert!(clean.is_clean(), "after repair: {:?}", clean.findings);

        // ...keep every committed version intact...
        let mut reopened = Store::open(&root).expect("reopen");
        verify_all(&mut reopened, &oids, committed);

        // ...and the replayed put must converge to the committed state.
        // An error outcome leaves either state: a fault past the
        // manifest swap (the commit point) fails the caller even though
        // the version committed — so only the success case pins
        // `created`, and the bytes are checked either way.
        let replay = reopened.put(&last[0], None).expect("replay succeeds");
        if outcome.is_ok() {
            prop_assert!(!replay.created, "a committed put replayed as new");
        }
        let got = reopened.get(replay.oid).expect("replayed version reads");
        prop_assert_eq!(&got, &last[0]);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Any single bit flipped in any object file is detected by fsck as
    /// corruption (CRC-32 catches all 1-bit errors), and the damaged
    /// version refuses to reconstruct silently.
    #[test]
    fn fsck_detects_every_single_bit_flip(
        history in history(),
        pick in any::<prop::sample::Index>(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let root = scratch("txn-flip");
        let mut store = Store::init(&root, 2).expect("init");
        let oids = put_all(&mut store, &history);
        drop(store);

        let mut files: Vec<PathBuf> = std::fs::read_dir(root.join("objects"))
            .expect("objects dir")
            .map(|e| e.expect("dir entry").path())
            .collect();
        files.sort();
        let target = &files[pick.index(files.len())];
        let mut bytes = std::fs::read(target).expect("object reads");
        if bytes.is_empty() {
            // An empty version's full object has no bit to flip.
            std::fs::remove_dir_all(&root).ok();
            return Ok(());
        }
        let at = byte.index(bytes.len());
        bytes[at] ^= 1 << bit;
        std::fs::write(target, &bytes).expect("flip lands");

        let report = fsck(&root, false).expect("fsck runs");
        prop_assert!(
            report.has_corruption(),
            "bit {bit} of byte {at} in {} went undetected",
            target.display()
        );
        // Repair must refuse to paper over real corruption.
        let repair = fsck(&root, true).expect("fsck --repair runs");
        prop_assert!(repair.has_corruption());

        // Reading through the damaged chain fails loudly; versions whose
        // chains avoid the damaged object still reconstruct.
        let mut reopened = Store::open(&root).expect("manifest itself is intact");
        let mut failures = 0usize;
        for (oid, want) in oids.iter().zip(&history) {
            match reopened.get(*oid) {
                Ok(got) => prop_assert_eq!(&got, want),
                Err(_) => failures += 1,
            }
        }
        prop_assert!(failures > 0, "no read noticed the flipped bit");
        std::fs::remove_dir_all(&root).ok();
    }
}

/// Exhaustive in-process sweep: a put interrupted at *every* durability
/// boundary leaves a store that repairs clean and replays — the
/// deterministic backbone behind the sampled proptest above, and the
/// in-process mirror of the child-process kill sweep.
#[test]
fn every_put_boundary_is_survivable() {
    let histories: Vec<Vec<u8>> = (0u8..3)
        .map(|v| {
            (0..4096u32)
                .map(|i| (i as u8).wrapping_mul(7).wrapping_add(v))
                .collect()
        })
        .collect();
    let (committed, last) = histories.split_at(2);

    // Measure the operation's boundary width on a throwaway store.
    let width = {
        let root = scratch("txn-width");
        let mut store = Store::init(&root, 2).expect("init");
        put_all(&mut store, committed);
        let before = fault::crossed();
        store.put(&last[0], None).expect("put succeeds");
        let width = fault::crossed() - before;
        std::fs::remove_dir_all(&root).ok();
        width
    };
    assert!(
        width >= 10,
        "suspiciously few durability boundaries: {width}"
    );

    for boundary in 1..=width {
        let root = scratch("txn-sweep");
        let mut store = Store::init(&root, 2).expect("init");
        let oids = put_all(&mut store, committed);

        fault::fail_after(boundary);
        let outcome = store.put(&last[0], None);
        fault::clear();
        drop(store);

        let repair = fsck(&root, true).unwrap_or_else(|e| panic!("boundary {boundary}: {e}"));
        assert!(
            !repair.has_corruption() && repair.fully_repaired(),
            "boundary {boundary}: {:?}",
            repair.findings
        );
        let mut reopened = Store::open(&root)
            .unwrap_or_else(|e| panic!("boundary {boundary}: reopen failed: {e}"));
        verify_all(&mut reopened, &oids, committed);
        let replay = reopened
            .put(&last[0], None)
            .unwrap_or_else(|e| panic!("boundary {boundary}: replay failed: {e}"));
        // A fault past the manifest swap fails the caller even though
        // the version committed, so an error outcome allows either
        // `created` value; a success outcome must dedupe.
        if outcome.is_ok() {
            assert!(
                !replay.created,
                "boundary {boundary}: committed put replayed as new"
            );
        }
        let got = reopened.get(replay.oid).expect("replayed version reads");
        assert_eq!(got, last[0], "boundary {boundary}: bytes drifted");
        std::fs::remove_dir_all(&root).ok();
    }
}

/// Same sweep over compaction: interrupting `compact` at every boundary
/// never loses a version; the store repairs clean and a replayed
/// compact still enforces the cap with byte-identical content.
#[test]
fn every_compact_boundary_is_survivable() {
    let histories: Vec<Vec<u8>> = (0u8..6)
        .map(|v| {
            (0..4096u32)
                .map(|i| (i as u8).wrapping_mul(13).wrapping_add(v.wrapping_mul(3)))
                .collect()
        })
        .collect();

    let build = |root: &Path| -> (Store, Vec<ipr::store::Oid>) {
        let mut store = Store::init(root, 1).expect("init");
        let oids = put_all(&mut store, &histories);
        (store, oids)
    };

    let width = {
        let root = scratch("compact-width");
        let (mut store, _) = build(&root);
        let before = fault::crossed();
        store.compact().expect("compact succeeds");
        let width = fault::crossed() - before;
        std::fs::remove_dir_all(&root).ok();
        width
    };
    assert!(
        width >= 10,
        "suspiciously few durability boundaries: {width}"
    );

    for boundary in 1..=width {
        let root = scratch("compact-sweep");
        let (mut store, oids) = build(&root);
        fault::fail_after(boundary);
        let _ = store.compact();
        fault::clear();
        drop(store);

        let repair = fsck(&root, true).unwrap_or_else(|e| panic!("boundary {boundary}: {e}"));
        assert!(
            !repair.has_corruption() && repair.fully_repaired(),
            "boundary {boundary}: {:?}",
            repair.findings
        );
        let mut reopened = Store::open(&root)
            .unwrap_or_else(|e| panic!("boundary {boundary}: reopen failed: {e}"));
        verify_all(&mut reopened, &oids, &histories);
        reopened
            .compact()
            .unwrap_or_else(|e| panic!("boundary {boundary}: replayed compact failed: {e}"));
        assert!(reopened.manifest().max_depth() <= 1);
        verify_all(&mut reopened, &oids, &histories);
        std::fs::remove_dir_all(&root).ok();
    }
}

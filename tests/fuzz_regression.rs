//! Replays the pinned fuzz corpus in `tests/fuzz_corpus/` and checks the
//! seed-reproduction contract the `ipr fuzz` CLI prints on failure.

use std::path::PathBuf;

use ipr::fuzz::corpus::{load_dir, CorpusEntry};
use ipr::fuzz::{run, run_case, run_corpus_entry, FuzzConfig, Oracle};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fuzz_corpus")
}

#[test]
fn corpus_replays_clean() {
    let entries = load_dir(&corpus_dir()).expect("corpus directory loads");
    assert!(
        entries.len() >= 6,
        "corpus unexpectedly small: {} entries",
        entries.len()
    );
    let mut failures = Vec::new();
    for (name, entry) in &entries {
        if let Err(e) = run_corpus_entry(entry) {
            failures.push(format!("{name}: {e}"));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus violations:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_covers_every_oracle_and_raw_bytes() {
    let entries = load_dir(&corpus_dir()).expect("corpus directory loads");
    let mut seeded = std::collections::HashSet::new();
    let mut raw = 0;
    for (_, entry) in &entries {
        match entry {
            CorpusEntry::Seeded { oracle, .. } => {
                seeded.insert(*oracle);
            }
            CorpusEntry::DecodeBytes(_) => raw += 1,
        }
    }
    for oracle in Oracle::ALL {
        assert!(
            seeded.contains(&oracle),
            "no seeded corpus entry for {oracle}"
        );
    }
    assert!(
        raw >= 2,
        "want raw decoder entries in the corpus, got {raw}"
    );
}

#[test]
fn corpus_entries_round_trip_through_serialize() {
    for (name, entry) in load_dir(&corpus_dir()).expect("corpus directory loads") {
        let text = entry.serialize("round-trip");
        let reparsed = CorpusEntry::parse(&text)
            .unwrap_or_else(|e| panic!("{name}: serialized form does not reparse: {e}"));
        assert_eq!(
            reparsed, entry,
            "{name}: corpus entry changed in round-trip"
        );
    }
}

/// The contract behind the printed repro line: iteration `i` of a run
/// seeded with `s` behaves identically to iteration 0 of a run seeded
/// with `s + i`, for every oracle.
#[test]
fn seed_reproduction_is_byte_identical() {
    for oracle in Oracle::ALL {
        for iteration in [0u64, 3, 17] {
            let master = 42u64;
            let direct = run_case(oracle, master.wrapping_add(iteration));
            let via_run = run_case(oracle, ipr::fuzz::gen::case_seed(master, iteration));
            assert_eq!(direct, via_run, "{oracle} iteration {iteration}");
        }
    }
}

#[test]
fn smoke_run_is_clean_and_deterministic() {
    let config = FuzzConfig {
        seed: 7,
        iters: 20,
        ..FuzzConfig::default()
    };
    let a = run(&config);
    assert!(a.is_clean(), "violations: {:?}", a.violations);
    assert_eq!(a.iters_run, 20);
    let b = run(&config);
    assert_eq!(a.iters_run, b.iters_run);
    assert_eq!(a.violations.len(), b.violations.len());
}

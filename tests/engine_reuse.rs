//! Property tests for the [`ipr::Engine`] session layer: a reused
//! engine — arenas warm, pools full of recycled storage — must behave
//! exactly like a fresh engine built per call, across heterogeneous
//! input sequences, for every cycle policy and thread count.

use ipr::core::{required_capacity, CyclePolicy};
use ipr::pipeline::{Engine, EngineConfig, EngineError};
use proptest::prelude::*;

/// Cycle policies the reuse property is checked under.
const POLICIES: [CyclePolicy; 3] = [
    CyclePolicy::ConstantTime,
    CyclePolicy::LocallyMinimum,
    CyclePolicy::Exhaustive { limit: 10 },
];

/// Worker counts the reuse property is checked under (0 = all cores).
const THREADS: [usize; 3] = [1, 2, 0];

/// A version derived from a reference by random edit operations, so the
/// pair is realistically delta-compressible.
fn edited_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    let reference = proptest::collection::vec(any::<u8>(), 0..1024);
    let edits = proptest::collection::vec(
        (
            0u8..4,                       // op
            any::<prop::sample::Index>(), // position
            1usize..128,                  // length
            any::<u8>(),                  // value seed
        ),
        0..6,
    );
    (reference, edits).prop_map(|(reference, edits)| {
        let mut version = reference.clone();
        for (op, pos, len, val) in edits {
            if version.is_empty() {
                version.extend(std::iter::repeat_n(val, len));
                continue;
            }
            let at = pos.index(version.len());
            match op {
                0 => version[at] = val,
                1 => {
                    let block: Vec<u8> = (0..len).map(|i| val.wrapping_add(i as u8)).collect();
                    version.splice(at..at, block);
                }
                2 => {
                    let end = (at + len).min(version.len());
                    version.drain(at..end);
                }
                _ => {
                    let end = (at + len).min(version.len());
                    let block: Vec<u8> = version[at..end].to_vec();
                    version.extend(block);
                }
            }
        }
        (reference, version)
    })
}

/// An engine config for one (policy, threads) combination.
fn config_for(policy: CyclePolicy, threads: usize) -> EngineConfig {
    let mut config = EngineConfig::with_threads(threads);
    config.conversion.policy = policy;
    config
}

/// One update on `engine`, compared against a fresh engine with the same
/// configuration; returns whether the update succeeded.
fn step_matches_fresh(
    engine: &mut Engine,
    config: EngineConfig,
    reference: &[u8],
    version: &[u8],
) -> Result<bool, TestCaseError> {
    let warm = engine.update(reference, version);
    let cold = Engine::with_config(config).update(reference, version);
    match (warm, cold) {
        (Ok(warm), Ok(cold)) => {
            prop_assert_eq!(
                warm.script.commands(),
                cold.script.commands(),
                "reused engine emitted different commands"
            );
            prop_assert_eq!(
                &warm.payload,
                &cold.payload,
                "reused engine emitted different wire bytes"
            );
            prop_assert_eq!(warm.version_len, cold.version_len);

            // The reused engine's applier must also rebuild the version.
            let mut buf = reference.to_vec();
            buf.resize((required_capacity(&warm.script) as usize).max(buf.len()), 0);
            engine
                .apply_in_place(&warm.script, &mut buf)
                .expect("converted script applies");
            prop_assert_eq!(
                &buf[..version.len()],
                version,
                "reused engine rebuilt a different file"
            );
            engine.recycle(warm);
            Ok(true)
        }
        // The exhaustive policy may refuse oversized components — but it
        // must refuse identically whether the engine is warm or cold.
        (Err(EngineError::Convert(w)), Err(EngineError::Convert(c))) => {
            prop_assert_eq!(w, c, "warm and cold engines failed differently");
            Ok(false)
        }
        (warm, cold) => {
            prop_assert!(
                false,
                "warm and cold engines disagreed: {:?} vs {:?}",
                warm.map(|d| d.payload.len()),
                cold.map(|d| d.payload.len())
            );
            Ok(false)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One engine reused across a heterogeneous sequence of inputs is
    /// indistinguishable from a fresh engine per call, for every policy
    /// and thread count.
    #[test]
    fn reused_engine_matches_fresh_per_call(
        pairs in proptest::collection::vec(edited_pair(), 2..5),
    ) {
        for policy in POLICIES {
            for threads in THREADS {
                let config = config_for(policy, threads);
                let mut engine = Engine::with_config(config);
                for (reference, version) in &pairs {
                    step_matches_fresh(&mut engine, config, reference, version)?;
                }
            }
        }
    }

    /// `update_many` over a version chain equals one fresh engine per
    /// hop, and its deltas chain hop by hop.
    #[test]
    fn update_many_matches_fresh_per_hop(
        reference in proptest::collection::vec(any::<u8>(), 0..512),
        versions in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 1..4),
    ) {
        let config = config_for(CyclePolicy::LocallyMinimum, 1);
        let mut engine = Engine::with_config(config);
        let version_refs: Vec<&[u8]> = versions.iter().map(Vec::as_slice).collect();
        let deltas = engine
            .update_many(&reference, version_refs)
            .expect("default policy never refuses");
        prop_assert_eq!(deltas.len(), versions.len());
        let mut prev: &[u8] = &reference;
        for (delta, version) in deltas.iter().zip(&versions) {
            let fresh = Engine::with_config(config)
                .update(prev, version)
                .expect("default policy never refuses");
            prop_assert_eq!(delta.script.commands(), fresh.script.commands());
            prop_assert_eq!(&delta.payload, &fresh.payload);
            prev = version;
        }
    }

    /// `apply_chain` on a warm engine rebuilds the final version of the
    /// chain its own `diff` stage produced.
    #[test]
    fn apply_chain_rebuilds_final_version(
        reference in proptest::collection::vec(any::<u8>(), 0..512),
        versions in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512), 1..4),
    ) {
        let config = config_for(CyclePolicy::LocallyMinimum, 1);
        let mut engine = Engine::with_config(config);
        // Warm the engine up first so apply_chain sees reused arenas.
        for version in &versions {
            let delta = engine.update(&reference, version).expect("update succeeds");
            engine.recycle(delta);
        }
        let mut scripts = Vec::new();
        let mut prev: &[u8] = &reference;
        for version in &versions {
            scripts.push(engine.diff(prev, version));
            prev = version;
        }
        let mut buf = reference.clone();
        engine.apply_chain(&scripts, &mut buf).expect("chain applies");
        prop_assert_eq!(&buf, versions.last().unwrap());
    }
}

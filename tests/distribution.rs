//! End-to-end distribution of packaged archives — the paper's actual
//! artifact shape — through every transport the toolkit offers.

use ipr::core::ConversionConfig;
use ipr::delta::codec::Format;
use ipr::delta::diff::{Differ, GreedyDiffer};
use ipr::device::flash::{FlashStorage, FlashUpdater};
use ipr::device::update::{install_update, install_update_streaming, prepare_update};
use ipr::device::{Channel, Device, LossyChannel};
use ipr::workloads::archive::{distribution_pair, parse_archive};

#[test]
fn archive_release_installs_over_every_transport() {
    let pair = distribution_pair(41, 40, 2_000..8_000);
    let update = prepare_update(
        &GreedyDiffer::default(),
        &pair.old,
        &pair.new,
        &ConversionConfig::default(),
        Format::Improved,
    )
    .unwrap();
    assert!(
        update.payload.len() * 4 < pair.new.len(),
        "distribution delta should compress at least 4x"
    );
    let capacity = pair.old.len().max(pair.new.len());

    // Batch install.
    let mut dev = Device::new(capacity);
    dev.flash(&pair.old).unwrap();
    install_update(&mut dev, &update.payload, Channel::dialup()).unwrap();
    assert_eq!(dev.image(), &pair.new[..]);
    assert!(
        parse_archive(dev.image()).is_some(),
        "image is a valid archive"
    );

    // Streaming install in MTU-sized chunks.
    let mut dev = Device::new(capacity);
    dev.flash(&pair.old).unwrap();
    install_update_streaming(&mut dev, update.payload.chunks(576), Channel::isdn()).unwrap();
    assert_eq!(dev.image(), &pair.new[..]);

    // Lossy-channel accounting: the delta wins harder as loss grows.
    let lossy = LossyChannel::new(Channel::dialup(), 0.1, 5);
    let delta_t = lossy
        .simulate_transfer(update.payload.len() as u64, 576)
        .time;
    let full_t = lossy.simulate_transfer(pair.new.len() as u64, 576).time;
    assert!(delta_t * 3 < full_t);
}

#[test]
fn archive_release_patches_flash_in_place() {
    let pair = distribution_pair(43, 24, 2_000..6_000);
    let script = GreedyDiffer::default().diff(&pair.old, &pair.new);
    let converted =
        ipr::core::convert_to_in_place(&script, &pair.old, &ConversionConfig::default()).unwrap();

    let block_size = 4096;
    let capacity = pair.old.len().max(pair.new.len());
    let mut flash = FlashStorage::new(capacity.div_ceil(block_size) + 1, block_size);
    let mut updater = FlashUpdater::new(&mut flash, 0);
    updater.reflash(&pair.old).unwrap();
    let stats = updater.apply_update(&converted.script).unwrap();
    assert_eq!(updater.image(), &pair.new[..]);
    assert!(parse_archive(updater.image()).is_some());
    assert!(stats.erases >= 1);
}

#[test]
fn consecutive_distribution_releases_compose() {
    // Build a 3-release history by re-mutating: release B of pair(seed) is
    // release A of the next hop only if contents line up, so instead chain
    // via diffs of the same artifacts.
    let pair1 = distribution_pair(47, 20, 1_000..4_000);
    // Derive a third image by re-running the generator on the new image's
    // members through a second pair is not possible directly; emulate a
    // second hop by member-level reversal: old <- new (a rollback delta).
    let differ = GreedyDiffer::default();
    let d_forward = differ.diff(&pair1.old, &pair1.new);
    let d_back = differ.diff(&pair1.new, &pair1.old);
    let round_trip = ipr::delta::compose(&d_forward, &d_back).unwrap();
    assert_eq!(
        ipr::delta::apply(&round_trip, &pair1.old).unwrap(),
        pair1.old,
        "forward then rollback composes to identity semantics"
    );
}

//! Property tests for the wave-parallel shared-index diff engine:
//! scripts from [`ParallelDiffer`] must apply back to the version file
//! for every differ family, thread count and chunk size (down to one
//! byte), emit identical commands regardless of thread count, and stay
//! within the documented seam compression bound of the serial engine.

use ipr::delta::apply;
use ipr::delta::diff::{
    CorrectingDiffer, Differ, GreedyDiffer, IndexedDiffer, OnePassDiffer, ParallelDiffer,
};
use proptest::prelude::*;

/// A version derived from a reference by random edit operations (same
/// shape as tests/parallel_apply.rs): realistically compressible pairs.
fn edited_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    let reference = proptest::collection::vec(any::<u8>(), 0..2048);
    let edits = proptest::collection::vec(
        (
            0u8..5,
            any::<prop::sample::Index>(),
            1usize..200,
            any::<u8>(),
        ),
        0..8,
    );
    (reference, edits).prop_map(|(reference, edits)| {
        let mut version = reference.clone();
        for (op, pos, len, val) in edits {
            if version.is_empty() {
                version.extend(std::iter::repeat_n(val, len));
                continue;
            }
            let at = pos.index(version.len());
            match op {
                0 => version[at] = val,
                1 => {
                    let block: Vec<u8> = (0..len).map(|i| val.wrapping_add(i as u8)).collect();
                    version.splice(at..at, block);
                }
                2 => {
                    let end = (at + len).min(version.len());
                    version.drain(at..end);
                }
                3 => {
                    let end = (at + len).min(version.len());
                    let block: Vec<u8> = version.drain(at..end).collect();
                    let dst = if version.is_empty() {
                        0
                    } else {
                        pos.index(version.len() + 1)
                    };
                    version.splice(dst..dst, block);
                }
                _ => {
                    let end = (at + len).min(version.len());
                    let block: Vec<u8> = version[at..end].to_vec();
                    version.extend(block);
                }
            }
        }
        (reference, version)
    })
}

/// Correctness + cross-thread-count determinism + seam bound for one
/// wrapped engine at one chunk size.
fn check_engine<D: IndexedDiffer + Clone>(
    inner: D,
    reference: &[u8],
    version: &[u8],
    chunk: usize,
) -> Result<(), TestCaseError> {
    let serial = inner.diff(reference, version);
    prop_assert_eq!(
        &apply(&serial, reference).unwrap(),
        &version.to_vec(),
        "serial oracle rebuilds the version"
    );
    let mut first: Option<ipr::delta::DeltaScript> = None;
    for threads in [1usize, 2, 3, 8] {
        let differ = ParallelDiffer::new(inner.clone())
            .with_threads(threads)
            .with_chunk_bytes(chunk);
        let script = differ.diff(reference, version);
        prop_assert_eq!(
            &apply(&script, reference).unwrap(),
            &version.to_vec(),
            "{} chunk={} threads={}",
            differ.name(),
            chunk,
            threads
        );
        match &first {
            None => first = Some(script),
            Some(f) => prop_assert_eq!(
                f.commands(),
                script.commands(),
                "{} chunk={}: threads=1 and threads={} disagree",
                differ.name(),
                chunk,
                threads
            ),
        }
    }
    // Documented seam bound: each of the (ceil(len/chunk) - 1) seams can
    // cost at most 2 * seed_len literal bytes over the serial script.
    let script = first.expect("at least one thread count ran");
    let seams = version.len().div_ceil(chunk.max(1)).saturating_sub(1) as u64;
    let bound = serial.added_bytes() + seams * 2 * inner.seed_len() as u64;
    prop_assert!(
        script.added_bytes() <= bound,
        "chunk={}: parallel added {} > serial {} + seam bound {}",
        chunk,
        script.added_bytes(),
        serial.added_bytes(),
        seams * 2 * inner.seed_len() as u64
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All three differ families, random chunk sizes down to one byte.
    #[test]
    fn parallel_equals_serial_applied_result(
        (reference, version) in edited_pair(),
        chunk in 1usize..512,
    ) {
        check_engine(GreedyDiffer::new(8), &reference, &version, chunk)?;
        check_engine(OnePassDiffer::new(8, 12), &reference, &version, chunk)?;
        check_engine(CorrectingDiffer::new(8, 12), &reference, &version, chunk)?;
    }

    /// Chunks larger than the version degenerate to the serial scan and
    /// must reproduce its commands bit-exactly.
    #[test]
    fn oversized_chunk_is_bit_identical_to_serial(
        (reference, version) in edited_pair(),
        threads in 1usize..=8,
    ) {
        let inner = GreedyDiffer::new(8);
        let serial = inner.diff(&reference, &version);
        let parallel = ParallelDiffer::new(inner)
            .with_threads(threads)
            .with_chunk_bytes(1 << 20)
            .diff(&reference, &version);
        prop_assert_eq!(serial.commands(), parallel.commands());
    }
}

#[test]
fn degenerate_inputs_across_engines() {
    let cases: [(&[u8], &[u8]); 5] = [
        (b"", b""),
        (b"", b"all of this is new data with no reference at all"),
        (b"everything here is deleted", b""),
        (b"unchanged", b"unchanged"),
        (b"abc", b"zzzzzz"),
    ];
    for chunk in [1usize, 7, 64 * 1024] {
        for (r, v) in cases {
            let engines: [&dyn Differ; 3] = [
                &ParallelDiffer::new(GreedyDiffer::new(4)).with_chunk_bytes(chunk),
                &ParallelDiffer::new(OnePassDiffer::new(4, 10)).with_chunk_bytes(chunk),
                &ParallelDiffer::new(CorrectingDiffer::new(4, 10)).with_chunk_bytes(chunk),
            ];
            for differ in engines {
                let script = differ.diff(r, v);
                assert_eq!(
                    apply(&script, r).unwrap(),
                    v,
                    "{} chunk={chunk} on {}B/{}B",
                    differ.name(),
                    r.len(),
                    v.len()
                );
            }
        }
    }
}

#[test]
fn all_copy_input_stays_all_copy() {
    // Identical 32 KiB files across 1-byte .. 4 KiB chunks: stitching
    // must leave zero literal bytes for every engine.
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let data: Vec<u8> = (0..32 * 1024)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 56) as u8
        })
        .collect();
    for chunk in [1usize, 511, 4096] {
        let engines: [&dyn Differ; 3] = [
            &ParallelDiffer::new(GreedyDiffer::default())
                .with_threads(4)
                .with_chunk_bytes(chunk),
            &ParallelDiffer::new(OnePassDiffer::default())
                .with_threads(4)
                .with_chunk_bytes(chunk),
            &ParallelDiffer::new(CorrectingDiffer::default())
                .with_threads(4)
                .with_chunk_bytes(chunk),
        ];
        for differ in engines {
            let script = differ.diff(&data, &data);
            assert_eq!(apply(&script, &data).unwrap(), data);
            assert_eq!(
                script.added_bytes(),
                0,
                "{} chunk={chunk} emitted literals on identical inputs",
                differ.name()
            );
        }
    }
}

#[test]
fn all_add_input_is_one_literal() {
    // Reference shares nothing with the version: the script must be a
    // single add regardless of chunking.
    let reference = vec![0u8; 8 * 1024];
    let version: Vec<u8> = (0..8 * 1024u32).map(|i| (i * 37 % 251) as u8 | 1).collect();
    for chunk in [1usize, 100, 64 * 1024] {
        let differ = ParallelDiffer::new(GreedyDiffer::default())
            .with_threads(3)
            .with_chunk_bytes(chunk);
        let script = differ.diff(&reference, &version);
        assert_eq!(apply(&script, &reference).unwrap(), version);
        assert_eq!(script.added_bytes(), version.len() as u64, "chunk={chunk}");
        assert_eq!(script.add_count(), 1, "chunk={chunk}: adds must coalesce");
    }
}

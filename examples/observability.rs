//! The observability layer, live: run the pipeline over the paper's
//! Figure 2 adversarial workload with a [`StatsRecorder`] installed and
//! read the cycle-breaking statistics off the report — the worked example
//! from docs/OBSERVABILITY.md.
//!
//! [`StatsRecorder`]: ipr::trace::StatsRecorder
//!
//! Run: `cargo run --release --example observability`

use ipr::core::{apply_in_place, convert_to_in_place, ConversionConfig};
use ipr::delta::codec::{decode, encode, Format};
use ipr::workloads::adversarial::tree_digraph;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Install a recorder for this thread; instrumentation everywhere in
    // the pipeline starts emitting into it. Dropping the guard uninstalls.
    let recorder = Arc::new(ipr::trace::StatsRecorder::new());
    let guard = ipr::trace::install(recorder.clone());

    // Figure 2: a tree-shaped CRWI digraph with one back edge per leaf —
    // every leaf sits on a cycle, so conversion must break many cycles.
    let case = tree_digraph(4);

    // Round-trip through the wire format, convert, and apply in place,
    // exactly as a device update would.
    let wire = encode(&case.script, Format::InPlace)?;
    let decoded = decode(&wire)?;
    let outcome = convert_to_in_place(
        &decoded.script,
        &case.reference,
        &ConversionConfig::default(),
    )?;
    let mut buf = case.reference.clone();
    buf.resize(case.reference.len().max(case.version.len()), 0);
    apply_in_place(&outcome.script, &mut buf)?;
    buf.truncate(case.version.len());
    assert_eq!(buf, case.version);

    drop(guard);
    let report = recorder.report();

    // The counters agree with the conversion layer's own report.
    let cycles = report.counter("convert.cycles_broken").unwrap_or(0);
    let reencoded = report.counter("convert.bytes_reencoded").unwrap_or(0);
    println!("workload: {}", case.label);
    println!(
        "cycles broken: {cycles} (conversion layer says {})",
        outcome.report.cycles_broken
    );
    println!(
        "bytes re-encoded as adds: {reencoded} (conversion layer says {})\n",
        outcome.report.conversion_cost
    );
    assert_eq!(cycles, outcome.report.cycles_broken as u64);
    assert_eq!(reencoded, outcome.report.conversion_cost);

    println!("--- human-readable report (what `ipr --stats` prints) ---\n");
    print!("{report}");

    println!("\n--- ipr-stats/1 JSON (what `ipr --stats=json` prints) ---\n");
    println!("{}", report.to_json());
    Ok(())
}

//! Over-the-air firmware update to a storage-constrained device — the
//! paper's motivating scenario end to end.
//!
//! A 768 KiB device holds a 640 KiB firmware image; the new release moves
//! code sections around (cycles!) and grows slightly. The server prepares
//! an in-place reconstructible delta; the device installs it over a
//! 56 kbit/s link with no scratch storage, faulting on any
//! write-before-read hazard and verifying a CRC at the end.
//!
//! Run: `cargo run --release --example firmware_update`

use ipr::core::ConversionConfig;
use ipr::delta::codec::Format;
use ipr::delta::diff::{Differ, GreedyDiffer};
use ipr::device::update::{install_update, prepare_update};
use ipr::device::{Channel, Device};
use ipr::workloads::content::{generate, ContentKind};
use ipr::workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build firmware v1 and v2 (v2 = v1 with moved/edited/inserted blocks).
    let mut rng = StdRng::seed_from_u64(2024);
    let v1 = generate(&mut rng, ContentKind::BinaryLike, 640 * 1024);
    let v2 = mutate(&mut rng, &v1, &MutationProfile::default());
    println!("firmware v1: {} B, v2: {} B", v1.len(), v2.len());

    // Server side: diff + in-place conversion + serialization.
    let update = prepare_update(
        &GreedyDiffer::default(),
        &v1,
        &v2,
        &ConversionConfig::default(),
        Format::InPlace,
    )?;
    println!(
        "update payload: {} B ({:.1}% of a full image); {} cycles broken, {} copies converted",
        update.payload.len(),
        100.0 * update.ratio(),
        update.report.cycles_broken,
        update.report.copies_converted,
    );

    // Device side: flash v1, then install the delta over dial-up.
    let mut device = Device::new(768 * 1024);
    device.flash(&v1)?;
    let channel = Channel::dialup();
    let report = install_update(&mut device, &update.payload, channel)?;
    assert_eq!(device.image(), &v2[..]);
    println!(
        "installed in place: {} commands, {} B written, {} B scratch used, crc {}",
        report.stats.commands,
        report.stats.bytes_written,
        report.stats.scratch_bytes,
        if report.crc_verified {
            "verified"
        } else {
            "absent"
        },
    );
    println!(
        "transfer over {}: {:.1} s (full image would take {:.1} s — {:.1}x speedup)",
        channel,
        report.transfer_time.as_secs_f64(),
        channel.transfer_time(v2.len() as u64).as_secs_f64(),
        channel.speedup(v2.len() as u64, update.payload.len() as u64),
    );

    // What the paper's algorithm prevents: applying the *unconverted*
    // delta in place. The device's write-before-read detector trips.
    let raw_script = GreedyDiffer::default().diff(&v1, &v2);
    let mut naive = Device::new(768 * 1024);
    naive.flash(&v1)?;
    match naive.apply_update(&raw_script) {
        Err(e) => println!("unconverted delta rejected as expected: {e}"),
        Ok(_) => {
            // Rare but possible: this particular delta happened to be
            // conflict-free already.
            assert_eq!(naive.image(), &v2[..]);
            println!("unconverted delta happened to be conflict-free");
        }
    }
    Ok(())
}

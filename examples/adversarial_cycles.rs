//! The paper's two adversarial constructions, live:
//!
//! * Figure 2 — a tree-shaped CRWI digraph on which the locally-minimum
//!   policy deletes every leaf while the true optimum deletes only the
//!   root; the exhaustive solver confirms the optimum on small instances.
//! * Figure 3 — a file pair whose conflict digraph has quadratically many
//!   edges, while Lemma 1 still caps them at the version length.
//!
//! Both are *real delta scripts over real file pairs*: after every policy
//! decision the example rebuilds the version in place and checks each
//! byte.
//!
//! Run: `cargo run --release --example adversarial_cycles`

use ipr::core::{apply_in_place, convert_to_in_place, ConversionConfig, CrwiGraph, CyclePolicy};
use ipr::workloads::adversarial::{quadratic_edges, tree_digraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- Figure 2: the tree digraph that defeats locally-minimum ---\n");
    for depth in [2usize, 3, 5] {
        let case = tree_digraph(depth);
        let crwi = CrwiGraph::build(case.script.copies());
        println!(
            "{}: {} vertices, {} edges",
            case.label,
            crwi.node_count(),
            crwi.edge_count()
        );
        let mut policies = vec![CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum];
        if depth <= 3 {
            policies.push(CyclePolicy::Exhaustive { limit: 20 });
        }
        for policy in policies {
            let out = convert_to_in_place(
                &case.script,
                &case.reference,
                &ConversionConfig::with_policy(policy),
            )?;
            // Prove correctness by rebuilding in place.
            let mut buf = case.reference.clone();
            apply_in_place(&out.script, &mut buf)?;
            assert_eq!(buf, case.version);
            println!(
                "  {policy:<20} converted {:>3} copies, lost {:>5} B  (rebuilt OK)",
                out.report.copies_converted, out.report.conversion_cost
            );
        }
        println!();
    }

    println!("--- Figure 3: quadratic edge counts, bounded by Lemma 1 ---\n");
    for block in [8u64, 32, 128] {
        let case = quadratic_edges(block);
        let crwi = CrwiGraph::build(case.script.copies());
        println!(
            "{}: {} commands, {} edges (= (b-1)*b), L_V = {}",
            case.label,
            crwi.node_count(),
            crwi.edge_count(),
            case.script.target_len()
        );
        assert_eq!(crwi.edge_count() as u64, (block - 1) * block);
        assert!((crwi.edge_count() as u64) <= case.script.target_len());
        // The digraph is dense but acyclic: conversion is pure reordering.
        let out = convert_to_in_place(&case.script, &case.reference, &ConversionConfig::default())?;
        assert_eq!(out.report.copies_converted, 0);
        let mut buf = case.reference.clone();
        apply_in_place(&out.script, &mut buf)?;
        assert_eq!(buf, case.version);
        println!("  reordered without conversions, rebuilt OK\n");
    }
    Ok(())
}

//! Distributing a software release to a fleet of devices: the corpus-scale
//! view of what in-place reconstruction costs and saves.
//!
//! Generates a synthetic software distribution (mixed source and binary
//! files across revision severities), prepares an in-place delta for every
//! file, and reports the compression spectrum, the conversion overhead per
//! cycle-breaking policy, and the total distribution time over a slow
//! link.
//!
//! Run: `cargo run --release --example software_distribution`

use ipr::core::{convert_to_in_place, ConversionConfig, CyclePolicy};
use ipr::delta::codec::{encoded_size, Format};
use ipr::delta::diff::{Differ, GreedyDiffer};
use ipr::device::Channel;
use ipr::workloads::corpus::CorpusSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = CorpusSpec {
        pairs: 48,
        min_len: 8 * 1024,
        max_len: 128 * 1024,
        ..CorpusSpec::default()
    }
    .build();
    let differ = GreedyDiffer::default();

    let mut full_total = 0u64;
    let mut plain_total = 0u64;
    let mut lm_total = 0u64;
    let mut ct_total = 0u64;
    let mut cycles = 0usize;
    let mut converted = 0usize;

    for pair in &corpus {
        let script = differ.diff(&pair.reference, &pair.version);
        full_total += pair.version.len() as u64;
        plain_total += encoded_size(&script, Format::Ordered)?;
        for (policy, total) in [
            (CyclePolicy::LocallyMinimum, &mut lm_total),
            (CyclePolicy::ConstantTime, &mut ct_total),
        ] {
            let out = convert_to_in_place(
                &script,
                &pair.reference,
                &ConversionConfig::with_policy(policy),
            )?;
            *total += encoded_size(&out.script, Format::InPlace)?;
            if policy == CyclePolicy::LocallyMinimum {
                cycles += out.report.cycles_broken;
                converted += out.report.copies_converted;
            }
        }
    }

    println!(
        "{} files, {} B of new versions to distribute\n",
        corpus.len(),
        full_total
    );
    let pct = |n: u64| 100.0 * n as f64 / full_total as f64;
    println!(
        "ordinary delta (no write offsets):   {:>9} B  ({:>5.1}%)",
        plain_total,
        pct(plain_total)
    );
    println!(
        "in-place delta (locally-minimum):    {:>9} B  ({:>5.1}%)",
        lm_total,
        pct(lm_total)
    );
    println!(
        "in-place delta (constant-time):      {:>9} B  ({:>5.1}%)",
        ct_total,
        pct(ct_total)
    );
    println!(
        "\nin-place overhead (locally-minimum): {:.2}% of original size; {} cycles broken, {} copies converted",
        pct(lm_total) - pct(plain_total),
        cycles,
        converted
    );

    let channel = Channel::dialup();
    println!(
        "\nfleet distribution over {}: full images {:.1} min, in-place deltas {:.1} min",
        channel,
        channel.transfer_time(full_total).as_secs_f64() / 60.0,
        channel.transfer_time(lm_total).as_secs_f64() / 60.0,
    );
    Ok(())
}

//! Resilient in-place updating: streaming installation, power-failure
//! recovery and flash wear — the extensions a production update engine
//! layers over the paper's algorithm.
//!
//! Run: `cargo run --release --example resilient_update`

use ipr::core::resumable::{resume_in_place, Journal, Progress};
use ipr::core::{convert_to_in_place, required_capacity, ConversionConfig};
use ipr::delta::codec::Format;
use ipr::delta::diff::{CorrectingDiffer, Differ};
use ipr::device::flash::{FlashStorage, FlashUpdater};
use ipr::device::update::{install_update_streaming, prepare_update};
use ipr::device::{Channel, Device};
use ipr::workloads::content::{generate, ContentKind};
use ipr::workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);
    let v1 = generate(&mut rng, ContentKind::BinaryLike, 256 * 1024);
    // A fixed-layout patch (edits without length changes): the flash-wear
    // sweet spot, since unshifted bytes keep their blocks intact.
    let v2 = mutate(&mut rng, &v1, &MutationProfile::aligned());
    let differ = CorrectingDiffer::default();

    // --- 1. Streaming install: apply while the payload arrives. --------
    let update = prepare_update(
        &differ,
        &v1,
        &v2,
        &ConversionConfig::default(),
        Format::Improved,
    )?;
    let mut device = Device::new(512 * 1024);
    device.flash(&v1)?;
    // The payload arrives in 1 KiB network chunks; commands are applied
    // as soon as they are complete — no buffering of the whole delta.
    let report = install_update_streaming(
        &mut device,
        update.payload.chunks(1024),
        Channel::cellular(),
    )?;
    assert_eq!(device.image(), &v2[..]);
    println!(
        "streaming install: {} B payload in 1 KiB chunks, {} commands applied on the fly, crc {}",
        report.received_bytes,
        report.stats.commands,
        if report.crc_verified {
            "verified"
        } else {
            "absent"
        }
    );

    // --- 2. Power-failure recovery with a journal. ----------------------
    let script = differ.diff(&v1, &v2);
    let converted = convert_to_in_place(&script, &v1, &ConversionConfig::default())?;
    let mut storage = v1.clone();
    storage.resize(required_capacity(&converted.script) as usize, 0);
    let mut journal = Journal::new();
    let mut outages = 0;
    // Power fails every 10 000 applied bytes; journal + storage survive.
    while resume_in_place(&converted.script, &mut storage, &mut journal, 4096, 10_000)?
        == Progress::Suspended
    {
        outages += 1;
    }
    storage.truncate(v2.len());
    assert_eq!(storage, v2);
    println!("resumable install: survived {outages} power failures, image intact");

    // --- 3. Flash wear accounting. ---------------------------------------
    let block_size = 4096;
    let blocks = storage.len().div_ceil(block_size) + 1;
    let mut flash = FlashStorage::new(blocks, block_size);
    let mut updater = FlashUpdater::new(&mut flash, 0);
    updater.reflash(&v1)?;
    let stats = updater.apply_update(&converted.script)?;
    assert_eq!(updater.image(), &v2[..]);
    println!(
        "flash update: {} erases ({} blocks would burn on a full reflash), write amplification {:.2}x",
        stats.erases,
        v2.len().div_ceil(block_size),
        stats.write_amplification(),
    );
    Ok(())
}

//! Quickstart: delta-compress a new file version, post-process the delta
//! for in-place reconstruction, and rebuild the new version in the buffer
//! the old version occupies.
//!
//! Run: `cargo run --example quickstart`

use ipr::core::{apply_in_place, check_in_place_safe, convert_to_in_place, ConversionConfig};
use ipr::delta::codec::{decode, encode_checked, Format};
use ipr::delta::diff::{Differ, GreedyDiffer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two versions of a "file". The swap of the two halves is exactly the
    // case where naive in-place application corrupts: each half must be
    // read after it is needed and written before the other reads it.
    let reference: Vec<u8> = (0..=255u8).cycle().take(64 * 1024).collect();
    let mut version = reference.clone();
    version.rotate_left(24 * 1024);
    version.extend_from_slice(b"plus a brand new trailer section");

    // 1. Difference: encode `version` as copies from `reference` + adds.
    let script = GreedyDiffer::default().diff(&reference, &version);
    println!(
        "delta script: {} copies ({} B) + {} adds ({} B)",
        script.copy_count(),
        script.copied_bytes(),
        script.add_count(),
        script.added_bytes()
    );

    // 2. Post-process: permute copies into conflict-free order, convert
    //    cycle-bound copies to adds (Burns & Long, PODC '98).
    let outcome = convert_to_in_place(&script, &reference, &ConversionConfig::default())?;
    println!(
        "conversion: {} CRWI edges, {} cycles broken, {} copies converted (+{} B)",
        outcome.report.edges,
        outcome.report.cycles_broken,
        outcome.report.copies_converted,
        outcome.report.conversion_cost
    );
    check_in_place_safe(&outcome.script)?;

    // 3. Serialize with an explicit-write-offset codec and a target CRC.
    let wire = encode_checked(&outcome.script, Format::InPlace, &version)?;
    println!(
        "wire delta: {} B for a {} B version ({:.1}%)",
        wire.len(),
        version.len(),
        100.0 * wire.len() as f64 / version.len() as f64
    );

    // 4. On the "device": decode and rebuild in place — one buffer, no
    //    scratch space.
    let decoded = decode(&wire)?;
    let mut storage = reference.clone();
    storage.resize(version.len().max(reference.len()), 0);
    apply_in_place(&decoded.script, &mut storage)?;
    storage.truncate(version.len());
    assert_eq!(storage, version);
    println!(
        "rebuilt the new version in place: {} bytes correct",
        storage.len()
    );
    Ok(())
}

//! A distribution server keeping a *delta archive*: one delta per release
//! hop, composed on demand for devices that lag several releases behind —
//! no intermediate versions materialized, every served update in-place
//! reconstructible.
//!
//! Run: `cargo run --release --example delta_server`

use ipr::core::{convert_to_in_place, ConversionConfig};
use ipr::delta::codec::{encode_checked, Format};
use ipr::delta::diff::{CorrectingDiffer, Differ};
use ipr::delta::{compose_chain, DeltaScript};
use ipr::device::update::install_update;
use ipr::device::{Channel, Device};
use ipr::workloads::chain::{ChainPattern, VersionChain};
use ipr::workloads::content::ContentKind;

/// The server: stores per-hop deltas (and, for checksums and conversion,
/// the latest release plus each release's reference copy — a real server
/// would keep only hashes and the delta archive).
struct DeltaServer {
    releases: Vec<Vec<u8>>,
    archive: Vec<DeltaScript>, // archive[i]: release i -> i+1
}

impl DeltaServer {
    fn new(chain: &VersionChain) -> Self {
        let differ = CorrectingDiffer::default();
        let archive = chain
            .hops()
            .map(|(old, new)| differ.diff(old, new))
            .collect();
        Self {
            releases: chain.releases().to_vec(),
            archive,
        }
    }

    fn latest(&self) -> usize {
        self.releases.len() - 1
    }

    /// Serves a device running release `from`: composes the stored hops,
    /// converts for in-place reconstruction and serializes with a CRC.
    fn serve(&self, from: usize) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
        let composed = compose_chain(&self.archive[from..])?;
        let reference = &self.releases[from];
        let outcome = convert_to_in_place(&composed, reference, &ConversionConfig::default())?;
        let target = &self.releases[self.latest()];
        Ok(encode_checked(&outcome.script, Format::Improved, target)?)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Nine patch releases of a 96 KiB firmware.
    let chain = VersionChain::generate(
        2026,
        ContentKind::BinaryLike,
        96 * 1024,
        9,
        ChainPattern::Patches,
    );
    let server = DeltaServer::new(&chain);
    let latest = server.latest();
    let full = chain.release(latest).len();
    let channel = Channel::cellular();

    println!(
        "server: {} releases archived as {} per-hop deltas; latest image {} B\n",
        chain.len(),
        server.archive.len(),
        full
    );
    println!("serving devices at various lags (composed, in-place, CRC'd):\n");
    println!(
        "{:>10}  {:>12}  {:>9}  {:>12}",
        "device at", "payload", "vs full", "transfer"
    );
    for from in [latest - 1, latest - 3, latest - 6, 0] {
        let payload = server.serve(from)?;

        // Device side: install and verify.
        let mut device = Device::new(256 * 1024);
        device.flash(chain.release(from))?;
        let report = install_update(&mut device, &payload, channel)?;
        assert_eq!(device.image(), chain.release(latest));
        assert!(report.crc_verified);

        println!(
            "{:>10}  {:>10} B  {:>8.1}%  {:>10.2} s",
            format!("v{from}"),
            payload.len(),
            100.0 * payload.len() as f64 / full as f64,
            report.transfer_time.as_secs_f64(),
        );
    }
    println!(
        "\nfull image over {channel}: {:.2} s",
        channel.transfer_time(full as u64).as_secs_f64()
    );
    Ok(())
}

/root/repo/target/debug/deps/reduction-418b5f96b43ca3a3.d: crates/bench/src/bin/reduction.rs Cargo.toml

/root/repo/target/debug/deps/libreduction-418b5f96b43ca3a3.rmeta: crates/bench/src/bin/reduction.rs Cargo.toml

crates/bench/src/bin/reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/proptest-d8cceef12e308ed2.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-d8cceef12e308ed2: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:

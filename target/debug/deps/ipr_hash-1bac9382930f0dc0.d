/root/repo/target/debug/deps/ipr_hash-1bac9382930f0dc0.d: crates/hash/src/lib.rs

/root/repo/target/debug/deps/ipr_hash-1bac9382930f0dc0: crates/hash/src/lib.rs

crates/hash/src/lib.rs:

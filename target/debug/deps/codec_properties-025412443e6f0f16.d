/root/repo/target/debug/deps/codec_properties-025412443e6f0f16.d: crates/delta/tests/codec_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_properties-025412443e6f0f16.rmeta: crates/delta/tests/codec_properties.rs Cargo.toml

crates/delta/tests/codec_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

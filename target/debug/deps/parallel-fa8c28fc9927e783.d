/root/repo/target/debug/deps/parallel-fa8c28fc9927e783.d: crates/bench/benches/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-fa8c28fc9927e783.rmeta: crates/bench/benches/parallel.rs Cargo.toml

crates/bench/benches/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ipr_digraph-47060fd5a9034596.d: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs

/root/repo/target/debug/deps/libipr_digraph-47060fd5a9034596.rlib: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs

/root/repo/target/debug/deps/libipr_digraph-47060fd5a9034596.rmeta: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs

crates/digraph/src/lib.rs:
crates/digraph/src/graph.rs:
crates/digraph/src/interval.rs:
crates/digraph/src/fvs.rs:
crates/digraph/src/scc.rs:
crates/digraph/src/topo.rs:

/root/repo/target/debug/deps/ipr-2255039b0549168f.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ipr-2255039b0549168f: crates/cli/src/main.rs

crates/cli/src/main.rs:

/root/repo/target/debug/deps/proptest-65aa1a8f9384bb3f.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-65aa1a8f9384bb3f.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/criterion-cd1962a73209a4c6.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-cd1962a73209a4c6: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:

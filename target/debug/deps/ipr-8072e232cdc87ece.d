/root/repo/target/debug/deps/ipr-8072e232cdc87ece.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libipr-8072e232cdc87ece.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/power_failure-ea25099af89fd7be.d: tests/power_failure.rs Cargo.toml

/root/repo/target/debug/deps/libpower_failure-ea25099af89fd7be.rmeta: tests/power_failure.rs Cargo.toml

tests/power_failure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/parallel_scaling-6be01db6a8f75f02.d: crates/bench/src/bin/parallel_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_scaling-6be01db6a8f75f02.rmeta: crates/bench/src/bin/parallel_scaling.rs Cargo.toml

crates/bench/src/bin/parallel_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ipr-362cfb89bff5c66c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipr-362cfb89bff5c66c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ipr_device-f5a6fe3aa1c868bf.d: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/debug/deps/ipr_device-f5a6fe3aa1c868bf: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

crates/device/src/lib.rs:
crates/device/src/channel.rs:
crates/device/src/device.rs:
crates/device/src/flash.rs:
crates/device/src/update.rs:

/root/repo/target/debug/deps/crwi_properties-ddfc60de1304ffc2.d: crates/core/tests/crwi_properties.rs

/root/repo/target/debug/deps/crwi_properties-ddfc60de1304ffc2: crates/core/tests/crwi_properties.rs

crates/core/tests/crwi_properties.rs:

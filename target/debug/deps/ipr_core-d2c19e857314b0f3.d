/root/repo/target/debug/deps/ipr_core-d2c19e857314b0f3.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/parallel.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs Cargo.toml

/root/repo/target/debug/deps/libipr_core-d2c19e857314b0f3.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/parallel.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/apply.rs:
crates/core/src/convert.rs:
crates/core/src/crwi.rs:
crates/core/src/parallel.rs:
crates/core/src/policy.rs:
crates/core/src/schedule.rs:
crates/core/src/toposort.rs:
crates/core/src/verify.rs:
crates/core/src/resumable.rs:
crates/core/src/spill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

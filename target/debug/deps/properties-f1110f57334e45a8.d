/root/repo/target/debug/deps/properties-f1110f57334e45a8.d: tests/properties.rs

/root/repo/target/debug/deps/properties-f1110f57334e45a8: tests/properties.rs

tests/properties.rs:

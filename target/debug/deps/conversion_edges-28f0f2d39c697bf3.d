/root/repo/target/debug/deps/conversion_edges-28f0f2d39c697bf3.d: crates/core/tests/conversion_edges.rs

/root/repo/target/debug/deps/conversion_edges-28f0f2d39c697bf3: crates/core/tests/conversion_edges.rs

crates/core/tests/conversion_edges.rs:

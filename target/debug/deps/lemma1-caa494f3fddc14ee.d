/root/repo/target/debug/deps/lemma1-caa494f3fddc14ee.d: crates/bench/src/bin/lemma1.rs

/root/repo/target/debug/deps/lemma1-caa494f3fddc14ee: crates/bench/src/bin/lemma1.rs

crates/bench/src/bin/lemma1.rs:

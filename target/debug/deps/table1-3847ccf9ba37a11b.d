/root/repo/target/debug/deps/table1-3847ccf9ba37a11b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3847ccf9ba37a11b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

/root/repo/target/debug/deps/parallel_scaling-848df75b71b18109.d: crates/bench/src/bin/parallel_scaling.rs

/root/repo/target/debug/deps/parallel_scaling-848df75b71b18109: crates/bench/src/bin/parallel_scaling.rs

crates/bench/src/bin/parallel_scaling.rs:

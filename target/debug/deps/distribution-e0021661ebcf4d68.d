/root/repo/target/debug/deps/distribution-e0021661ebcf4d68.d: tests/distribution.rs Cargo.toml

/root/repo/target/debug/deps/libdistribution-e0021661ebcf4d68.rmeta: tests/distribution.rs Cargo.toml

tests/distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

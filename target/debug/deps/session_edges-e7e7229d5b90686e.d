/root/repo/target/debug/deps/session_edges-e7e7229d5b90686e.d: crates/device/tests/session_edges.rs Cargo.toml

/root/repo/target/debug/deps/libsession_edges-e7e7229d5b90686e.rmeta: crates/device/tests/session_edges.rs Cargo.toml

crates/device/tests/session_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

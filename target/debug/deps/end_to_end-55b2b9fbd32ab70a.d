/root/repo/target/debug/deps/end_to_end-55b2b9fbd32ab70a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-55b2b9fbd32ab70a: tests/end_to_end.rs

tests/end_to_end.rs:

/root/repo/target/debug/deps/conversion-0b2c5b1a0c335808.d: crates/bench/benches/conversion.rs Cargo.toml

/root/repo/target/debug/deps/libconversion-0b2c5b1a0c335808.rmeta: crates/bench/benches/conversion.rs Cargo.toml

crates/bench/benches/conversion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

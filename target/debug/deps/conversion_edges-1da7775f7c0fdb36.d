/root/repo/target/debug/deps/conversion_edges-1da7775f7c0fdb36.d: crates/core/tests/conversion_edges.rs

/root/repo/target/debug/deps/conversion_edges-1da7775f7c0fdb36: crates/core/tests/conversion_edges.rs

crates/core/tests/conversion_edges.rs:

/root/repo/target/debug/deps/chains-cc3b718fd100464a.d: crates/bench/src/bin/chains.rs Cargo.toml

/root/repo/target/debug/deps/libchains-cc3b718fd100464a.rmeta: crates/bench/src/bin/chains.rs Cargo.toml

crates/bench/src/bin/chains.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

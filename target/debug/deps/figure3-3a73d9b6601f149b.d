/root/repo/target/debug/deps/figure3-3a73d9b6601f149b.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-3a73d9b6601f149b: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:

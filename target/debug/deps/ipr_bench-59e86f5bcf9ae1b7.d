/root/repo/target/debug/deps/ipr_bench-59e86f5bcf9ae1b7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libipr_bench-59e86f5bcf9ae1b7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libipr_bench-59e86f5bcf9ae1b7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/distribution-a670e627700990ac.d: tests/distribution.rs

/root/repo/target/debug/deps/distribution-a670e627700990ac: tests/distribution.rs

tests/distribution.rs:

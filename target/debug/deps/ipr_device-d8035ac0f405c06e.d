/root/repo/target/debug/deps/ipr_device-d8035ac0f405c06e.d: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/debug/deps/libipr_device-d8035ac0f405c06e.rlib: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/debug/deps/libipr_device-d8035ac0f405c06e.rmeta: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

crates/device/src/lib.rs:
crates/device/src/channel.rs:
crates/device/src/device.rs:
crates/device/src/flash.rs:
crates/device/src/update.rs:

/root/repo/target/debug/deps/ipr-0f9c73424aa82b54.d: src/lib.rs

/root/repo/target/debug/deps/libipr-0f9c73424aa82b54.rlib: src/lib.rs

/root/repo/target/debug/deps/libipr-0f9c73424aa82b54.rmeta: src/lib.rs

src/lib.rs:

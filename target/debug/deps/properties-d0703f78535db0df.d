/root/repo/target/debug/deps/properties-d0703f78535db0df.d: crates/digraph/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d0703f78535db0df.rmeta: crates/digraph/tests/properties.rs Cargo.toml

crates/digraph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

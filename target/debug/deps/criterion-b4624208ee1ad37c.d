/root/repo/target/debug/deps/criterion-b4624208ee1ad37c.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-b4624208ee1ad37c.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/power_failure-07f6bcdf02253982.d: tests/power_failure.rs

/root/repo/target/debug/deps/power_failure-07f6bcdf02253982: tests/power_failure.rs

tests/power_failure.rs:

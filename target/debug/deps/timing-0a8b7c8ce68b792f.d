/root/repo/target/debug/deps/timing-0a8b7c8ce68b792f.d: crates/bench/src/bin/timing.rs

/root/repo/target/debug/deps/timing-0a8b7c8ce68b792f: crates/bench/src/bin/timing.rs

crates/bench/src/bin/timing.rs:

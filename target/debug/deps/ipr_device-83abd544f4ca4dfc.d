/root/repo/target/debug/deps/ipr_device-83abd544f4ca4dfc.d: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/debug/deps/ipr_device-83abd544f4ca4dfc: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

crates/device/src/lib.rs:
crates/device/src/channel.rs:
crates/device/src/device.rs:
crates/device/src/flash.rs:
crates/device/src/update.rs:

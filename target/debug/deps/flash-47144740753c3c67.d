/root/repo/target/debug/deps/flash-47144740753c3c67.d: crates/bench/src/bin/flash.rs Cargo.toml

/root/repo/target/debug/deps/libflash-47144740753c3c67.rmeta: crates/bench/src/bin/flash.rs Cargo.toml

crates/bench/src/bin/flash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

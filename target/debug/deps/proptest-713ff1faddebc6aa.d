/root/repo/target/debug/deps/proptest-713ff1faddebc6aa.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-713ff1faddebc6aa.rlib: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-713ff1faddebc6aa.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:

/root/repo/target/debug/deps/stress-6f608aa821c4980e.d: tests/stress.rs

/root/repo/target/debug/deps/stress-6f608aa821c4980e: tests/stress.rs

tests/stress.rs:

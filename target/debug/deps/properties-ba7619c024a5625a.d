/root/repo/target/debug/deps/properties-ba7619c024a5625a.d: tests/properties.rs

/root/repo/target/debug/deps/properties-ba7619c024a5625a: tests/properties.rs

tests/properties.rs:

/root/repo/target/debug/deps/waves-362205045b61d79f.d: crates/bench/src/bin/waves.rs

/root/repo/target/debug/deps/waves-362205045b61d79f: crates/bench/src/bin/waves.rs

crates/bench/src/bin/waves.rs:

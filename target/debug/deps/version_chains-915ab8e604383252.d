/root/repo/target/debug/deps/version_chains-915ab8e604383252.d: tests/version_chains.rs Cargo.toml

/root/repo/target/debug/deps/libversion_chains-915ab8e604383252.rmeta: tests/version_chains.rs Cargo.toml

tests/version_chains.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

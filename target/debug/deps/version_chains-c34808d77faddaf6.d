/root/repo/target/debug/deps/version_chains-c34808d77faddaf6.d: tests/version_chains.rs

/root/repo/target/debug/deps/version_chains-c34808d77faddaf6: tests/version_chains.rs

tests/version_chains.rs:

/root/repo/target/debug/deps/ipr_bench-4ac6ccf1463c4b95.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ipr_bench-4ac6ccf1463c4b95: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/figure3-126766fad8107776.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-126766fad8107776: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:

/root/repo/target/debug/deps/end_to_end-b584d99d130d1092.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b584d99d130d1092: tests/end_to_end.rs

tests/end_to_end.rs:

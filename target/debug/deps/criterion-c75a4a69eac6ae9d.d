/root/repo/target/debug/deps/criterion-c75a4a69eac6ae9d.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-c75a4a69eac6ae9d.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

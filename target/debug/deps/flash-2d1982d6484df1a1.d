/root/repo/target/debug/deps/flash-2d1982d6484df1a1.d: crates/bench/src/bin/flash.rs

/root/repo/target/debug/deps/flash-2d1982d6484df1a1: crates/bench/src/bin/flash.rs

crates/bench/src/bin/flash.rs:

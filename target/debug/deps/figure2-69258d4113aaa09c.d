/root/repo/target/debug/deps/figure2-69258d4113aaa09c.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-69258d4113aaa09c.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

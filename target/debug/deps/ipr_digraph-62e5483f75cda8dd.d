/root/repo/target/debug/deps/ipr_digraph-62e5483f75cda8dd.d: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs

/root/repo/target/debug/deps/ipr_digraph-62e5483f75cda8dd: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs

crates/digraph/src/lib.rs:
crates/digraph/src/graph.rs:
crates/digraph/src/interval.rs:
crates/digraph/src/fvs.rs:
crates/digraph/src/scc.rs:
crates/digraph/src/topo.rs:

/root/repo/target/debug/deps/ipr-4104468a0d32dd19.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ipr-4104468a0d32dd19: crates/cli/src/main.rs

crates/cli/src/main.rs:

/root/repo/target/debug/deps/crwi-b2cbfc16be2346ca.d: crates/bench/benches/crwi.rs Cargo.toml

/root/repo/target/debug/deps/libcrwi-b2cbfc16be2346ca.rmeta: crates/bench/benches/crwi.rs Cargo.toml

crates/bench/benches/crwi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/conversion_edges-193fac91975def3b.d: crates/core/tests/conversion_edges.rs Cargo.toml

/root/repo/target/debug/deps/libconversion_edges-193fac91975def3b.rmeta: crates/core/tests/conversion_edges.rs Cargo.toml

crates/core/tests/conversion_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

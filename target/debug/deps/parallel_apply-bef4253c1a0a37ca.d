/root/repo/target/debug/deps/parallel_apply-bef4253c1a0a37ca.d: tests/parallel_apply.rs

/root/repo/target/debug/deps/parallel_apply-bef4253c1a0a37ca: tests/parallel_apply.rs

tests/parallel_apply.rs:

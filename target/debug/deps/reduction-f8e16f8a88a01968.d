/root/repo/target/debug/deps/reduction-f8e16f8a88a01968.d: crates/bench/src/bin/reduction.rs

/root/repo/target/debug/deps/reduction-f8e16f8a88a01968: crates/bench/src/bin/reduction.rs

crates/bench/src/bin/reduction.rs:

/root/repo/target/debug/deps/flash-6aeead5ef3738765.d: crates/bench/src/bin/flash.rs

/root/repo/target/debug/deps/flash-6aeead5ef3738765: crates/bench/src/bin/flash.rs

crates/bench/src/bin/flash.rs:

/root/repo/target/debug/deps/golden_format-c56683de598f6841.d: crates/delta/tests/golden_format.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_format-c56683de598f6841.rmeta: crates/delta/tests/golden_format.rs Cargo.toml

crates/delta/tests/golden_format.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

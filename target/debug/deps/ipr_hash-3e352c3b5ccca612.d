/root/repo/target/debug/deps/ipr_hash-3e352c3b5ccca612.d: crates/hash/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipr_hash-3e352c3b5ccca612.rmeta: crates/hash/src/lib.rs Cargo.toml

crates/hash/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/properties-081d71f9bb73b6bd.d: crates/digraph/tests/properties.rs

/root/repo/target/debug/deps/properties-081d71f9bb73b6bd: crates/digraph/tests/properties.rs

crates/digraph/tests/properties.rs:

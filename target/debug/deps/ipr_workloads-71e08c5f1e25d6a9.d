/root/repo/target/debug/deps/ipr_workloads-71e08c5f1e25d6a9.d: crates/workloads/src/lib.rs crates/workloads/src/adversarial.rs crates/workloads/src/archive.rs crates/workloads/src/chain.rs crates/workloads/src/content.rs crates/workloads/src/corpus.rs crates/workloads/src/mutate.rs crates/workloads/src/reduction.rs

/root/repo/target/debug/deps/ipr_workloads-71e08c5f1e25d6a9: crates/workloads/src/lib.rs crates/workloads/src/adversarial.rs crates/workloads/src/archive.rs crates/workloads/src/chain.rs crates/workloads/src/content.rs crates/workloads/src/corpus.rs crates/workloads/src/mutate.rs crates/workloads/src/reduction.rs

crates/workloads/src/lib.rs:
crates/workloads/src/adversarial.rs:
crates/workloads/src/archive.rs:
crates/workloads/src/chain.rs:
crates/workloads/src/content.rs:
crates/workloads/src/corpus.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/reduction.rs:

/root/repo/target/debug/deps/figure2-aadaee32bb25e287.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-aadaee32bb25e287: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:

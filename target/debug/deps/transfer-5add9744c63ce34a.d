/root/repo/target/debug/deps/transfer-5add9744c63ce34a.d: crates/bench/src/bin/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libtransfer-5add9744c63ce34a.rmeta: crates/bench/src/bin/transfer.rs Cargo.toml

crates/bench/src/bin/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

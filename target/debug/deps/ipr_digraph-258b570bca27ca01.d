/root/repo/target/debug/deps/ipr_digraph-258b570bca27ca01.d: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs Cargo.toml

/root/repo/target/debug/deps/libipr_digraph-258b570bca27ca01.rmeta: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs Cargo.toml

crates/digraph/src/lib.rs:
crates/digraph/src/graph.rs:
crates/digraph/src/interval.rs:
crates/digraph/src/fvs.rs:
crates/digraph/src/scc.rs:
crates/digraph/src/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

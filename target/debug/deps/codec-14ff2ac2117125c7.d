/root/repo/target/debug/deps/codec-14ff2ac2117125c7.d: crates/bench/benches/codec.rs Cargo.toml

/root/repo/target/debug/deps/libcodec-14ff2ac2117125c7.rmeta: crates/bench/benches/codec.rs Cargo.toml

crates/bench/benches/codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation-a1170fe747f2c95d.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-a1170fe747f2c95d: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:

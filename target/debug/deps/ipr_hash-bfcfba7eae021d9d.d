/root/repo/target/debug/deps/ipr_hash-bfcfba7eae021d9d.d: crates/hash/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipr_hash-bfcfba7eae021d9d.rmeta: crates/hash/src/lib.rs Cargo.toml

crates/hash/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/timing-8923f570765886a9.d: crates/bench/src/bin/timing.rs Cargo.toml

/root/repo/target/debug/deps/libtiming-8923f570765886a9.rmeta: crates/bench/src/bin/timing.rs Cargo.toml

crates/bench/src/bin/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/distribution-ab11669d99241bb0.d: tests/distribution.rs

/root/repo/target/debug/deps/distribution-ab11669d99241bb0: tests/distribution.rs

tests/distribution.rs:

/root/repo/target/debug/deps/waves-1d246d4fef2bee1b.d: crates/bench/src/bin/waves.rs

/root/repo/target/debug/deps/waves-1d246d4fef2bee1b: crates/bench/src/bin/waves.rs

crates/bench/src/bin/waves.rs:

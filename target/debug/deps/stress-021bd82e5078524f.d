/root/repo/target/debug/deps/stress-021bd82e5078524f.d: tests/stress.rs

/root/repo/target/debug/deps/stress-021bd82e5078524f: tests/stress.rs

tests/stress.rs:

/root/repo/target/debug/deps/stress-a7332b2343f2625a.d: tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-a7332b2343f2625a.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

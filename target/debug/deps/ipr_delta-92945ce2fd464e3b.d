/root/repo/target/debug/deps/ipr_delta-92945ce2fd464e3b.d: crates/delta/src/lib.rs crates/delta/src/apply.rs crates/delta/src/command.rs crates/delta/src/compose.rs crates/delta/src/script.rs crates/delta/src/checksum.rs crates/delta/src/codec/mod.rs crates/delta/src/codec/improved.rs crates/delta/src/codec/inplace.rs crates/delta/src/codec/ordered.rs crates/delta/src/codec/paper.rs crates/delta/src/codec/reader.rs crates/delta/src/codec/stream.rs crates/delta/src/diff/mod.rs crates/delta/src/diff/correcting.rs crates/delta/src/diff/greedy.rs crates/delta/src/diff/onepass.rs crates/delta/src/diff/rolling.rs crates/delta/src/diff/windowed.rs crates/delta/src/stats.rs crates/delta/src/varint.rs Cargo.toml

/root/repo/target/debug/deps/libipr_delta-92945ce2fd464e3b.rmeta: crates/delta/src/lib.rs crates/delta/src/apply.rs crates/delta/src/command.rs crates/delta/src/compose.rs crates/delta/src/script.rs crates/delta/src/checksum.rs crates/delta/src/codec/mod.rs crates/delta/src/codec/improved.rs crates/delta/src/codec/inplace.rs crates/delta/src/codec/ordered.rs crates/delta/src/codec/paper.rs crates/delta/src/codec/reader.rs crates/delta/src/codec/stream.rs crates/delta/src/diff/mod.rs crates/delta/src/diff/correcting.rs crates/delta/src/diff/greedy.rs crates/delta/src/diff/onepass.rs crates/delta/src/diff/rolling.rs crates/delta/src/diff/windowed.rs crates/delta/src/stats.rs crates/delta/src/varint.rs Cargo.toml

crates/delta/src/lib.rs:
crates/delta/src/apply.rs:
crates/delta/src/command.rs:
crates/delta/src/compose.rs:
crates/delta/src/script.rs:
crates/delta/src/checksum.rs:
crates/delta/src/codec/mod.rs:
crates/delta/src/codec/improved.rs:
crates/delta/src/codec/inplace.rs:
crates/delta/src/codec/ordered.rs:
crates/delta/src/codec/paper.rs:
crates/delta/src/codec/reader.rs:
crates/delta/src/codec/stream.rs:
crates/delta/src/diff/mod.rs:
crates/delta/src/diff/correcting.rs:
crates/delta/src/diff/greedy.rs:
crates/delta/src/diff/onepass.rs:
crates/delta/src/diff/rolling.rs:
crates/delta/src/diff/windowed.rs:
crates/delta/src/stats.rs:
crates/delta/src/varint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

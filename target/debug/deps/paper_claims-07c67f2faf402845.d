/root/repo/target/debug/deps/paper_claims-07c67f2faf402845.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-07c67f2faf402845: tests/paper_claims.rs

tests/paper_claims.rs:

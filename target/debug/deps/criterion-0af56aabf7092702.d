/root/repo/target/debug/deps/criterion-0af56aabf7092702.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0af56aabf7092702.rlib: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-0af56aabf7092702.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:

/root/repo/target/debug/deps/ipr-79cf1a6a158311c1.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ipr-79cf1a6a158311c1: crates/cli/src/main.rs

crates/cli/src/main.rs:

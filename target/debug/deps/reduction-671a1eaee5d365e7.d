/root/repo/target/debug/deps/reduction-671a1eaee5d365e7.d: crates/bench/src/bin/reduction.rs Cargo.toml

/root/repo/target/debug/deps/libreduction-671a1eaee5d365e7.rmeta: crates/bench/src/bin/reduction.rs Cargo.toml

crates/bench/src/bin/reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

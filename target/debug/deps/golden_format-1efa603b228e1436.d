/root/repo/target/debug/deps/golden_format-1efa603b228e1436.d: crates/delta/tests/golden_format.rs

/root/repo/target/debug/deps/golden_format-1efa603b228e1436: crates/delta/tests/golden_format.rs

crates/delta/tests/golden_format.rs:

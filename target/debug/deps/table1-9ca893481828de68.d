/root/repo/target/debug/deps/table1-9ca893481828de68.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9ca893481828de68: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

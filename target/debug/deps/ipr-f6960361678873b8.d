/root/repo/target/debug/deps/ipr-f6960361678873b8.d: src/lib.rs

/root/repo/target/debug/deps/ipr-f6960361678873b8: src/lib.rs

src/lib.rs:

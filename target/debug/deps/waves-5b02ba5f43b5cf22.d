/root/repo/target/debug/deps/waves-5b02ba5f43b5cf22.d: crates/bench/src/bin/waves.rs Cargo.toml

/root/repo/target/debug/deps/libwaves-5b02ba5f43b5cf22.rmeta: crates/bench/src/bin/waves.rs Cargo.toml

crates/bench/src/bin/waves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/waves-053cbc8704603aeb.d: crates/bench/src/bin/waves.rs Cargo.toml

/root/repo/target/debug/deps/libwaves-053cbc8704603aeb.rmeta: crates/bench/src/bin/waves.rs Cargo.toml

crates/bench/src/bin/waves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

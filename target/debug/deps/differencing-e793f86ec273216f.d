/root/repo/target/debug/deps/differencing-e793f86ec273216f.d: crates/bench/benches/differencing.rs Cargo.toml

/root/repo/target/debug/deps/libdifferencing-e793f86ec273216f.rmeta: crates/bench/benches/differencing.rs Cargo.toml

crates/bench/benches/differencing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lemma1-0b85a437542dfef2.d: crates/bench/src/bin/lemma1.rs Cargo.toml

/root/repo/target/debug/deps/liblemma1-0b85a437542dfef2.rmeta: crates/bench/src/bin/lemma1.rs Cargo.toml

crates/bench/src/bin/lemma1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/scaling-f2fac529de86873f.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-f2fac529de86873f.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/apply-490441e600d18473.d: crates/bench/benches/apply.rs Cargo.toml

/root/repo/target/debug/deps/libapply-490441e600d18473.rmeta: crates/bench/benches/apply.rs Cargo.toml

crates/bench/benches/apply.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/chains-9ad73b2db044005f.d: crates/bench/src/bin/chains.rs Cargo.toml

/root/repo/target/debug/deps/libchains-9ad73b2db044005f.rmeta: crates/bench/src/bin/chains.rs Cargo.toml

crates/bench/src/bin/chains.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

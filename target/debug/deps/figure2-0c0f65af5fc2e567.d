/root/repo/target/debug/deps/figure2-0c0f65af5fc2e567.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-0c0f65af5fc2e567: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:

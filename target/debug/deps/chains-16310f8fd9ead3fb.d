/root/repo/target/debug/deps/chains-16310f8fd9ead3fb.d: crates/bench/src/bin/chains.rs

/root/repo/target/debug/deps/chains-16310f8fd9ead3fb: crates/bench/src/bin/chains.rs

crates/bench/src/bin/chains.rs:

/root/repo/target/debug/deps/figure1-b737d0033d7a5c0d.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-b737d0033d7a5c0d: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:

/root/repo/target/debug/deps/ipr_device-38c9a1f0a0e11eb0.d: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/debug/deps/libipr_device-38c9a1f0a0e11eb0.rlib: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/debug/deps/libipr_device-38c9a1f0a0e11eb0.rmeta: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

crates/device/src/lib.rs:
crates/device/src/channel.rs:
crates/device/src/device.rs:
crates/device/src/flash.rs:
crates/device/src/update.rs:

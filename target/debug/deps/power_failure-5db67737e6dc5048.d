/root/repo/target/debug/deps/power_failure-5db67737e6dc5048.d: tests/power_failure.rs

/root/repo/target/debug/deps/power_failure-5db67737e6dc5048: tests/power_failure.rs

tests/power_failure.rs:

/root/repo/target/debug/deps/ipr_core-b90300fb85df6cf1.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/parallel.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs

/root/repo/target/debug/deps/ipr_core-b90300fb85df6cf1: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/parallel.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/apply.rs:
crates/core/src/convert.rs:
crates/core/src/crwi.rs:
crates/core/src/parallel.rs:
crates/core/src/policy.rs:
crates/core/src/schedule.rs:
crates/core/src/toposort.rs:
crates/core/src/verify.rs:
crates/core/src/resumable.rs:
crates/core/src/spill.rs:

/root/repo/target/debug/deps/ipr-bef4551350a735a0.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libipr-bef4551350a735a0.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/codec_properties-fb498d6fb92d6087.d: crates/delta/tests/codec_properties.rs

/root/repo/target/debug/deps/codec_properties-fb498d6fb92d6087: crates/delta/tests/codec_properties.rs

crates/delta/tests/codec_properties.rs:

/root/repo/target/debug/deps/transfer-37cdf4455ca6bac4.d: crates/bench/src/bin/transfer.rs Cargo.toml

/root/repo/target/debug/deps/libtransfer-37cdf4455ca6bac4.rmeta: crates/bench/src/bin/transfer.rs Cargo.toml

crates/bench/src/bin/transfer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/crwi_properties-336c54676ee91070.d: crates/core/tests/crwi_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcrwi_properties-336c54676ee91070.rmeta: crates/core/tests/crwi_properties.rs Cargo.toml

crates/core/tests/crwi_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lemma1-444422bbe88f585a.d: crates/bench/src/bin/lemma1.rs

/root/repo/target/debug/deps/lemma1-444422bbe88f585a: crates/bench/src/bin/lemma1.rs

crates/bench/src/bin/lemma1.rs:

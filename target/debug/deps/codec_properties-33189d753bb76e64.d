/root/repo/target/debug/deps/codec_properties-33189d753bb76e64.d: crates/delta/tests/codec_properties.rs

/root/repo/target/debug/deps/codec_properties-33189d753bb76e64: crates/delta/tests/codec_properties.rs

crates/delta/tests/codec_properties.rs:

/root/repo/target/debug/deps/ipr_bench-5bb477bfc16470f3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ipr_bench-5bb477bfc16470f3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/deps/crwi_properties-98a822293f0b1adc.d: crates/core/tests/crwi_properties.rs

/root/repo/target/debug/deps/crwi_properties-98a822293f0b1adc: crates/core/tests/crwi_properties.rs

crates/core/tests/crwi_properties.rs:

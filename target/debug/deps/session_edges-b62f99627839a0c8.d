/root/repo/target/debug/deps/session_edges-b62f99627839a0c8.d: crates/device/tests/session_edges.rs

/root/repo/target/debug/deps/session_edges-b62f99627839a0c8: crates/device/tests/session_edges.rs

crates/device/tests/session_edges.rs:

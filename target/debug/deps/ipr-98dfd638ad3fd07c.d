/root/repo/target/debug/deps/ipr-98dfd638ad3fd07c.d: src/lib.rs

/root/repo/target/debug/deps/libipr-98dfd638ad3fd07c.rlib: src/lib.rs

/root/repo/target/debug/deps/libipr-98dfd638ad3fd07c.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/ipr_workloads-24c9a815d3d34aec.d: crates/workloads/src/lib.rs crates/workloads/src/adversarial.rs crates/workloads/src/archive.rs crates/workloads/src/chain.rs crates/workloads/src/content.rs crates/workloads/src/corpus.rs crates/workloads/src/mutate.rs crates/workloads/src/reduction.rs Cargo.toml

/root/repo/target/debug/deps/libipr_workloads-24c9a815d3d34aec.rmeta: crates/workloads/src/lib.rs crates/workloads/src/adversarial.rs crates/workloads/src/archive.rs crates/workloads/src/chain.rs crates/workloads/src/content.rs crates/workloads/src/corpus.rs crates/workloads/src/mutate.rs crates/workloads/src/reduction.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/adversarial.rs:
crates/workloads/src/archive.rs:
crates/workloads/src/chain.rs:
crates/workloads/src/content.rs:
crates/workloads/src/corpus.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

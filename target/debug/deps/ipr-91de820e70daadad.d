/root/repo/target/debug/deps/ipr-91de820e70daadad.d: src/lib.rs

/root/repo/target/debug/deps/ipr-91de820e70daadad: src/lib.rs

src/lib.rs:

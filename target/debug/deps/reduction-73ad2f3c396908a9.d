/root/repo/target/debug/deps/reduction-73ad2f3c396908a9.d: crates/bench/src/bin/reduction.rs

/root/repo/target/debug/deps/reduction-73ad2f3c396908a9: crates/bench/src/bin/reduction.rs

crates/bench/src/bin/reduction.rs:

/root/repo/target/debug/deps/lemma1-e68b1e9fd93017fa.d: crates/bench/src/bin/lemma1.rs Cargo.toml

/root/repo/target/debug/deps/liblemma1-e68b1e9fd93017fa.rmeta: crates/bench/src/bin/lemma1.rs Cargo.toml

crates/bench/src/bin/lemma1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/transfer-b1e4dd10222f9526.d: crates/bench/src/bin/transfer.rs

/root/repo/target/debug/deps/transfer-b1e4dd10222f9526: crates/bench/src/bin/transfer.rs

crates/bench/src/bin/transfer.rs:

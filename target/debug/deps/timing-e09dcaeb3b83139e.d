/root/repo/target/debug/deps/timing-e09dcaeb3b83139e.d: crates/bench/src/bin/timing.rs Cargo.toml

/root/repo/target/debug/deps/libtiming-e09dcaeb3b83139e.rmeta: crates/bench/src/bin/timing.rs Cargo.toml

crates/bench/src/bin/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/paper_claims-d33bfb1ea9dcc931.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-d33bfb1ea9dcc931: tests/paper_claims.rs

tests/paper_claims.rs:

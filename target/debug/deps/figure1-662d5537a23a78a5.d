/root/repo/target/debug/deps/figure1-662d5537a23a78a5.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-662d5537a23a78a5: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:

/root/repo/target/debug/deps/scaling-72030d1d28a8449b.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-72030d1d28a8449b: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:

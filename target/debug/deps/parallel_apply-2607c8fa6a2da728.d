/root/repo/target/debug/deps/parallel_apply-2607c8fa6a2da728.d: tests/parallel_apply.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_apply-2607c8fa6a2da728.rmeta: tests/parallel_apply.rs Cargo.toml

tests/parallel_apply.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/golden_format-7ce75cbf760ce332.d: crates/delta/tests/golden_format.rs

/root/repo/target/debug/deps/golden_format-7ce75cbf760ce332: crates/delta/tests/golden_format.rs

crates/delta/tests/golden_format.rs:

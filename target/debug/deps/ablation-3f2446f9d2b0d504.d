/root/repo/target/debug/deps/ablation-3f2446f9d2b0d504.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-3f2446f9d2b0d504.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/transfer-e4813601c4280ce7.d: crates/bench/src/bin/transfer.rs

/root/repo/target/debug/deps/transfer-e4813601c4280ce7: crates/bench/src/bin/transfer.rs

crates/bench/src/bin/transfer.rs:

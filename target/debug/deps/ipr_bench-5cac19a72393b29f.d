/root/repo/target/debug/deps/ipr_bench-5cac19a72393b29f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libipr_bench-5cac19a72393b29f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libipr_bench-5cac19a72393b29f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

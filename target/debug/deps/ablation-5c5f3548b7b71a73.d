/root/repo/target/debug/deps/ablation-5c5f3548b7b71a73.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-5c5f3548b7b71a73: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:

/root/repo/target/debug/deps/timing-4d2bb0979b80b857.d: crates/bench/src/bin/timing.rs

/root/repo/target/debug/deps/timing-4d2bb0979b80b857: crates/bench/src/bin/timing.rs

crates/bench/src/bin/timing.rs:

/root/repo/target/debug/deps/scaling-986a6c1d8ffc6a58.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-986a6c1d8ffc6a58: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:

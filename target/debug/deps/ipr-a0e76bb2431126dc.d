/root/repo/target/debug/deps/ipr-a0e76bb2431126dc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipr-a0e76bb2431126dc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

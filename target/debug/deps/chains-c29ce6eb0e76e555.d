/root/repo/target/debug/deps/chains-c29ce6eb0e76e555.d: crates/bench/src/bin/chains.rs

/root/repo/target/debug/deps/chains-c29ce6eb0e76e555: crates/bench/src/bin/chains.rs

crates/bench/src/bin/chains.rs:

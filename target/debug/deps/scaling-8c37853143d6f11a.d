/root/repo/target/debug/deps/scaling-8c37853143d6f11a.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-8c37853143d6f11a.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

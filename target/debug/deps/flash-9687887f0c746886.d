/root/repo/target/debug/deps/flash-9687887f0c746886.d: crates/bench/src/bin/flash.rs Cargo.toml

/root/repo/target/debug/deps/libflash-9687887f0c746886.rmeta: crates/bench/src/bin/flash.rs Cargo.toml

crates/bench/src/bin/flash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ipr_hash-c64fb9eb77d687da.d: crates/hash/src/lib.rs

/root/repo/target/debug/deps/libipr_hash-c64fb9eb77d687da.rlib: crates/hash/src/lib.rs

/root/repo/target/debug/deps/libipr_hash-c64fb9eb77d687da.rmeta: crates/hash/src/lib.rs

crates/hash/src/lib.rs:

/root/repo/target/debug/deps/ipr_core-6fe9a6c84ed5a61f.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/parallel.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs

/root/repo/target/debug/deps/libipr_core-6fe9a6c84ed5a61f.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/parallel.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs

/root/repo/target/debug/deps/libipr_core-6fe9a6c84ed5a61f.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/parallel.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/apply.rs:
crates/core/src/convert.rs:
crates/core/src/crwi.rs:
crates/core/src/parallel.rs:
crates/core/src/policy.rs:
crates/core/src/schedule.rs:
crates/core/src/toposort.rs:
crates/core/src/verify.rs:
crates/core/src/resumable.rs:
crates/core/src/spill.rs:

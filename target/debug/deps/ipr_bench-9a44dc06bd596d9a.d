/root/repo/target/debug/deps/ipr_bench-9a44dc06bd596d9a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipr_bench-9a44dc06bd596d9a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/session_edges-56c47c83576f6fd5.d: crates/device/tests/session_edges.rs

/root/repo/target/debug/deps/session_edges-56c47c83576f6fd5: crates/device/tests/session_edges.rs

crates/device/tests/session_edges.rs:

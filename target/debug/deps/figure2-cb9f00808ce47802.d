/root/repo/target/debug/deps/figure2-cb9f00808ce47802.d: crates/bench/src/bin/figure2.rs Cargo.toml

/root/repo/target/debug/deps/libfigure2-cb9f00808ce47802.rmeta: crates/bench/src/bin/figure2.rs Cargo.toml

crates/bench/src/bin/figure2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

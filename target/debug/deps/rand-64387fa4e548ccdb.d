/root/repo/target/debug/deps/rand-64387fa4e548ccdb.d: crates/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-64387fa4e548ccdb.rmeta: crates/rand/src/lib.rs Cargo.toml

crates/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

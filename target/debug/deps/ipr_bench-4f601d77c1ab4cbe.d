/root/repo/target/debug/deps/ipr_bench-4f601d77c1ab4cbe.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipr_bench-4f601d77c1ab4cbe.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/version_chains-91ba023d4e38638b.d: tests/version_chains.rs

/root/repo/target/debug/deps/version_chains-91ba023d4e38638b: tests/version_chains.rs

tests/version_chains.rs:

/root/repo/target/debug/deps/ipr_device-e4805c98c5051199.d: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs Cargo.toml

/root/repo/target/debug/deps/libipr_device-e4805c98c5051199.rmeta: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs Cargo.toml

crates/device/src/lib.rs:
crates/device/src/channel.rs:
crates/device/src/device.rs:
crates/device/src/flash.rs:
crates/device/src/update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/firmware_update-a56e58882f1b3c2c.d: examples/firmware_update.rs

/root/repo/target/debug/examples/firmware_update-a56e58882f1b3c2c: examples/firmware_update.rs

examples/firmware_update.rs:

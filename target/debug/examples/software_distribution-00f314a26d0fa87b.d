/root/repo/target/debug/examples/software_distribution-00f314a26d0fa87b.d: examples/software_distribution.rs

/root/repo/target/debug/examples/software_distribution-00f314a26d0fa87b: examples/software_distribution.rs

examples/software_distribution.rs:

/root/repo/target/debug/examples/software_distribution-5c6ae09aaf1d36fb.d: examples/software_distribution.rs Cargo.toml

/root/repo/target/debug/examples/libsoftware_distribution-5c6ae09aaf1d36fb.rmeta: examples/software_distribution.rs Cargo.toml

examples/software_distribution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

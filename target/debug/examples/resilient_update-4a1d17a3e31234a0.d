/root/repo/target/debug/examples/resilient_update-4a1d17a3e31234a0.d: examples/resilient_update.rs

/root/repo/target/debug/examples/resilient_update-4a1d17a3e31234a0: examples/resilient_update.rs

examples/resilient_update.rs:

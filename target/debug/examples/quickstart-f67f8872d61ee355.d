/root/repo/target/debug/examples/quickstart-f67f8872d61ee355.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f67f8872d61ee355: examples/quickstart.rs

examples/quickstart.rs:

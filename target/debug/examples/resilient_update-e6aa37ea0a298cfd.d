/root/repo/target/debug/examples/resilient_update-e6aa37ea0a298cfd.d: examples/resilient_update.rs

/root/repo/target/debug/examples/resilient_update-e6aa37ea0a298cfd: examples/resilient_update.rs

examples/resilient_update.rs:

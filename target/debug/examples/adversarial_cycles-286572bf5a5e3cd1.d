/root/repo/target/debug/examples/adversarial_cycles-286572bf5a5e3cd1.d: examples/adversarial_cycles.rs

/root/repo/target/debug/examples/adversarial_cycles-286572bf5a5e3cd1: examples/adversarial_cycles.rs

examples/adversarial_cycles.rs:

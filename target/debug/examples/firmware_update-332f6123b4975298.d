/root/repo/target/debug/examples/firmware_update-332f6123b4975298.d: examples/firmware_update.rs

/root/repo/target/debug/examples/firmware_update-332f6123b4975298: examples/firmware_update.rs

examples/firmware_update.rs:

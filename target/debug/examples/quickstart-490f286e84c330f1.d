/root/repo/target/debug/examples/quickstart-490f286e84c330f1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-490f286e84c330f1: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/firmware_update-3d81b5b468f7e3d4.d: examples/firmware_update.rs Cargo.toml

/root/repo/target/debug/examples/libfirmware_update-3d81b5b468f7e3d4.rmeta: examples/firmware_update.rs Cargo.toml

examples/firmware_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/delta_server-fa5faf539e4fa7ca.d: examples/delta_server.rs

/root/repo/target/debug/examples/delta_server-fa5faf539e4fa7ca: examples/delta_server.rs

examples/delta_server.rs:

/root/repo/target/debug/examples/delta_server-df601390e64ab6fb.d: examples/delta_server.rs Cargo.toml

/root/repo/target/debug/examples/libdelta_server-df601390e64ab6fb.rmeta: examples/delta_server.rs Cargo.toml

examples/delta_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/delta_server-520df041a45b085d.d: examples/delta_server.rs

/root/repo/target/debug/examples/delta_server-520df041a45b085d: examples/delta_server.rs

examples/delta_server.rs:

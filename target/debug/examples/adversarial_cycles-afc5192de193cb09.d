/root/repo/target/debug/examples/adversarial_cycles-afc5192de193cb09.d: examples/adversarial_cycles.rs

/root/repo/target/debug/examples/adversarial_cycles-afc5192de193cb09: examples/adversarial_cycles.rs

examples/adversarial_cycles.rs:

/root/repo/target/debug/examples/adversarial_cycles-8c0bc2699cb6720f.d: examples/adversarial_cycles.rs Cargo.toml

/root/repo/target/debug/examples/libadversarial_cycles-8c0bc2699cb6720f.rmeta: examples/adversarial_cycles.rs Cargo.toml

examples/adversarial_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/resilient_update-34d15da5f3d963e7.d: examples/resilient_update.rs Cargo.toml

/root/repo/target/debug/examples/libresilient_update-34d15da5f3d963e7.rmeta: examples/resilient_update.rs Cargo.toml

examples/resilient_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

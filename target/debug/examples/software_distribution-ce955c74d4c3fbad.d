/root/repo/target/debug/examples/software_distribution-ce955c74d4c3fbad.d: examples/software_distribution.rs

/root/repo/target/debug/examples/software_distribution-ce955c74d4c3fbad: examples/software_distribution.rs

examples/software_distribution.rs:

/root/repo/target/release/deps/reduction-22119a8b7b9697aa.d: crates/bench/src/bin/reduction.rs

/root/repo/target/release/deps/reduction-22119a8b7b9697aa: crates/bench/src/bin/reduction.rs

crates/bench/src/bin/reduction.rs:

/root/repo/target/release/deps/transfer-b8491af9046285aa.d: crates/bench/src/bin/transfer.rs

/root/repo/target/release/deps/transfer-b8491af9046285aa: crates/bench/src/bin/transfer.rs

crates/bench/src/bin/transfer.rs:

/root/repo/target/release/deps/ipr_hash-1b603993a5d7ba22.d: crates/hash/src/lib.rs

/root/repo/target/release/deps/libipr_hash-1b603993a5d7ba22.rlib: crates/hash/src/lib.rs

/root/repo/target/release/deps/libipr_hash-1b603993a5d7ba22.rmeta: crates/hash/src/lib.rs

crates/hash/src/lib.rs:

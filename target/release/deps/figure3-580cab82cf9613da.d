/root/repo/target/release/deps/figure3-580cab82cf9613da.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-580cab82cf9613da: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:

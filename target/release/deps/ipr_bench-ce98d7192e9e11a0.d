/root/repo/target/release/deps/ipr_bench-ce98d7192e9e11a0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libipr_bench-ce98d7192e9e11a0.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libipr_bench-ce98d7192e9e11a0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/release/deps/scaling-7e1ae4425ed462fd.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-7e1ae4425ed462fd: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:

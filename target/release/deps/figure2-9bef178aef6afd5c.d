/root/repo/target/release/deps/figure2-9bef178aef6afd5c.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-9bef178aef6afd5c: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:

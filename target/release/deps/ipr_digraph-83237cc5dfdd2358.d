/root/repo/target/release/deps/ipr_digraph-83237cc5dfdd2358.d: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs

/root/repo/target/release/deps/libipr_digraph-83237cc5dfdd2358.rlib: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs

/root/repo/target/release/deps/libipr_digraph-83237cc5dfdd2358.rmeta: crates/digraph/src/lib.rs crates/digraph/src/graph.rs crates/digraph/src/interval.rs crates/digraph/src/fvs.rs crates/digraph/src/scc.rs crates/digraph/src/topo.rs

crates/digraph/src/lib.rs:
crates/digraph/src/graph.rs:
crates/digraph/src/interval.rs:
crates/digraph/src/fvs.rs:
crates/digraph/src/scc.rs:
crates/digraph/src/topo.rs:

/root/repo/target/release/deps/ipr_core-3a7e78df21fbf725.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs

/root/repo/target/release/deps/libipr_core-3a7e78df21fbf725.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs

/root/repo/target/release/deps/libipr_core-3a7e78df21fbf725.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/apply.rs crates/core/src/convert.rs crates/core/src/crwi.rs crates/core/src/policy.rs crates/core/src/schedule.rs crates/core/src/toposort.rs crates/core/src/verify.rs crates/core/src/resumable.rs crates/core/src/spill.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/apply.rs:
crates/core/src/convert.rs:
crates/core/src/crwi.rs:
crates/core/src/policy.rs:
crates/core/src/schedule.rs:
crates/core/src/toposort.rs:
crates/core/src/verify.rs:
crates/core/src/resumable.rs:
crates/core/src/spill.rs:

/root/repo/target/release/deps/differencing-f1d71b5fc5ddbf56.d: crates/bench/benches/differencing.rs

/root/repo/target/release/deps/differencing-f1d71b5fc5ddbf56: crates/bench/benches/differencing.rs

crates/bench/benches/differencing.rs:

/root/repo/target/release/deps/chains-75893913d381665c.d: crates/bench/src/bin/chains.rs

/root/repo/target/release/deps/chains-75893913d381665c: crates/bench/src/bin/chains.rs

crates/bench/src/bin/chains.rs:

/root/repo/target/release/deps/flash-d5aad275c4685253.d: crates/bench/src/bin/flash.rs

/root/repo/target/release/deps/flash-d5aad275c4685253: crates/bench/src/bin/flash.rs

crates/bench/src/bin/flash.rs:

/root/repo/target/release/deps/lemma1-b623bcc181c8a271.d: crates/bench/src/bin/lemma1.rs

/root/repo/target/release/deps/lemma1-b623bcc181c8a271: crates/bench/src/bin/lemma1.rs

crates/bench/src/bin/lemma1.rs:

/root/repo/target/release/deps/ipr_device-7347c7293e520f22.d: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/release/deps/libipr_device-7347c7293e520f22.rlib: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/release/deps/libipr_device-7347c7293e520f22.rmeta: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

crates/device/src/lib.rs:
crates/device/src/channel.rs:
crates/device/src/device.rs:
crates/device/src/flash.rs:
crates/device/src/update.rs:

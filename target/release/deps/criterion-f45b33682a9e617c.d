/root/repo/target/release/deps/criterion-f45b33682a9e617c.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f45b33682a9e617c.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-f45b33682a9e617c.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:

/root/repo/target/release/deps/parallel-48790202445c37cb.d: crates/bench/benches/parallel.rs

/root/repo/target/release/deps/parallel-48790202445c37cb: crates/bench/benches/parallel.rs

crates/bench/benches/parallel.rs:

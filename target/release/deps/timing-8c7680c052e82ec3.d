/root/repo/target/release/deps/timing-8c7680c052e82ec3.d: crates/bench/src/bin/timing.rs

/root/repo/target/release/deps/timing-8c7680c052e82ec3: crates/bench/src/bin/timing.rs

crates/bench/src/bin/timing.rs:

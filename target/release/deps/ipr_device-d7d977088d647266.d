/root/repo/target/release/deps/ipr_device-d7d977088d647266.d: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/release/deps/libipr_device-d7d977088d647266.rlib: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

/root/repo/target/release/deps/libipr_device-d7d977088d647266.rmeta: crates/device/src/lib.rs crates/device/src/channel.rs crates/device/src/device.rs crates/device/src/flash.rs crates/device/src/update.rs

crates/device/src/lib.rs:
crates/device/src/channel.rs:
crates/device/src/device.rs:
crates/device/src/flash.rs:
crates/device/src/update.rs:

/root/repo/target/release/deps/ipr-31ed150c18c4b1eb.d: src/lib.rs

/root/repo/target/release/deps/libipr-31ed150c18c4b1eb.rlib: src/lib.rs

/root/repo/target/release/deps/libipr-31ed150c18c4b1eb.rmeta: src/lib.rs

src/lib.rs:

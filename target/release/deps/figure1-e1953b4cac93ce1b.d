/root/repo/target/release/deps/figure1-e1953b4cac93ce1b.d: crates/bench/src/bin/figure1.rs

/root/repo/target/release/deps/figure1-e1953b4cac93ce1b: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:

/root/repo/target/release/deps/ipr_delta-a194e73be34b9dbd.d: crates/delta/src/lib.rs crates/delta/src/apply.rs crates/delta/src/command.rs crates/delta/src/compose.rs crates/delta/src/script.rs crates/delta/src/checksum.rs crates/delta/src/codec/mod.rs crates/delta/src/codec/improved.rs crates/delta/src/codec/inplace.rs crates/delta/src/codec/ordered.rs crates/delta/src/codec/paper.rs crates/delta/src/codec/reader.rs crates/delta/src/codec/stream.rs crates/delta/src/diff/mod.rs crates/delta/src/diff/correcting.rs crates/delta/src/diff/greedy.rs crates/delta/src/diff/onepass.rs crates/delta/src/diff/rolling.rs crates/delta/src/diff/windowed.rs crates/delta/src/stats.rs crates/delta/src/varint.rs

/root/repo/target/release/deps/libipr_delta-a194e73be34b9dbd.rlib: crates/delta/src/lib.rs crates/delta/src/apply.rs crates/delta/src/command.rs crates/delta/src/compose.rs crates/delta/src/script.rs crates/delta/src/checksum.rs crates/delta/src/codec/mod.rs crates/delta/src/codec/improved.rs crates/delta/src/codec/inplace.rs crates/delta/src/codec/ordered.rs crates/delta/src/codec/paper.rs crates/delta/src/codec/reader.rs crates/delta/src/codec/stream.rs crates/delta/src/diff/mod.rs crates/delta/src/diff/correcting.rs crates/delta/src/diff/greedy.rs crates/delta/src/diff/onepass.rs crates/delta/src/diff/rolling.rs crates/delta/src/diff/windowed.rs crates/delta/src/stats.rs crates/delta/src/varint.rs

/root/repo/target/release/deps/libipr_delta-a194e73be34b9dbd.rmeta: crates/delta/src/lib.rs crates/delta/src/apply.rs crates/delta/src/command.rs crates/delta/src/compose.rs crates/delta/src/script.rs crates/delta/src/checksum.rs crates/delta/src/codec/mod.rs crates/delta/src/codec/improved.rs crates/delta/src/codec/inplace.rs crates/delta/src/codec/ordered.rs crates/delta/src/codec/paper.rs crates/delta/src/codec/reader.rs crates/delta/src/codec/stream.rs crates/delta/src/diff/mod.rs crates/delta/src/diff/correcting.rs crates/delta/src/diff/greedy.rs crates/delta/src/diff/onepass.rs crates/delta/src/diff/rolling.rs crates/delta/src/diff/windowed.rs crates/delta/src/stats.rs crates/delta/src/varint.rs

crates/delta/src/lib.rs:
crates/delta/src/apply.rs:
crates/delta/src/command.rs:
crates/delta/src/compose.rs:
crates/delta/src/script.rs:
crates/delta/src/checksum.rs:
crates/delta/src/codec/mod.rs:
crates/delta/src/codec/improved.rs:
crates/delta/src/codec/inplace.rs:
crates/delta/src/codec/ordered.rs:
crates/delta/src/codec/paper.rs:
crates/delta/src/codec/reader.rs:
crates/delta/src/codec/stream.rs:
crates/delta/src/diff/mod.rs:
crates/delta/src/diff/correcting.rs:
crates/delta/src/diff/greedy.rs:
crates/delta/src/diff/onepass.rs:
crates/delta/src/diff/rolling.rs:
crates/delta/src/diff/windowed.rs:
crates/delta/src/stats.rs:
crates/delta/src/varint.rs:

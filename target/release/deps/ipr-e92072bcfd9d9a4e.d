/root/repo/target/release/deps/ipr-e92072bcfd9d9a4e.d: crates/cli/src/main.rs

/root/repo/target/release/deps/ipr-e92072bcfd9d9a4e: crates/cli/src/main.rs

crates/cli/src/main.rs:

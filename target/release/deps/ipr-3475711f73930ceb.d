/root/repo/target/release/deps/ipr-3475711f73930ceb.d: src/lib.rs

/root/repo/target/release/deps/libipr-3475711f73930ceb.rlib: src/lib.rs

/root/repo/target/release/deps/libipr-3475711f73930ceb.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/parallel_scaling-4cdf6387fef0c1dd.d: crates/bench/src/bin/parallel_scaling.rs

/root/repo/target/release/deps/parallel_scaling-4cdf6387fef0c1dd: crates/bench/src/bin/parallel_scaling.rs

crates/bench/src/bin/parallel_scaling.rs:

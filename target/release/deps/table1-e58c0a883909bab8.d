/root/repo/target/release/deps/table1-e58c0a883909bab8.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e58c0a883909bab8: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:

/root/repo/target/release/deps/ablation-1e84feb3232bab56.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-1e84feb3232bab56: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:

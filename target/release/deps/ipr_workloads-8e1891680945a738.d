/root/repo/target/release/deps/ipr_workloads-8e1891680945a738.d: crates/workloads/src/lib.rs crates/workloads/src/adversarial.rs crates/workloads/src/archive.rs crates/workloads/src/chain.rs crates/workloads/src/content.rs crates/workloads/src/corpus.rs crates/workloads/src/mutate.rs crates/workloads/src/reduction.rs

/root/repo/target/release/deps/libipr_workloads-8e1891680945a738.rlib: crates/workloads/src/lib.rs crates/workloads/src/adversarial.rs crates/workloads/src/archive.rs crates/workloads/src/chain.rs crates/workloads/src/content.rs crates/workloads/src/corpus.rs crates/workloads/src/mutate.rs crates/workloads/src/reduction.rs

/root/repo/target/release/deps/libipr_workloads-8e1891680945a738.rmeta: crates/workloads/src/lib.rs crates/workloads/src/adversarial.rs crates/workloads/src/archive.rs crates/workloads/src/chain.rs crates/workloads/src/content.rs crates/workloads/src/corpus.rs crates/workloads/src/mutate.rs crates/workloads/src/reduction.rs

crates/workloads/src/lib.rs:
crates/workloads/src/adversarial.rs:
crates/workloads/src/archive.rs:
crates/workloads/src/chain.rs:
crates/workloads/src/content.rs:
crates/workloads/src/corpus.rs:
crates/workloads/src/mutate.rs:
crates/workloads/src/reduction.rs:

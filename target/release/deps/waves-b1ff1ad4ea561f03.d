/root/repo/target/release/deps/waves-b1ff1ad4ea561f03.d: crates/bench/src/bin/waves.rs

/root/repo/target/release/deps/waves-b1ff1ad4ea561f03: crates/bench/src/bin/waves.rs

crates/bench/src/bin/waves.rs:

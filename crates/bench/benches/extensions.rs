//! Criterion bench: the extension features — delta composition, streaming
//! decode, resumable (journaled) application and spilled conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipr_core::resumable::{resume_in_place, Journal};
use ipr_core::spill::{convert_with_spill, SpillConfig};
use ipr_core::{convert_to_in_place, required_capacity, ConversionConfig};
use ipr_delta::codec::stream::StreamDecoder;
use ipr_delta::codec::{encode, Format};
use ipr_delta::compose;
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_extensions(c: &mut Criterion) {
    let size = 256 * 1024;
    let mut rng = StdRng::seed_from_u64(3);
    let v1 = ipr_workloads::content::generate(
        &mut rng,
        ipr_workloads::content::ContentKind::BinaryLike,
        size,
    );
    let v2 = mutate(&mut rng, &v1, &MutationProfile::default());
    let v3 = mutate(&mut rng, &v2, &MutationProfile::default());
    let differ = GreedyDiffer::default();
    let d12 = differ.diff(&v1, &v2);
    let d23 = differ.diff(&v2, &v3);

    let mut group = c.benchmark_group("extensions");

    group.throughput(Throughput::Elements((d12.len() + d23.len()) as u64));
    group.bench_function("compose", |b| {
        b.iter(|| compose(&d12, &d23).expect("consecutive"));
    });

    let converted = convert_to_in_place(&d12, &v1, &ConversionConfig::default())
        .expect("conversion cannot fail")
        .script;
    let wire = encode(&converted, Format::InPlace).expect("encodable");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("stream-decode", |b| {
        b.iter(|| {
            let mut d = StreamDecoder::new();
            let mut n = 0usize;
            for chunk in wire.chunks(1400) {
                d.push(chunk);
                while d.next_command().expect("well-formed").is_some() {
                    n += 1;
                }
            }
            n
        });
    });

    let capacity = required_capacity(&converted) as usize;
    group.throughput(Throughput::Bytes(v2.len() as u64));
    group.bench_function("resumable-apply", |b| {
        let mut buf = vec![0u8; capacity];
        b.iter(|| {
            buf[..v1.len()].copy_from_slice(&v1);
            let mut journal = Journal::new();
            resume_in_place(&converted, &mut buf, &mut journal, 4096, u64::MAX)
                .expect("capacity checked")
        });
    });

    for budget in [0u64, 4096] {
        group.bench_with_input(
            BenchmarkId::new("spilled-convert", budget),
            &budget,
            |b, &budget| {
                let config = SpillConfig {
                    conversion: ConversionConfig::default(),
                    scratch_budget: budget,
                };
                b.iter(|| convert_with_spill(&d12, &v1, &config).expect("cannot fail"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);

//! Criterion bench: wave-parallel in-place apply vs the serial applier.
//!
//! The schedule is planned once outside the timed region — the point of
//! [`apply_schedule_parallel`] is that a plan is reusable — so the numbers
//! isolate the apply phase itself. Each iteration restores the reference
//! bytes into the buffer first; that memcpy is identical across variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipr_core::{
    apply_in_place, apply_schedule_parallel, convert_to_in_place, required_capacity,
    ConversionConfig, ParallelConfig, ParallelSchedule, ReadMode,
};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_delta::DeltaScript;
use ipr_workloads::content::{generate, ContentKind};
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(len: usize) -> (DeltaScript, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(4242);
    let reference = generate(&mut rng, ContentKind::BinaryLike, len);
    let version = mutate(&mut rng, &reference, &MutationProfile::default());
    let script = GreedyDiffer::default().diff(&reference, &version);
    let out = convert_to_in_place(&script, &reference, &ConversionConfig::default())
        .expect("conversion cannot fail");
    (out.script, reference)
}

fn bench_parallel_apply(c: &mut Criterion) {
    let len = 2 * 1024 * 1024;
    let (script, reference) = workload(len);
    let plan = ParallelSchedule::plan(&script).expect("converted script is safe");
    let cap = usize::try_from(required_capacity(&script)).expect("fits usize");
    let mut buf = vec![0u8; cap];

    let mut group = c.benchmark_group("parallel_apply");
    group.throughput(Throughput::Bytes(script.target_len()));

    group.bench_function("serial", |b| {
        b.iter(|| {
            buf[..reference.len()].copy_from_slice(&reference);
            apply_in_place(&script, &mut buf).expect("apply");
        });
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("zero-copy", threads),
            &threads,
            |b, &threads| {
                let config = ParallelConfig::with_threads(threads);
                b.iter(|| {
                    buf[..reference.len()].copy_from_slice(&reference);
                    apply_schedule_parallel(&script, &plan, &mut buf, &config).expect("apply");
                });
            },
        );
    }
    group.bench_with_input(BenchmarkId::new("snapshot", 4), &4usize, |b, &threads| {
        let config = ParallelConfig {
            threads,
            read_mode: ReadMode::Snapshot,
            ..ParallelConfig::default()
        };
        b.iter(|| {
            buf[..reference.len()].copy_from_slice(&reference);
            apply_schedule_parallel(&script, &plan, &mut buf, &config).expect("apply");
        });
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_apply);
criterion_main!(benches);

//! Criterion bench: reconstruction — scratch-space apply vs in-place
//! apply vs device-style bounce-buffered apply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipr_core::{
    apply_in_place, apply_in_place_buffered, convert_to_in_place, required_capacity,
    ConversionConfig,
};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_apply(c: &mut Criterion) {
    let size = 512 * 1024;
    let mut rng = StdRng::seed_from_u64(99);
    let reference = ipr_workloads::content::generate(
        &mut rng,
        ipr_workloads::content::ContentKind::BinaryLike,
        size,
    );
    let version = mutate(&mut rng, &reference, &MutationProfile::default());
    let script = GreedyDiffer::default().diff(&reference, &version);
    let inplace = convert_to_in_place(&script, &reference, &ConversionConfig::default())
        .expect("conversion cannot fail")
        .script;
    let capacity = required_capacity(&inplace) as usize;

    let mut group = c.benchmark_group("apply");
    group.throughput(Throughput::Bytes(version.len() as u64));
    group.bench_function("scratch", |b| {
        b.iter(|| ipr_delta::apply(&script, &reference).expect("lengths match"));
    });
    group.bench_function("in-place", |b| {
        let mut buf = vec![0u8; capacity];
        b.iter(|| {
            buf[..reference.len()].copy_from_slice(&reference);
            apply_in_place(&inplace, &mut buf).expect("capacity checked");
        });
    });
    for chunk in [64usize, 4096] {
        group.bench_with_input(BenchmarkId::new("buffered", chunk), &chunk, |b, &chunk| {
            let mut buf = vec![0u8; capacity];
            b.iter(|| {
                buf[..reference.len()].copy_from_slice(&reference);
                apply_in_place_buffered(&inplace, &mut buf, chunk).expect("capacity checked");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);

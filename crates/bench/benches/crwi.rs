//! Criterion bench: CRWI digraph construction and the cycle-breaking
//! topological sort, including the adversarial quadratic-edge input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipr_core::{sort_breaking_cycles, CrwiGraph, CyclePolicy};
use ipr_delta::codec::Format;
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_workloads::adversarial::quadratic_edges;
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_crwi(c: &mut Criterion) {
    let mut group = c.benchmark_group("crwi");

    // Realistic copies from a differenced pair.
    let mut rng = StdRng::seed_from_u64(17);
    let reference = ipr_workloads::content::generate(
        &mut rng,
        ipr_workloads::content::ContentKind::BinaryLike,
        512 * 1024,
    );
    let version = mutate(&mut rng, &reference, &MutationProfile::heavy());
    let script = GreedyDiffer::default().diff(&reference, &version);
    let copies = script.copies();
    group.throughput(Throughput::Elements(copies.len() as u64));
    group.bench_function("build/corpus", |b| {
        b.iter(|| CrwiGraph::build(copies.clone()));
    });

    // Adversarial quadratic edges.
    let case = quadratic_edges(256);
    let adv_copies = case.script.copies();
    group.bench_function("build/quadratic-256", |b| {
        b.iter(|| CrwiGraph::build(adv_copies.clone()));
    });

    // Sorting with each policy over the realistic graph.
    let crwi = CrwiGraph::build(copies);
    let costs: Vec<u64> = crwi
        .copies()
        .iter()
        .map(|c| Format::InPlace.conversion_cost(c))
        .collect();
    for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
        group.bench_with_input(
            BenchmarkId::new("sort", policy.to_string()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    sort_breaking_cycles(crwi.graph(), &costs, policy)
                        .expect("heuristics cannot fail")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crwi);
criterion_main!(benches);

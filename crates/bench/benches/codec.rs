//! Criterion bench: codeword encode/decode across all five formats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipr_delta::codec::{decode, encode, Format};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_codec(c: &mut Criterion) {
    let size = 256 * 1024;
    let mut rng = StdRng::seed_from_u64(5);
    let reference = ipr_workloads::content::generate(
        &mut rng,
        ipr_workloads::content::ContentKind::SourceLike,
        size,
    );
    let version = mutate(&mut rng, &reference, &MutationProfile::default());
    let script = GreedyDiffer::default().diff(&reference, &version);

    let mut group = c.benchmark_group("codec");
    for format in Format::ALL {
        let encoded = encode(&script, format).expect("write-ordered script encodes everywhere");
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("encode", format.to_string()),
            &format,
            |b, &format| b.iter(|| encode(&script, format).expect("encodable")),
        );
        group.bench_with_input(
            BenchmarkId::new("decode", format.to_string()),
            &format,
            |b, _| b.iter(|| decode(&encoded).expect("well-formed")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);

//! Criterion bench: in-place conversion per cycle-breaking policy — the
//! cost of the paper's algorithm itself (§7 claims it is cheaper than
//! differencing; see also the `timing` harness binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipr_core::{convert_to_in_place, ConversionConfig, CyclePolicy};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("conversion");
    for size in [16 * 1024, 128 * 1024, 512 * 1024] {
        let mut rng = StdRng::seed_from_u64(7);
        let reference = ipr_workloads::content::generate(
            &mut rng,
            ipr_workloads::content::ContentKind::BinaryLike,
            size,
        );
        let version = mutate(&mut rng, &reference, &MutationProfile::heavy());
        let script = GreedyDiffer::default().diff(&reference, &version);
        group.throughput(Throughput::Elements(script.copy_count() as u64));
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            group.bench_with_input(BenchmarkId::new(policy.to_string(), size), &size, |b, _| {
                let config = ConversionConfig::with_policy(policy);
                b.iter(|| {
                    convert_to_in_place(&script, &reference, &config)
                        .expect("conversion cannot fail")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);

//! Criterion bench: differencing throughput (greedy vs one-pass), the
//! producer side of the paper's timing comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipr_delta::diff::{CorrectingDiffer, Differ, GreedyDiffer, OnePassDiffer};
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pair(len: usize) -> (Vec<u8>, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(42);
    let reference = ipr_workloads::content::generate(
        &mut rng,
        ipr_workloads::content::ContentKind::BinaryLike,
        len,
    );
    let version = mutate(&mut rng, &reference, &MutationProfile::default());
    (reference, version)
}

fn bench_differs(c: &mut Criterion) {
    let mut group = c.benchmark_group("differencing");
    for size in [16 * 1024, 128 * 1024, 512 * 1024] {
        let (reference, version) = pair(size);
        group.throughput(Throughput::Bytes((reference.len() + version.len()) as u64));
        group.bench_with_input(BenchmarkId::new("greedy", size), &size, |b, _| {
            let differ = GreedyDiffer::default();
            b.iter(|| differ.diff(&reference, &version));
        });
        group.bench_with_input(BenchmarkId::new("one-pass", size), &size, |b, _| {
            let differ = OnePassDiffer::default();
            b.iter(|| differ.diff(&reference, &version));
        });
        group.bench_with_input(BenchmarkId::new("correcting", size), &size, |b, _| {
            let differ = CorrectingDiffer::default();
            b.iter(|| differ.diff(&reference, &version));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_differs);
criterion_main!(benches);

//! Ablations motivated by §5 and §7:
//!
//! 1. **Policy optimality gap** — constant-time vs locally-minimum vs the
//!    exhaustive (NP-hard) optimum on small cyclic inputs. The paper can
//!    only bound the gap (local-min loses ≤ 0.5%); with the exact solver
//!    we measure it.
//! 2. **Codec redesign** — the paper attributes most lost compression to
//!    codeword inefficiency and suggests a redesign; we compare the
//!    paper-faithful codewords, the plain varint in-place codewords and
//!    the chained "improved" format on converted deltas.
//! 3. **Copy buffer granularity** — §4.1's directional copies work with
//!    "a read/write buffer of any size"; we verify equivalence and time
//!    the device-style bounce-buffer applier across chunk sizes.
//!
//! Run: `cargo run -p ipr-bench --release --bin ablation`

use ipr_bench::{bytes, experiment_corpus, pct, timed, Table};
use ipr_core::{
    apply_in_place, apply_in_place_buffered, convert_to_in_place, required_capacity,
    ConversionConfig, CyclePolicy,
};
use ipr_delta::codec::{encoded_size, Format};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_workloads::corpus::CorpusSpec;

fn main() {
    policy_gap();
    codec_redesign();
    buffer_granularity();
    differ_comparison();
    spill_curve();
}

/// Cycle loss as a function of device scratch budget: budget 0 is the
/// paper's no-scratch algorithm; enough budget eliminates the loss.
fn spill_curve() {
    use ipr_core::spill::{convert_with_spill, SpillConfig};
    println!("\n== Ablation 5: scratch budget vs cycle loss (spilled conversion) ==\n");
    let corpus = experiment_corpus();
    let differ = GreedyDiffer::default();
    let mut version_total = 0u64;
    let scripts: Vec<_> = corpus
        .iter()
        .map(|pair| {
            version_total += pair.version.len() as u64;
            (differ.diff(&pair.reference, &pair.version), pair)
        })
        .collect();
    let mut t = Table::new(vec![
        "scratch budget",
        "copies stashed",
        "copies converted",
        "cycle loss (B)",
        "loss vs original",
    ]);
    for budget in [0u64, 256, 1024, 4096, 64 * 1024, u64::MAX] {
        let mut stashed = 0usize;
        let mut converted = 0usize;
        let mut loss = 0u64;
        for (script, pair) in &scripts {
            let out = convert_with_spill(
                script,
                &pair.reference,
                &SpillConfig {
                    conversion: ConversionConfig::default(),
                    scratch_budget: budget,
                },
            )
            .expect("conversion cannot fail");
            stashed += out.stashed.len();
            converted += out.copies_converted;
            loss += out.conversion_cost;
        }
        t.row(vec![
            if budget == u64::MAX {
                "unbounded".into()
            } else {
                bytes(budget)
            },
            stashed.to_string(),
            converted.to_string(),
            bytes(loss),
            pct(loss as f64 / version_total as f64),
        ]);
    }
    t.print();
    println!(
        "\n  a few KiB of device scratch recovers most of the paper's cycle\n\
         loss while still avoiding a full second image."
    );
}

/// Compression/time trade-off of the three differencing engines — the
/// §2 lineage: quadratic-greedy quality vs linear-time algorithms, and
/// how much of the gap the correcting pass recovers.
fn differ_comparison() {
    use ipr_delta::diff::{CorrectingDiffer, OnePassDiffer};
    println!("\n== Ablation 4: differencing engines ==\n");
    let corpus = experiment_corpus();
    let differs: [&dyn Differ; 3] = [
        &GreedyDiffer::default(),
        &OnePassDiffer::default(),
        &CorrectingDiffer::default(),
    ];
    let mut t = Table::new(vec!["differ", "delta bytes", "compression", "diff time"]);
    let mut version_total = 0u64;
    for pair in &corpus {
        version_total += pair.version.len() as u64;
    }
    for differ in differs {
        let mut delta = 0u64;
        let (_, time) = timed(|| {
            for pair in &corpus {
                let script = differ.diff(&pair.reference, &pair.version);
                delta += encoded_size(&script, Format::Ordered).expect("write-ordered");
            }
        });
        t.row(vec![
            differ.name().into(),
            bytes(delta),
            pct(delta as f64 / version_total as f64),
            format!("{:.0} ms", time.as_secs_f64() * 1e3),
        ]);
    }
    t.print();
    println!(
        "\n  the correcting pass recovers much of greedy's quality at\n\
         one-pass speed — the trade the paper's differencing lineage makes."
    );
}

/// Small corpus with aggressive block moves so cycles are common, sized so
/// the exhaustive solver stays feasible.
fn policy_gap() {
    println!("== Ablation 1: cycle-breaking policy vs exact optimum ==\n");
    let corpus = CorpusSpec {
        pairs: 40,
        min_len: 2 * 1024,
        max_len: 8 * 1024,
        seed: 7,
        ..CorpusSpec::default()
    }
    .build();
    let differ = GreedyDiffer::default();
    let format = Format::InPlace;

    let mut totals = [0u64; 3]; // constant, local-min, exhaustive
    let mut solved = 0usize;
    let mut cyclic = 0usize;
    for pair in &corpus {
        let script = differ.diff(&pair.reference, &pair.version);
        let run = |policy| {
            convert_to_in_place(
                &script,
                &pair.reference,
                &ConversionConfig {
                    policy,
                    cost_format: format,
                },
            )
        };
        let ct = run(CyclePolicy::ConstantTime).expect("heuristics cannot fail");
        let lm = run(CyclePolicy::LocallyMinimum).expect("heuristics cannot fail");
        let Ok(exact) = run(CyclePolicy::Exhaustive { limit: 18 }) else {
            continue; // a component too large for exact search
        };
        solved += 1;
        if ct.report.cycles_broken > 0 {
            cyclic += 1;
        }
        totals[0] += ct.report.conversion_cost;
        totals[1] += lm.report.conversion_cost;
        totals[2] += exact.report.conversion_cost;
    }

    let mut t = Table::new(vec!["policy", "total cycle cost (B)", "vs optimum"]);
    let opt = totals[2].max(1) as f64;
    t.row(vec![
        "constant-time".into(),
        bytes(totals[0]),
        format!("{:.2}x", totals[0] as f64 / opt),
    ]);
    t.row(vec![
        "locally-minimum".into(),
        bytes(totals[1]),
        format!("{:.2}x", totals[1] as f64 / opt),
    ]);
    t.row(vec![
        "exhaustive optimum".into(),
        bytes(totals[2]),
        "1.00x".into(),
    ]);
    t.print();
    println!(
        "\n  {solved} pairs exactly solvable, {cyclic} of them cyclic; local-min\n\
         captures most of the gap between constant-time and the NP-hard optimum.\n"
    );
    assert!(
        totals[1] <= totals[0],
        "local-min must not lose more than constant-time"
    );
    assert!(totals[2] <= totals[1], "optimum must be at least as good");
}

fn codec_redesign() {
    println!("== Ablation 2: codeword redesign for in-place deltas ==\n");
    let corpus = experiment_corpus();
    let differ = GreedyDiffer::default();
    let config = ConversionConfig::default();

    let mut version_total = 0u64;
    let mut sizes = [0u64; 3]; // paper-in-place, in-place, improved
    for pair in &corpus {
        let script = differ.diff(&pair.reference, &pair.version);
        let out =
            convert_to_in_place(&script, &pair.reference, &config).expect("conversion cannot fail");
        version_total += pair.version.len() as u64;
        for (i, format) in [Format::PaperInPlace, Format::InPlace, Format::Improved]
            .into_iter()
            .enumerate()
        {
            sizes[i] += encoded_size(&out.script, format).expect("in-place formats encode");
        }
    }
    let mut t = Table::new(vec!["codec", "delta bytes", "compression"]);
    for (name, s) in [
        ("paper codewords (4B offsets, 1B add len)", sizes[0]),
        ("varint in-place codewords", sizes[1]),
        ("improved (chained write offsets)", sizes[2]),
    ] {
        t.row(vec![
            name.into(),
            bytes(s),
            pct(s as f64 / version_total as f64),
        ]);
    }
    t.print();
    println!(
        "\n  the redesign the paper proposes recovers {} of delta size vs the\n\
         paper codewords on the same converted scripts.\n",
        pct((sizes[0] - sizes[2]) as f64 / sizes[0] as f64)
    );
    assert!(
        sizes[2] <= sizes[1],
        "improved codec must not lose to plain varint"
    );
}

fn buffer_granularity() {
    println!("== Ablation 3: bounce-buffer granularity of in-place apply ==\n");
    let corpus = CorpusSpec {
        pairs: 6,
        min_len: 256 * 1024,
        max_len: 512 * 1024,
        seed: 11,
        ..CorpusSpec::default()
    }
    .build();
    let differ = GreedyDiffer::default();
    let config = ConversionConfig::default();

    let prepared: Vec<_> = corpus
        .iter()
        .map(|pair| {
            let script = differ.diff(&pair.reference, &pair.version);
            let out = convert_to_in_place(&script, &pair.reference, &config)
                .expect("conversion cannot fail");
            (pair, out.script)
        })
        .collect();

    let mut t = Table::new(vec!["chunk size", "total apply time", "correct"]);
    // Baseline: unbuffered memmove-style apply.
    let (ok, base_time) = timed(|| {
        prepared.iter().all(|(pair, script)| {
            let mut buf = pair.reference.clone();
            buf.resize(required_capacity(script) as usize, 0);
            apply_in_place(script, &mut buf).expect("capacity checked");
            buf[..pair.version.len()] == pair.version[..]
        })
    });
    t.row(vec![
        "memmove (unbuffered)".into(),
        format!("{:.2} ms", base_time.as_secs_f64() * 1e3),
        ok.to_string(),
    ]);
    for chunk in [1usize, 16, 256, 4096, 65536] {
        let (ok, time) = timed(|| {
            prepared.iter().all(|(pair, script)| {
                let mut buf = pair.reference.clone();
                buf.resize(required_capacity(script) as usize, 0);
                apply_in_place_buffered(script, &mut buf, chunk).expect("capacity checked");
                buf[..pair.version.len()] == pair.version[..]
            })
        });
        assert!(ok, "chunk {chunk} produced wrong bytes");
        t.row(vec![
            format!("{chunk} B"),
            format!("{:.2} ms", time.as_secs_f64() * 1e3),
            ok.to_string(),
        ]);
    }
    t.print();
    println!("\n  every granularity reconstructs identical bytes (invariant I8).");
}

//! Parallel application waves (ours): how much concurrency the CRWI DAG
//! exposes once a delta is converted.
//!
//! §4.1 applies commands serially, "appropriate for limited capability
//! network devices". A host-side patcher (or a DMA-queue device) can do
//! better: commands with no conflict path between them may run
//! concurrently. The longest path of the conflict DAG is the critical
//! path; `commands / waves` is the available speedup.
//!
//! Run: `cargo run -p ipr-bench --release --bin waves`

use ipr_bench::{experiment_corpus, Table};
use ipr_core::{convert_to_in_place, ConversionConfig, ParallelSchedule};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_workloads::adversarial::{quadratic_edges, tree_digraph};

fn main() {
    let corpus = experiment_corpus();
    let differ = GreedyDiffer::default();

    let mut total_commands = 0u64;
    let mut total_waves = 0u64;
    let mut max_waves = 0usize;
    let mut serial_pairs = 0usize;
    for pair in &corpus {
        let script = differ.diff(&pair.reference, &pair.version);
        let out = convert_to_in_place(&script, &pair.reference, &ConversionConfig::default())
            .expect("conversion cannot fail");
        let plan = ParallelSchedule::plan(&out.script).expect("converted script is safe");
        total_commands += out.script.len() as u64;
        total_waves += plan.wave_count() as u64;
        max_waves = max_waves.max(plan.wave_count());
        if plan.wave_count() == out.script.len() {
            serial_pairs += 1;
        }
    }

    println!(
        "Parallel application waves over {} corpus pairs\n",
        corpus.len()
    );
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec![
        "mean commands per delta".into(),
        format!("{:.1}", total_commands as f64 / corpus.len() as f64),
    ]);
    t.row(vec![
        "mean waves (critical path)".into(),
        format!("{:.1}", total_waves as f64 / corpus.len() as f64),
    ]);
    t.row(vec![
        "mean available parallelism".into(),
        format!("{:.1}x", total_commands as f64 / total_waves as f64),
    ]);
    t.row(vec!["deepest critical path".into(), max_waves.to_string()]);
    t.row(vec![
        "fully serial deltas".into(),
        format!("{serial_pairs}/{}", corpus.len()),
    ]);
    t.print();

    println!("\nAdversarial inputs:\n");
    let mut t = Table::new(vec!["input", "commands", "waves", "parallelism"]);
    for case in [tree_digraph(5), quadratic_edges(64)] {
        let out = convert_to_in_place(&case.script, &case.reference, &ConversionConfig::default())
            .expect("conversion cannot fail");
        let plan = ParallelSchedule::plan(&out.script).expect("safe");
        t.row(vec![
            case.label.clone(),
            out.script.len().to_string(),
            plan.wave_count().to_string(),
            format!("{:.1}x", plan.parallelism()),
        ]);
    }
    t.print();
    println!(
        "\nRealistic deltas expose substantial wave parallelism: the conflict\n\
         structure is shallow even when it is wide."
    );
}

//! Figure 1 — how a delta file encodes a version: matching strings become
//! copy commands, new strings become add commands.
//!
//! Run: `cargo run -p ipr-bench --bin figure1`

use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_delta::Command;

fn main() {
    let reference = b"The common string moves; the deleted part goes away; and the tail stays.";
    let version = b"NEW HEADER! The common string moves; and the tail stays. NEW TRAILER!";

    println!(
        "reference ({} B): {:?}",
        reference.len(),
        String::from_utf8_lossy(reference)
    );
    println!(
        "version   ({} B): {:?}\n",
        version.len(),
        String::from_utf8_lossy(version)
    );

    let script = GreedyDiffer::new(8).diff(reference, version);
    println!("delta script ({} commands):", script.len());
    for cmd in script.commands() {
        match cmd {
            Command::Copy(c) => {
                let text =
                    String::from_utf8_lossy(&reference[c.from as usize..(c.from + c.len) as usize]);
                println!("  {cmd}   -- {text:?}");
            }
            Command::Add(a) => {
                println!("  {cmd}   -- {:?}", String::from_utf8_lossy(&a.data));
            }
        }
    }

    let rebuilt = ipr_delta::apply(&script, reference).expect("lengths match");
    assert_eq!(rebuilt, version);
    println!(
        "\nrebuilt {} B from {} copied + {} added; delta carries only the new strings.",
        rebuilt.len(),
        script.copied_bytes(),
        script.added_bytes()
    );
}

//! Parallel apply scaling (ours): serial vs 2/4/8-thread wave-parallel
//! application over the experiment corpus, emitted as JSON for tracking.
//!
//! Every pair is diffed, converted, and planned up front; the timed region
//! is the apply phase only (plans are reusable, and that is what scales).
//! The corpus pass is repeated `IPR_BENCH_REPS` times (default 3) per
//! configuration and the fastest pass is reported.
//!
//! Results land in `results/BENCH_parallel_apply.json`. `host_parallelism`
//! records how many cores the numbers were taken on: speedups above it
//! are not physically possible on that host.
//!
//! Run: `cargo run -p ipr-bench --release --bin parallel_scaling`

use ipr_bench::experiment_corpus;
use ipr_core::{
    apply_in_place, apply_schedule_parallel, convert_to_in_place, required_capacity,
    ConversionConfig, ParallelConfig, ParallelSchedule,
};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_delta::DeltaScript;
use std::time::Instant;

struct Prepared {
    script: DeltaScript,
    plan: ParallelSchedule,
    reference: Vec<u8>,
    buf: Vec<u8>,
}

struct Row {
    config: &'static str,
    threads: usize,
    total_ns: u128,
    mib_per_s: f64,
    speedup: f64,
}

fn corpus_pass(prepared: &mut [Prepared], mut apply: impl FnMut(&mut Prepared)) -> u128 {
    let mut total = 0u128;
    for p in prepared.iter_mut() {
        let n = p.reference.len();
        p.buf[..n].copy_from_slice(&p.reference);
        let t = Instant::now();
        apply(p);
        total += t.elapsed().as_nanos();
    }
    total
}

fn best_of<R: Copy>(reps: usize, mut f: impl FnMut() -> R, better: impl Fn(R, R) -> bool) -> R {
    let mut best = f();
    for _ in 1..reps {
        let r = f();
        if better(r, best) {
            best = r;
        }
    }
    best
}

fn main() {
    let corpus = experiment_corpus();
    let reps: usize = std::env::var("IPR_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let differ = GreedyDiffer::default();

    let plan_start = Instant::now();
    let mut prepared: Vec<Prepared> = corpus
        .iter()
        .map(|pair| {
            let script = differ.diff(&pair.reference, &pair.version);
            let out = convert_to_in_place(&script, &pair.reference, &ConversionConfig::default())
                .expect("conversion cannot fail");
            let plan = ParallelSchedule::plan(&out.script).expect("converted script is safe");
            let cap = usize::try_from(required_capacity(&out.script)).expect("fits usize");
            Prepared {
                script: out.script,
                plan,
                reference: pair.reference.clone(),
                buf: vec![0u8; cap],
            }
        })
        .collect();
    let plan_ns = plan_start.elapsed().as_nanos();

    let payload_bytes: u64 = prepared.iter().map(|p| p.script.target_len()).sum();
    let mib = payload_bytes as f64 / (1024.0 * 1024.0);
    let throughput = |ns: u128| mib / (ns as f64 / 1e9);

    let serial_ns = best_of(
        reps,
        || {
            corpus_pass(&mut prepared, |p| {
                apply_in_place(&p.script, &mut p.buf).expect("apply");
            })
        },
        |a, b| a < b,
    );
    let mut rows = vec![Row {
        config: "serial",
        threads: 1,
        total_ns: serial_ns,
        mib_per_s: throughput(serial_ns),
        speedup: 1.0,
    }];
    for threads in [2usize, 4, 8] {
        let config = ParallelConfig::with_threads(threads);
        let ns = best_of(
            reps,
            || {
                corpus_pass(&mut prepared, |p| {
                    apply_schedule_parallel(&p.script, &p.plan, &mut p.buf, &config)
                        .expect("apply");
                })
            },
            |a, b| a < b,
        );
        rows.push(Row {
            config: "zero-copy",
            threads,
            total_ns: ns,
            mib_per_s: throughput(ns),
            speedup: serial_ns as f64 / ns as f64,
        });
    }

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "Parallel apply scaling: {} pairs, {:.1} MiB payload, {} reps, host has {} core(s)\n",
        corpus.len(),
        mib,
        reps,
        host
    );
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>9}",
        "config", "threads", "total ms", "MiB/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<12} {:>8} {:>12.2} {:>12.1} {:>8.2}x",
            r.config,
            r.threads,
            r.total_ns as f64 / 1e6,
            r.mib_per_s,
            r.speedup
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"parallel_apply\",\n");
    json.push_str("  \"command\": \"cargo run -p ipr-bench --release --bin parallel_scaling\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"pairs\": {},\n", corpus.len()));
    json.push_str(&format!("  \"payload_bytes\": {payload_bytes},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"plan_ns\": {plan_ns},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"threads\": {}, \"total_ns\": {}, \"mib_per_s\": {:.1}, \"speedup_vs_serial\": {:.3}}}{}\n",
            r.config,
            r.threads,
            r.total_ns,
            r.mib_per_s,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_parallel_apply.json", &json).expect("write results");
    println!("\nwrote results/BENCH_parallel_apply.json");
}

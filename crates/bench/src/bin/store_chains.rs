//! Versioned object store: chain depth vs reconstruct latency,
//! compaction ratio, fsck throughput.
//!
//! A drifting release history (`IPR_BENCH_STORE_VERSIONS` versions of
//! `IPR_BENCH_STORE_BYTES` bytes each) is put into a throwaway
//! [`Store`] whose chain-depth cap (`IPR_BENCH_STORE_DEPTH_CAP`) is
//! deliberately smaller than the history, so compaction has work to do.
//! Three regions are measured:
//!
//! * **put** — delta-or-full staging plus the fsynced commit of every
//!   version (the write path, including all durability barriers);
//! * **get** — reconstruction of every version, bucketed by chain
//!   depth, before and after compaction (the paper's access-time /
//!   storage trade-off, here as delta-chain depth vs read latency);
//! * **fsck** — the full CRC + reachability sweep over the compacted
//!   store, reported as bytes verified per second.
//!
//! Results land in `results/BENCH_store_chains.json`. Timing numbers
//! are host-dependent and never gated; the structural numbers (object
//! counts, chain depths, stored byte totals, fsck findings) are
//! deterministic functions of the seed and the differ, identical on
//! every machine.
//!
//! Run: `cargo run -p ipr-bench --release --bin store_chains`
//!
//! With `--compare <baseline.json>` the run gates instead of writing,
//! checking only machine-independent invariants, each exactly:
//!
//! * version and object counts match the baseline;
//! * `max_depth_after` ≤ the depth cap (absolute, within-run);
//! * live delta/full byte totals match the baseline;
//! * fsck finds zero findings and sweeps every live byte.

use ipr_store::{fsck, Store};
use ipr_workloads::chain::{ChainPattern, VersionChain};
use ipr_workloads::content::ContentKind;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Per-depth reconstruct latency bucket.
#[derive(Clone, Copy, Default)]
struct DepthBucket {
    versions: u64,
    total_ns: u128,
    bytes: u64,
}

/// Reads back every version, bucketing latency by chain depth.
/// Returns buckets indexed by depth (index 0 = full images).
fn read_sweep(store: &mut Store) -> Vec<DepthBucket> {
    let log: Vec<_> = store.log().to_vec();
    let mut buckets: Vec<DepthBucket> = Vec::new();
    for record in log {
        let depth = store
            .manifest()
            .depth(record.oid)
            .expect("logged version has a depth") as usize;
        if buckets.len() <= depth {
            buckets.resize(depth + 1, DepthBucket::default());
        }
        let t = Instant::now();
        let bytes = store.get(record.oid).expect("version reconstructs");
        let elapsed = t.elapsed().as_nanos();
        assert_eq!(bytes.len() as u64, record.len, "length drift");
        let bucket = &mut buckets[depth];
        bucket.versions += 1;
        bucket.total_ns += elapsed;
        bucket.bytes += record.len;
    }
    buckets
}

fn print_buckets(label: &str, buckets: &[DepthBucket]) {
    println!("\n{label}:");
    println!(
        "{:<7} {:>9} {:>14} {:>14}",
        "depth", "versions", "avg µs/get", "MiB/s"
    );
    for (depth, b) in buckets.iter().enumerate() {
        if b.versions == 0 {
            continue;
        }
        let avg_us = b.total_ns as f64 / b.versions as f64 / 1e3;
        let mib_s = b.bytes as f64 / 1024.0 / 1024.0 / (b.total_ns as f64 / 1e9).max(1e-9);
        println!("{depth:<7} {:>9} {avg_us:>14.1} {mib_s:>14.1}", b.versions);
    }
}

fn buckets_json(buckets: &[DepthBucket]) -> String {
    let rows: Vec<String> = buckets
        .iter()
        .enumerate()
        .filter(|(_, b)| b.versions > 0)
        .map(|(depth, b)| {
            format!(
                "    {{\"depth\": {depth}, \"versions\": {}, \"total_ns\": {}, \"bytes\": {}}}",
                b.versions, b.total_ns, b.bytes
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn main() {
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--compare" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--compare needs a baseline JSON path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: store_chains [--compare <baseline.json>]"
                );
                std::process::exit(2);
            }
        }
    }

    let versions = env_usize("IPR_BENCH_STORE_VERSIONS", 48);
    let version_bytes = env_usize("IPR_BENCH_STORE_BYTES", 64 * 1024);
    let depth_cap = env_usize("IPR_BENCH_STORE_DEPTH_CAP", 8) as u32;
    let chain = VersionChain::generate(
        4242,
        ContentKind::BinaryLike,
        version_bytes,
        versions,
        ChainPattern::Patches,
    );

    let root = ipr_store::scratch_dir(&std::env::temp_dir(), "bench");
    let mut store = Store::init(&root, depth_cap).expect("store init");

    // Put the whole history, head-chained: every version deltas off
    // the previous one, so the chain grows one hop per put until
    // compaction enforces the cap.
    let mut put_ns: u128 = 0;
    let mut delta_bytes_put: u64 = 0;
    let mut full_bytes_put: u64 = 0;
    for release in chain.releases() {
        let t = Instant::now();
        let outcome = store.put(release, None).expect("put succeeds");
        put_ns += t.elapsed().as_nanos();
        assert!(outcome.created, "workload versions are distinct");
        match outcome.kind {
            ipr_store::ObjectKind::Delta => delta_bytes_put += outcome.stored_bytes,
            ipr_store::ObjectKind::Full => full_bytes_put += outcome.stored_bytes,
        }
    }
    let objects_before = store.manifest().objects.len();
    let max_depth_before = store.manifest().max_depth();

    // Read path before compaction: latency as a function of depth.
    let buckets_before = read_sweep(&mut store);

    // Compact down to the cap, then read again.
    let t = Instant::now();
    let report = store.compact().expect("compact succeeds");
    let compact_ns = t.elapsed().as_nanos();
    let objects_after = store.manifest().objects.len();
    let buckets_after = read_sweep(&mut store);

    // fsck throughput over the compacted store.
    drop(store);
    let t = Instant::now();
    let fsck_report = fsck(&root, false).expect("fsck runs");
    let fsck_ns = t.elapsed().as_nanos();
    let fsck_mib_s =
        fsck_report.bytes_checked as f64 / 1024.0 / 1024.0 / (fsck_ns as f64 / 1e9).max(1e-9);

    println!(
        "Store chains: {versions} versions of {} KiB, depth cap {depth_cap}\n",
        version_bytes / 1024
    );
    println!(
        "put: {:.2} ms total ({} B delta + {} B full stored)",
        put_ns as f64 / 1e6,
        delta_bytes_put,
        full_bytes_put
    );
    print_buckets("reconstruct before compaction", &buckets_before);
    print_buckets("reconstruct after compaction", &buckets_after);
    let ratio = report.bytes_after as f64 / report.bytes_before.max(1) as f64;
    println!(
        "\ncompact: {:.2} ms, depth {} -> {}, {} chains collapsed, \
         {} objects dropped, {} -> {} live bytes ({ratio:.3}x)",
        compact_ns as f64 / 1e6,
        report.max_depth_before,
        report.max_depth_after,
        report.collapsed,
        report.dropped_objects,
        report.bytes_before,
        report.bytes_after
    );
    println!(
        "fsck: {} findings, {} versions, {} objects, {} B in {:.2} ms ({fsck_mib_s:.1} MiB/s)",
        fsck_report.findings.len(),
        fsck_report.versions_checked,
        fsck_report.objects_checked,
        fsck_report.bytes_checked,
        fsck_ns as f64 / 1e6
    );

    let _ = std::fs::remove_dir_all(&root);

    if let Some(path) = baseline_path {
        let breaches = gate(
            &path,
            versions,
            depth_cap,
            objects_before,
            objects_after,
            max_depth_before,
            &report,
            delta_bytes_put,
            full_bytes_put,
            &fsck_report,
        );
        if breaches > 0 {
            eprintln!("\n{breaches} invariant breach(es) against the baseline");
            std::process::exit(1);
        }
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"store_chains\",\n");
    json.push_str("  \"command\": \"cargo run -p ipr-bench --release --bin store_chains\",\n");
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"versions\": {versions},\n"));
    json.push_str(&format!("  \"version_bytes\": {version_bytes},\n"));
    json.push_str(&format!("  \"depth_cap\": {depth_cap},\n"));
    json.push_str(&format!("  \"put_total_ns\": {put_ns},\n"));
    json.push_str(&format!("  \"delta_bytes_put\": {delta_bytes_put},\n"));
    json.push_str(&format!("  \"full_bytes_put\": {full_bytes_put},\n"));
    json.push_str(&format!("  \"objects_before\": {objects_before},\n"));
    json.push_str(&format!("  \"objects_after\": {objects_after},\n"));
    json.push_str(&format!("  \"max_depth_before\": {max_depth_before},\n"));
    json.push_str(&format!(
        "  \"max_depth_after\": {},\n",
        report.max_depth_after
    ));
    json.push_str(&format!("  \"chains_collapsed\": {},\n", report.collapsed));
    json.push_str(&format!(
        "  \"objects_dropped\": {},\n",
        report.dropped_objects
    ));
    json.push_str(&format!(
        "  \"live_bytes_before\": {},\n",
        report.bytes_before
    ));
    json.push_str(&format!(
        "  \"live_bytes_after\": {},\n",
        report.bytes_after
    ));
    json.push_str(&format!("  \"compact_ns\": {compact_ns},\n"));
    json.push_str(&format!(
        "  \"reconstruct_before\": {},\n",
        buckets_json(&buckets_before)
    ));
    json.push_str(&format!(
        "  \"reconstruct_after\": {},\n",
        buckets_json(&buckets_after)
    ));
    json.push_str(&format!(
        "  \"fsck\": {{\"findings\": {}, \"versions_checked\": {}, \"objects_checked\": {}, \
         \"bytes_checked\": {}, \"total_ns\": {}}}\n",
        fsck_report.findings.len(),
        fsck_report.versions_checked,
        fsck_report.objects_checked,
        fsck_report.bytes_checked,
        fsck_ns
    ));
    json.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_store_chains.json", &json).expect("write results");
    println!("\nwrote results/BENCH_store_chains.json");
}

/// Gates the run against a stored report; returns the breach count.
/// Only machine-independent invariants are checked — counts, depths
/// and stored byte totals are exact functions of the seed and the
/// differ, so any drift is a real behavioural change, never noise.
#[allow(clippy::too_many_arguments)]
fn gate(
    path: &str,
    versions: usize,
    depth_cap: u32,
    objects_before: usize,
    objects_after: usize,
    max_depth_before: u32,
    report: &ipr_store::CompactReport,
    delta_bytes_put: u64,
    full_bytes_put: u64,
    fsck_report: &ipr_store::FsckReport,
) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let baseline = ipr_trace::json::parse(&text)
        .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"));
    let field = |key: &str| -> u64 {
        baseline
            .get(key)
            .and_then(ipr_trace::json::Value::as_u64)
            .unwrap_or_else(|| panic!("baseline {path} has no {key} field"))
    };
    let mut breaches = 0;
    println!(
        "\nComparison against {path} (gates: exact structural invariants; timing never gated)\n"
    );

    // Absolute within-run gates: the store's own contract.
    let mut check = |label: &str, ok: bool, detail: String| {
        let status = if ok {
            "ok"
        } else {
            breaches += 1;
            "REGRESSED"
        };
        println!("{label}: {detail} {status}");
    };
    check(
        "depth cap honoured",
        report.max_depth_after <= depth_cap,
        format!("max depth {} vs cap {depth_cap}", report.max_depth_after),
    );
    check(
        "fsck clean",
        fsck_report.findings.is_empty(),
        format!("{} finding(s)", fsck_report.findings.len()),
    );

    // Exact gates against the baseline: structural drift detection.
    for (key, got) in [
        ("versions", versions as u64),
        ("depth_cap", u64::from(depth_cap)),
        ("objects_before", objects_before as u64),
        ("objects_after", objects_after as u64),
        ("max_depth_before", u64::from(max_depth_before)),
        ("max_depth_after", u64::from(report.max_depth_after)),
        ("chains_collapsed", report.collapsed as u64),
        ("objects_dropped", report.dropped_objects as u64),
        ("delta_bytes_put", delta_bytes_put),
        ("full_bytes_put", full_bytes_put),
        ("live_bytes_before", report.bytes_before),
        ("live_bytes_after", report.bytes_after),
    ] {
        let want = field(key);
        check(key, got == want, format!("{got} vs baseline {want}"));
    }
    breaches
}

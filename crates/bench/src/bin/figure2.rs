//! Figure 2 — the adversarial tree CRWI digraph on which the
//! locally-minimum cycle-breaking policy performs arbitrarily worse than
//! the global optimum.
//!
//! A binary tree with a back edge from every leaf to the root: each
//! root-to-leaf path is a cycle; the cheapest vertex of every cycle is its
//! leaf, so locally-minimum deletes all `2^depth` leaves where deleting
//! the root alone is optimal. The cost gap grows linearly in the leaf
//! count.
//!
//! Run: `cargo run -p ipr-bench --release --bin figure2`

use ipr_bench::Table;
use ipr_core::{convert_to_in_place, ConversionConfig, CrwiGraph, CyclePolicy};
use ipr_delta::codec::Format;
use ipr_workloads::adversarial::{tree_digraph, TREE_INTERNAL_LEN};

fn main() {
    println!("Figure 2: tree digraph where locally-minimum deletes every leaf\n");
    let mut t = Table::new(vec![
        "depth",
        "vertices",
        "edges",
        "leaves",
        "LM deleted",
        "LM cost (B)",
        "optimal cost (B)",
        "LM / optimal",
    ]);
    let format = Format::InPlace;
    for depth in 1..=8usize {
        let case = tree_digraph(depth);
        let crwi = CrwiGraph::build(case.script.copies());
        let leaves = 1u64 << depth;

        let lm = convert_to_in_place(
            &case.script,
            &case.reference,
            &ConversionConfig {
                policy: CyclePolicy::LocallyMinimum,
                cost_format: format,
            },
        )
        .expect("conversion cannot fail");

        // The optimum deletes only the root (every cycle passes through
        // it). For depth <= 3 the exhaustive solver confirms this; beyond
        // that we use the analytic value.
        let root_copy = case
            .script
            .copies()
            .iter()
            .copied()
            .find(|c| c.to == 0)
            .expect("root writes at offset 0");
        let optimal_cost = format.conversion_cost(&root_copy);
        if depth <= 3 {
            let exact = convert_to_in_place(
                &case.script,
                &case.reference,
                &ConversionConfig {
                    policy: CyclePolicy::Exhaustive { limit: 20 },
                    cost_format: format,
                },
            )
            .expect("small components");
            assert_eq!(exact.report.copies_converted, 1);
            assert_eq!(exact.report.conversion_cost, optimal_cost);
            assert_eq!(exact.report.bytes_converted, TREE_INTERNAL_LEN);
        }

        t.row(vec![
            depth.to_string(),
            crwi.node_count().to_string(),
            crwi.edge_count().to_string(),
            leaves.to_string(),
            lm.report.copies_converted.to_string(),
            lm.report.conversion_cost.to_string(),
            optimal_cost.to_string(),
            format!(
                "{:.1}x",
                lm.report.conversion_cost as f64 / optimal_cost as f64
            ),
        ]);
    }
    t.print();
    println!(
        "\nThe LM/optimal ratio grows with the leaf count: no constant-factor\n\
         approximation, exactly the paper's §5 adversarial argument."
    );
}

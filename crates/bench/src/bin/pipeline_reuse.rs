//! Engine session reuse: cold vs warm pipeline latency and allocator
//! traffic over a version chain.
//!
//! The [`Engine`] exists to amortize per-update
//! overhead — diff index arenas, CRWI adjacency/interval buffers,
//! schedule scratch, script/payload storage — across many updates. This
//! benchmark measures exactly that, over a 100-hop release chain
//! (`IPR_BENCH_HOPS` hops of `IPR_BENCH_CHAIN_BYTES` bytes each):
//!
//! * **cold** — a fresh engine per update, the free-function cost model;
//! * **warm_fill** — one engine reused across the chain, first pass
//!   (arenas and pools still growing to the high-water mark);
//! * **warm_steady** — the same engine on a second pass over the chain
//!   (every buffer already sized; the production steady state);
//! * **stages_steady** — a third pass driving the stage methods
//!   ([`diff`](ipr_pipeline::Engine::diff) →
//!   [`convert`](ipr_pipeline::Engine::convert) →
//!   [`plan`](ipr_pipeline::Engine::plan) → encode) separately, so
//!   allocator traffic is attributed per stage.
//!
//! Allocations are counted by a `#[global_allocator]` wrapper around the
//! system allocator. The contract: at steady state **every** stage —
//! diff, convert, schedule and encode — performs **zero** heap
//! allocations per update. The encode stage draws its wire buffer from
//! the engine's pool ([`Engine::encode`]) and [`Engine::recycle`]
//! returns it, so even the caller-visible payload costs nothing once
//! warm.
//!
//! Results land in `results/BENCH_pipeline_reuse.json`.
//!
//! Run: `cargo run -p ipr-bench --release --bin pipeline_reuse`
//!
//! With `--compare <baseline.json>` the run gates instead of writing:
//!
//! * **steady-stage allocations** — any allocation in the steady-state
//!   diff/convert/schedule/encode stages fails the run (an absolute,
//!   within-run gate: it holds on any host and any chain size);
//! * **allocator traffic** — steady-state allocations per update may not
//!   exceed the baseline's by more than [`ALLOC_TOLERANCE`] (counts are
//!   deterministic, so growth is a real buffering regression, not noise).
//!
//! Absolute times are printed but never gated. The baseline file is left
//! untouched in this mode.

use ipr_pipeline::{Engine, EngineConfig, InPlaceDelta};
use ipr_workloads::chain::{ChainPattern, VersionChain};
use ipr_workloads::content::ContentKind;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Gate: steady-state allocations per update may grow at most this much
/// over the baseline.
const ALLOC_TOLERANCE: f64 = 1.5;

/// System-allocator wrapper that counts every allocation. `realloc` and
/// `alloc_zeroed` count too: a growing arena is allocator traffic even
/// when the old block is recycled in place.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Wall time plus allocator traffic of one measured region.
#[derive(Clone, Copy, Default)]
struct Measure {
    total_ns: u128,
    allocs: u64,
    alloc_bytes: u64,
}

impl Measure {
    fn add(&mut self, other: Measure) {
        self.total_ns += other.total_ns;
        self.allocs += other.allocs;
        self.alloc_bytes += other.alloc_bytes;
    }

    fn json(&self) -> String {
        format!(
            "{{\"total_ns\": {}, \"allocs\": {}, \"alloc_bytes\": {}}}",
            self.total_ns, self.allocs, self.alloc_bytes
        )
    }
}

/// Runs `f`, returning its result plus the region's measurements.
fn measured<T>(f: impl FnOnce() -> T) -> (T, Measure) {
    let calls = ALLOC_CALLS.load(Relaxed);
    let bytes = ALLOC_BYTES.load(Relaxed);
    let t = Instant::now();
    let out = f();
    let total_ns = t.elapsed().as_nanos();
    (
        out,
        Measure {
            total_ns,
            allocs: ALLOC_CALLS.load(Relaxed) - calls,
            alloc_bytes: ALLOC_BYTES.load(Relaxed) - bytes,
        },
    )
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The engine configuration under test: one worker, so stage costs are
/// the algorithms' own (thread spawning is the scaling benches' topic).
fn bench_config() -> EngineConfig {
    EngineConfig::with_threads(1)
}

fn main() {
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--compare" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--compare needs a baseline JSON path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: pipeline_reuse [--compare <baseline.json>]"
                );
                std::process::exit(2);
            }
        }
    }

    let hops = env_usize("IPR_BENCH_HOPS", 100);
    let chain_bytes = env_usize("IPR_BENCH_CHAIN_BYTES", 256 * 1024);
    let chain = VersionChain::generate(
        99,
        ContentKind::BinaryLike,
        chain_bytes,
        hops + 1,
        ChainPattern::Patches,
    );

    // Cold: a fresh engine per update — every arena built from nothing.
    let mut cold = Measure::default();
    for (reference, version) in chain.hops() {
        let (_, m) = measured(|| {
            let mut engine = Engine::with_config(bench_config());
            engine.update(reference, version).expect("update succeeds")
        });
        cold.add(m);
    }

    // Warm, first pass: one engine, arenas growing to the high-water mark.
    let mut engine = Engine::with_config(bench_config());
    let warm_fill = warm_pass(&mut engine, &chain);

    // Warm, steady state: second pass over the chain — every buffer the
    // pipeline needs has already reached its final size.
    let warm_steady = warm_pass(&mut engine, &chain);

    // Stage attribution at steady state: drive the stages separately so
    // each one's allocator traffic is measured on its own. Two passes —
    // `update` never plans, so the first pass grows the schedule scratch
    // to its high-water mark; only the second is steady state.
    let mut stages = [Measure::default(); 4];
    for _pass in 0..2 {
        stages = [Measure::default(); 4];
        for (reference, version) in chain.hops() {
            let (script, m_diff) = measured(|| engine.diff(reference, version));
            let (outcome, m_convert) = measured(|| {
                engine
                    .convert(script, reference)
                    .expect("conversion succeeds")
            });
            let (_, m_plan) = measured(|| {
                engine
                    .plan(&outcome.script)
                    .expect("converted script is safe");
            });
            let (payload, m_encode) = measured(|| {
                engine
                    .encode(&outcome.script, version)
                    .expect("encodable script")
            });
            engine.recycle(InPlaceDelta {
                script: outcome.script,
                payload,
                report: outcome.report,
                version_len: version.len() as u64,
            });
            for (slot, m) in stages.iter_mut().zip([m_diff, m_convert, m_plan, m_encode]) {
                slot.add(m);
            }
        }
    }
    let [diff, convert, schedule, encode] = stages;

    let per_update = |m: &Measure| m.allocs as f64 / hops as f64;
    let speedup = cold.total_ns as f64 / warm_steady.total_ns.max(1) as f64;
    println!(
        "Pipeline reuse: {hops} hops of {} KiB, engine vs fresh-engine-per-update\n",
        chain_bytes / 1024
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "pass", "total ms", "allocs", "allocs/update", "alloc KiB"
    );
    for (label, m) in [
        ("cold", &cold),
        ("warm fill", &warm_fill),
        ("warm steady", &warm_steady),
    ] {
        println!(
            "{:<14} {:>12.2} {:>12} {:>14.1} {:>14}",
            label,
            m.total_ns as f64 / 1e6,
            m.allocs,
            per_update(m),
            m.alloc_bytes / 1024
        );
    }
    println!("\nwarm steady is {speedup:.2}x cold\n");
    println!(
        "{:<14} {:>12} {:>12} {:>14}",
        "steady stage", "total ms", "allocs", "allocs/update"
    );
    for (label, m) in [
        ("diff", &diff),
        ("convert", &convert),
        ("schedule", &schedule),
        ("encode", &encode),
    ] {
        println!(
            "{:<14} {:>12.2} {:>12} {:>14.1}",
            label,
            m.total_ns as f64 / 1e6,
            m.allocs,
            per_update(m)
        );
    }

    if let Some(path) = baseline_path {
        let breaches = gate(
            &path,
            &warm_steady,
            &diff,
            &convert,
            &schedule,
            &encode,
            hops,
        );
        if breaches > 0 {
            eprintln!("\n{breaches} regression(s) past the gates");
            std::process::exit(1);
        }
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"pipeline_reuse\",\n");
    json.push_str("  \"command\": \"cargo run -p ipr-bench --release --bin pipeline_reuse\",\n");
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"hops\": {hops},\n"));
    json.push_str(&format!("  \"chain_bytes\": {chain_bytes},\n"));
    json.push_str(&format!("  \"warm_steady_speedup\": {speedup:.3},\n"));
    for (key, m) in [
        ("cold", &cold),
        ("warm_fill", &warm_fill),
        ("warm_steady", &warm_steady),
    ] {
        json.push_str(&format!("  \"{key}\": {},\n", m.json()));
    }
    json.push_str("  \"stages_steady\": {\n");
    let stage_rows = [
        ("diff", &diff),
        ("convert", &convert),
        ("schedule", &schedule),
        ("encode", &encode),
    ];
    for (i, (key, m)) in stage_rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{key}\": {}{}\n",
            m.json(),
            if i + 1 < stage_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_pipeline_reuse.json", &json).expect("write results");
    println!("\nwrote results/BENCH_pipeline_reuse.json");
}

/// Gates the run against a stored report; returns the breach count.
fn gate(
    path: &str,
    warm_steady: &Measure,
    diff: &Measure,
    convert: &Measure,
    schedule: &Measure,
    encode: &Measure,
    hops: usize,
) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let baseline = ipr_trace::json::parse(&text)
        .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"));
    let mut breaches = 0;

    println!(
        "\nComparison against {path} (gates: zero steady diff/convert/schedule/encode \
         allocations, steady allocs/update ≤ {ALLOC_TOLERANCE}x baseline)\n"
    );
    // Absolute within-run gate: the acceptance contract of the engine.
    for (label, m) in [
        ("diff", diff),
        ("convert", convert),
        ("schedule", schedule),
        ("encode", encode),
    ] {
        let status = if m.allocs > 0 {
            breaches += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("steady {label}: {} allocation(s) {status}", m.allocs);
    }
    // Relative gate: steady allocator traffic per update vs the baseline.
    let base_hops = baseline
        .get("hops")
        .and_then(ipr_trace::json::Value::as_u64)
        .unwrap_or_else(|| panic!("baseline {path} has no hops field"));
    let base_allocs = baseline
        .get("warm_steady")
        .and_then(|m| m.get("allocs"))
        .and_then(ipr_trace::json::Value::as_u64)
        .unwrap_or_else(|| panic!("baseline {path} has no warm_steady.allocs"));
    let base_rate = base_allocs as f64 / base_hops.max(1) as f64;
    let rate = warm_steady.allocs as f64 / hops as f64;
    let status = if rate > base_rate * ALLOC_TOLERANCE {
        breaches += 1;
        "REGRESSED"
    } else {
        "ok"
    };
    println!("steady allocs/update: {rate:.1} vs baseline {base_rate:.1} {status}");
    breaches
}

/// One full pass of the chain through `engine`, deltas recycled.
fn warm_pass(engine: &mut Engine, chain: &VersionChain) -> Measure {
    let mut total = Measure::default();
    for (reference, version) in chain.hops() {
        let (delta, m) = measured(|| engine.update(reference, version).expect("update succeeds"));
        engine.recycle(delta);
        total.add(m);
    }
    total
}

//! §4.3 — asymptotic behaviour: the conversion algorithm runs in
//! `O(n log n + L_V)` time and `O(n + L_V)` space for a delta of `n`
//! commands encoding a version of `L_V` bytes.
//!
//! We verify the shape empirically: doubling the input size should
//! roughly double conversion time (the log factor is invisible at these
//! scales), on both realistic corpora and the quadratic-edge adversarial
//! input (where `|E| = Θ(L_V)` dominates).
//!
//! Run: `cargo run -p ipr-bench --release --bin scaling`

use ipr_bench::{bytes, timed, Table};
use ipr_core::{convert_to_in_place, ConversionConfig, CrwiGraph};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_workloads::adversarial::quadratic_edges;
use ipr_workloads::content::{generate, ContentKind};
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Best-of-5 timing to suppress scheduler noise.
fn best_of<R>(mut f: impl FnMut() -> R) -> Duration {
    (0..5).map(|_| timed(&mut f).1).min().expect("non-empty")
}

fn main() {
    println!("§4.3 scaling: conversion time vs input size (best of 5 runs)\n");

    println!("Realistic corpus pairs (moderate revisions):\n");
    let mut t = Table::new(vec![
        "version size",
        "copies",
        "edges",
        "convert time",
        "time ratio",
    ]);
    let mut prev: Option<f64> = None;
    for exp in 14..=21u32 {
        let len = 1usize << exp;
        let mut rng = StdRng::seed_from_u64(exp as u64);
        let reference = generate(&mut rng, ContentKind::BinaryLike, len);
        let version = mutate(&mut rng, &reference, &MutationProfile::default());
        let script = GreedyDiffer::default().diff(&reference, &version);
        let config = ConversionConfig::default();
        let out = convert_to_in_place(&script, &reference, &config).expect("cannot fail");
        let time = best_of(|| convert_to_in_place(&script, &reference, &config).expect("ok"));
        let secs = time.as_secs_f64();
        t.row(vec![
            bytes(len as u64),
            script.copy_count().to_string(),
            out.report.edges.to_string(),
            format!("{:.1} µs", secs * 1e6),
            prev.map_or("-".into(), |p| format!("{:.2}x", secs / p)),
        ]);
        prev = Some(secs);
    }
    t.print();

    println!("\nAdversarial quadratic-edge input (|E| = Θ(L_V) dominates):\n");
    let mut t = Table::new(vec![
        "L_V",
        "commands",
        "edges",
        "build+sort time",
        "time ratio",
    ]);
    let mut prev: Option<f64> = None;
    for b in [64u64, 128, 256, 512, 1024] {
        let case = quadratic_edges(b);
        let copies = case.script.copies();
        let crwi = CrwiGraph::build(copies.clone());
        let config = ConversionConfig::default();
        let time =
            best_of(|| convert_to_in_place(&case.script, &case.reference, &config).expect("ok"));
        let secs = time.as_secs_f64();
        t.row(vec![
            bytes(case.script.target_len()),
            copies.len().to_string(),
            crwi.edge_count().to_string(),
            format!("{:.1} µs", secs * 1e6),
            prev.map_or("-".into(), |p| format!("{:.2}x", secs / p)),
        ]);
        prev = Some(secs);
    }
    t.print();
    println!(
        "\nEach row quadruples L_V (and the edge count); the time ratio\n\
         should track ~4x, confirming the O(n log n + L_V) bound with the\n\
         edge term dominating on this input."
    );
}

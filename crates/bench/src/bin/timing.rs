//! §7 timing — in-place conversion vs delta compression run time.
//!
//! Paper findings to reproduce in shape:
//!
//! * conversion completed in **56%** of the time differencing took,
//!   aggregated over all inputs;
//! * conversion was slower than differencing on only **0.1%** of inputs
//!   and never took more than **2×** as long;
//! * the locally-minimum policy costs about the same time as the
//!   constant-time policy on average (occasionally up to ~25% slower).
//!
//! Run: `cargo run -p ipr-bench --release --bin timing`

use ipr_bench::{experiment_corpus, pct, timed, Table};
use ipr_core::{convert_to_in_place, ConversionConfig, CyclePolicy};
use ipr_delta::diff::{Differ, GreedyDiffer, OnePassDiffer};
use std::time::Duration;

fn main() {
    // The paper pairs in-place conversion with its linear-time differencing
    // algorithm; the one-pass differ is our equivalent. The greedy differ
    // is reported as well to show the ratio against a heavier compressor.
    run(&OnePassDiffer::default());
    println!();
    run(&GreedyDiffer::default());
}

fn run(differ: &dyn Differ) {
    let corpus = experiment_corpus();

    let mut diff_total = Duration::ZERO;
    let mut lm_total = Duration::ZERO;
    let mut ct_total = Duration::ZERO;
    let mut slower = 0usize;
    let mut max_ratio = 0.0f64;
    let mut per_pair_ratios = Vec::new();

    for pair in &corpus {
        let (script, diff_time) = timed(|| differ.diff(&pair.reference, &pair.version));
        let convert = |policy| {
            convert_to_in_place(
                &script,
                &pair.reference,
                &ConversionConfig::with_policy(policy),
            )
            .expect("conversion cannot fail")
        };
        // One unmeasured warm-up run per pair, then best-of-3: the first
        // conversion after a large diff otherwise absorbs allocator and
        // cache effects that have nothing to do with the algorithm.
        let _ = convert(CyclePolicy::LocallyMinimum);
        let lm_time = (0..3)
            .map(|_| timed(|| convert(CyclePolicy::LocallyMinimum)).1)
            .min()
            .expect("non-empty");
        let ct_time = (0..3)
            .map(|_| timed(|| convert(CyclePolicy::ConstantTime)).1)
            .min()
            .expect("non-empty");
        diff_total += diff_time;
        lm_total += lm_time;
        ct_total += ct_time;
        let ratio = lm_time.as_secs_f64() / diff_time.as_secs_f64().max(1e-9);
        per_pair_ratios.push(ratio);
        if ratio > 1.0 {
            slower += 1;
        }
        max_ratio = max_ratio.max(ratio);
    }

    let n = corpus.len();
    let agg_ratio = lm_total.as_secs_f64() / diff_total.as_secs_f64();
    let ct_vs_lm = lm_total.as_secs_f64() / ct_total.as_secs_f64().max(1e-9);
    per_pair_ratios.sort_by(f64::total_cmp);
    let median = per_pair_ratios[n / 2];

    println!(
        "§7 timing: in-place conversion vs delta compression ({n} pairs, {} differ)\n",
        differ.name()
    );
    let mut t = Table::new(vec!["metric", "measured", "paper"]);
    t.row(vec![
        "conversion time / differencing time (aggregate)".into(),
        pct(agg_ratio),
        "56%".into(),
    ]);
    t.row(vec![
        "conversion time / differencing time (median pair)".into(),
        pct(median),
        "-".into(),
    ]);
    t.row(vec![
        "pairs where conversion was slower".into(),
        format!("{slower}/{n} ({})", pct(slower as f64 / n as f64)),
        "0.1%".into(),
    ]);
    t.row(vec![
        "worst-case conversion/differencing ratio".into(),
        format!("{max_ratio:.2}x"),
        "< 2x".into(),
    ]);
    t.row(vec![
        "local-min time / constant-time time".into(),
        format!("{ct_vs_lm:.2}x"),
        "~1x".into(),
    ]);
    t.print();

    println!();
    let shape = [
        (
            "conversion faster than differencing overall",
            agg_ratio < 1.0,
        ),
        (
            "local-min run time comparable to constant-time (within 25%)",
            ct_vs_lm < 1.25,
        ),
    ];
    for (what, ok) in shape {
        println!("  [{}] {what}", if ok { "ok" } else { "MISMATCH" });
    }
}

//! Flash-wear experiment (ours, beyond the paper): in-place delta updates
//! vs full reflashes on NOR flash.
//!
//! The paper's in-place reconstruction eliminates the *space* for a
//! second image; on flash it can also eliminate most of the *wear* — but
//! only when the revision leaves most blocks untouched. This experiment
//! quantifies that: erase savings by revision severity, and the effect of
//! the updater's RAM budget (pending blocks evicted early get erased
//! twice).
//!
//! Run: `cargo run -p ipr-bench --release --bin flash`

use ipr_bench::Table;
use ipr_core::{convert_to_in_place, ConversionConfig};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_device::flash::{FlashStorage, FlashUpdater};
use ipr_workloads::content::{generate, ContentKind};
use ipr_workloads::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BLOCK_SIZE: usize = 4 * 1024;
const IMAGE_LEN: usize = 256 * 1024;
const PAIRS: usize = 12;

fn severity_corpus(profile: &MutationProfile, seed: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..PAIRS)
        .map(|_| {
            let reference = generate(&mut rng, ContentKind::BinaryLike, IMAGE_LEN);
            let version = mutate(&mut rng, &reference, profile);
            (reference, version)
        })
        .collect()
}

fn run_update(reference: &[u8], version: &[u8], ram_blocks: usize) -> (u64, u64) {
    let capacity = reference.len().max(version.len());
    let blocks = capacity.div_ceil(BLOCK_SIZE) + 1;
    let mut flash = FlashStorage::new(blocks, BLOCK_SIZE);
    let mut updater = FlashUpdater::new(&mut flash, 0).with_ram_blocks(ram_blocks);
    updater.reflash(reference).expect("image fits");
    let script = GreedyDiffer::default().diff(reference, version);
    let converted = convert_to_in_place(&script, reference, &ConversionConfig::default())
        .expect("conversion cannot fail");
    let stats = updater
        .apply_update(&converted.script)
        .expect("update fits");
    assert_eq!(updater.image(), version, "flash update corrupted the image");
    (stats.erases, stats.programmed_bytes)
}

fn main() {
    println!(
        "Flash wear: in-place delta vs full reflash ({PAIRS} images of {} KiB, {} KiB blocks)\n",
        IMAGE_LEN / 1024,
        BLOCK_SIZE / 1024
    );

    println!("By revision severity (RAM budget: 8 blocks):\n");
    let mut t = Table::new(vec![
        "revision",
        "reflash erases",
        "delta erases",
        "erase savings",
    ]);
    let reflash_erases = (PAIRS * IMAGE_LEN.div_ceil(BLOCK_SIZE)) as u64;
    for (label, profile, seed) in [
        (
            "aligned (fixed-layout patch)",
            MutationProfile::aligned(),
            40,
        ),
        ("light (patch w/ shifts)", MutationProfile::light(), 41),
        ("moderate (minor release)", MutationProfile::default(), 42),
        ("heavy (major release)", MutationProfile::heavy(), 43),
    ] {
        let mut delta_erases = 0u64;
        for (reference, version) in severity_corpus(&profile, seed) {
            let (erases, _) = run_update(&reference, &version, 8);
            delta_erases += erases;
        }
        t.row(vec![
            label.into(),
            reflash_erases.to_string(),
            delta_erases.to_string(),
            format!(
                "{:.1}%",
                100.0 * (1.0 - delta_erases as f64 / reflash_erases as f64)
            ),
        ]);
    }
    t.print();

    println!("\nRAM budget vs repeated erases (moderate revisions):\n");
    let corpus = severity_corpus(&MutationProfile::default(), 42);
    let total_for = |ram: usize| -> u64 {
        corpus
            .iter()
            .map(|(reference, version)| run_update(reference, version, ram).0)
            .sum()
    };
    // With effectively unbounded RAM, every touched block is erased
    // exactly once: the minimum.
    let touched = total_for(1 << 20);
    let mut t = Table::new(vec![
        "RAM blocks",
        "delta erases",
        "erases per touched block",
    ]);
    for ram in [1usize, 4, 8, 32, 1 << 20] {
        let erases = total_for(ram);
        t.row(vec![
            if ram == 1 << 20 {
                "unbounded".into()
            } else {
                ram.to_string()
            },
            erases.to_string(),
            format!("{:.2}", erases as f64 / touched as f64),
        ]);
    }
    t.print();
    println!(
        "\nLayout-preserving patches keep almost every block intact: in-place\n\
         delta updates erase a small fraction of what a reflash would. Any\n\
         insertion or deletion shifts all downstream bytes and physically\n\
         rewrites their blocks — no update scheme avoids that (which is why\n\
         real firmware images pin their section layout). Small RAM budgets\n\
         evict incomplete blocks and pay double erases; a few dozen blocks\n\
         of RAM recover the one-erase-per-touched-block minimum."
    );
}

//! Remote differencing: signature-based streaming delta generation vs
//! the local greedy differ.
//!
//! The remote path trades delta size for memory: the generator never
//! sees the reference, only its signature, so its working set is the
//! signature plus the match table plus one streaming window — constant
//! in the version length. This benchmark measures what that trade
//! costs on a synthetic ≥64 MiB pair (size set by `IPR_BENCH_REMOTE_MIB`,
//! default 64): for fixed 1 KiB / 8 KiB blocks and default
//! content-defined chunking it reports signing throughput, encoded
//! signature bytes, peak resident signature-side bytes
//! (signature + match table), generation MiB/s, the emitted delta size
//! and its overhead over the local greedy differ that reads both files.
//! Every generated delta is applied back and verified byte-identical
//! before a row is reported.
//!
//! Results land in `results/BENCH_remote_diff.json`.
//!
//! Run: `cargo run -p ipr-bench --release --bin remote_diff`
//!
//! With `--compare <baseline.json>` the run gates against a stored
//! report and exits non-zero on regression:
//!
//! * **compression** — any chunking's delta bytes exceed the baseline's
//!   at all (the generator is deterministic, so on the synthetic pair a
//!   single extra byte is an algorithmic change, not noise) — skipped
//!   with a notice when the corpus sizes differ (e.g. the quick CI pair
//!   against the committed 64 MiB baseline);
//! * **overhead** — a chunking's delta exceeds [`OVERHEAD_CAP`] times
//!   the same-run local greedy delta (a corpus-size-independent
//!   within-run gate that holds on the quick CI pair too);
//! * **memory** — resident signature-side bytes exceed
//!   [`RESIDENT_FIXED_ALLOWANCE`] plus [`RESIDENT_CAP_PER_BLOCK`] bytes
//!   per signature block, the constant-memory contract (docs/REMOTE.md);
//! * **throughput** — on the same corpus, any chunking's generation
//!   MiB/s falls below [`THROUGHPUT_FLOOR_RATIO`] of the baseline's
//!   (loose enough for machine noise, tight enough to catch the batched
//!   scan kernel silently degrading to the scalar path). On a different
//!   corpus the comparison is printed informationally only.
//!
//! Every row also regenerates its delta through the byte-at-a-time
//! scalar generator and asserts the command streams identical: the
//! batched kernel must be a pure speedup, never an output change.

use ipr_delta::codec::{encode, Format};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_delta::remote::{generate_delta, generate_delta_scalar, Chunking, MatchTable, Signature};
use std::time::Instant;

/// Within-run gate: remote delta bytes may cost at most this many times
/// the local greedy delta on the synthetic pair. Generous — the remote
/// generator matches at block granularity while greedy matches at byte
/// granularity, so each edit costs up to a block of literals — but a
/// breach means block matching broke, not that the corpus got unlucky.
const OVERHEAD_CAP: f64 = 50.0;

/// Within-run gate: signature + match table may cost at most
/// [`RESIDENT_FIXED_ALLOWANCE`] plus this many bytes per block. A
/// `BlockSignature` is 32 bytes and its sorted-index entry 4, with
/// `Vec` growth doubling on top; 96 leaves headroom while still
/// catching an accidental O(reference) allocation instantly (the
/// smallest block here is 1024 bytes).
const RESIDENT_CAP_PER_BLOCK: usize = 96;

/// Block-count-independent part of the memory gate: the match table's
/// presence filter plus struct overhead.
const RESIDENT_FIXED_ALLOWANCE: usize = 16 * 1024;

/// Same-corpus throughput gate: generation MiB/s may fall to at most
/// this fraction of the baseline's before the run fails. The scan
/// rework (batched kernel + full-digest filter + bucketed candidates)
/// bought ~2.8x on small blocks; regressing to the old per-byte
/// saturated-filter loop lands near 0.35x baseline — well under this
/// floor — while ordinary machine noise stays well above it.
const THROUGHPUT_FLOOR_RATIO: f64 = 0.6;

struct Row {
    chunking: Chunking,
    label: String,
    blocks: usize,
    sign_ns: u128,
    sig_bytes: usize,
    resident_bytes: usize,
    gen_ns: u128,
    gen_mib_s: f64,
    scalar_gen_mib_s: f64,
    delta_bytes: u64,
    overhead: f64,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reference of `mib` MiB and a version derived from it by a spread
/// of realistic edits: byte overwrites, short insertions and deletions
/// roughly every half MiB, so most blocks survive and the interesting
/// work is re-aligning after shifts.
fn synthesize(mib: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let len = mib * 1024 * 1024;
    let mut x = seed;
    let mut reference = Vec::with_capacity(len);
    while reference.len() < len {
        reference.extend_from_slice(&splitmix64(&mut x).to_le_bytes());
    }
    reference.truncate(len);

    let mut version = Vec::with_capacity(len + len / 64);
    let mut pos = 0usize;
    let mut edit = 0u64;
    while pos < len {
        let span = 256 * 1024 + (splitmix64(&mut x) as usize % (512 * 1024));
        let end = (pos + span).min(len);
        version.extend_from_slice(&reference[pos..end]);
        pos = end;
        if pos >= len {
            break;
        }
        let amount = 64 + (splitmix64(&mut x) as usize % 4032);
        match edit % 3 {
            0 => {
                // Insert a run of new bytes (shifts everything after).
                for _ in 0..amount.div_ceil(8) {
                    version.extend_from_slice(&splitmix64(&mut x).to_le_bytes());
                }
            }
            1 => {
                // Delete the next run.
                pos = (pos + amount).min(len);
            }
            _ => {
                // Overwrite in place (no shift).
                for _ in 0..amount.div_ceil(8) {
                    version.extend_from_slice(&splitmix64(&mut x).to_le_bytes());
                }
                pos = (pos + amount.div_ceil(8) * 8).min(len);
            }
        }
        edit += 1;
    }
    (reference, version)
}

fn bench_chunking(
    chunking: Chunking,
    reference: &[u8],
    version: &[u8],
    local_delta_bytes: u64,
) -> Row {
    let t = Instant::now();
    let signature = Signature::build(reference, chunking).expect("valid chunking");
    let sign_ns = t.elapsed().as_nanos();
    let sig_bytes = signature.encoded_len();

    // Everything the receiving side keeps resident while it streams:
    // the decoded signature plus the derived match table. The stream
    // window (≤ max block + 64 KiB) is excluded here because it is
    // version-side and bounded by the chunking, not the file.
    let table = MatchTable::build(&signature);
    let resident_bytes = signature.resident_bytes() + table.resident_bytes();
    drop(table);

    let t = Instant::now();
    let script = generate_delta(&signature, version).expect("in-memory reader cannot fail");
    let gen_ns = t.elapsed().as_nanos();
    let gen_mib_s = version.len() as f64 / (1024.0 * 1024.0) / (gen_ns as f64 / 1e9);

    // The batched scan kernel must be a pure speedup: the byte-at-a-time
    // reference generator has to emit the identical command stream.
    let t = Instant::now();
    let scalar = generate_delta_scalar(&signature, version).expect("in-memory reader cannot fail");
    let scalar_gen_ns = t.elapsed().as_nanos();
    let scalar_gen_mib_s = version.len() as f64 / (1024.0 * 1024.0) / (scalar_gen_ns as f64 / 1e9);
    assert_eq!(
        script.commands(),
        scalar.commands(),
        "{chunking}: batched and scalar generators diverged"
    );
    drop(scalar);

    let rebuilt = ipr_delta::apply(&script, reference).expect("generated script applies");
    assert_eq!(rebuilt, version, "{chunking}: reconstruction differs");

    let delta_bytes = encode(&script, Format::Ordered)
        .expect("encodable script")
        .len() as u64;

    Row {
        chunking,
        label: chunking.to_string(),
        blocks: signature.blocks().len(),
        sign_ns,
        sig_bytes,
        resident_bytes,
        gen_ns,
        gen_mib_s,
        scalar_gen_mib_s,
        delta_bytes,
        overhead: delta_bytes as f64 / local_delta_bytes.max(1) as f64,
    }
}

fn main() {
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--compare" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--compare needs a baseline JSON path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: remote_diff [--compare <baseline.json>]"
                );
                std::process::exit(2);
            }
        }
    }

    let mib: usize = std::env::var("IPR_BENCH_REMOTE_MIB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let (reference, version) = synthesize(mib, 0x5eed_0007);

    // The local baseline reads both files; its delta is the size to
    // beat-or-approach and its working set (reference + index) is what
    // the remote path's constant memory buys its way out of.
    let t = Instant::now();
    let local_script = GreedyDiffer::default().diff(&reference, &version);
    let local_ns = t.elapsed().as_nanos();
    let local_delta_bytes = encode(&local_script, Format::Ordered)
        .expect("encodable script")
        .len() as u64;
    drop(local_script);

    let chunkings = [
        Chunking::Fixed(1024),
        Chunking::Fixed(8 * 1024),
        Chunking::Cdc(Default::default()),
    ];
    let rows: Vec<Row> = chunkings
        .iter()
        .map(|&c| bench_chunking(c, &reference, &version, local_delta_bytes))
        .collect();

    println!(
        "Remote diff: {mib} MiB reference, {} B version, local greedy delta {} B \
         ({:.1} MiB/s)\n",
        version.len(),
        local_delta_bytes,
        version.len() as f64 / (1024.0 * 1024.0) / (local_ns as f64 / 1e9),
    );
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "chunking",
        "blocks",
        "sign ms",
        "sig bytes",
        "resident B",
        "gen MiB/s",
        "scalar MiB/s",
        "delta bytes",
        "overhead"
    );
    for r in &rows {
        println!(
            "{:<22} {:>8} {:>10.1} {:>10} {:>12} {:>10.1} {:>12.1} {:>12} {:>8.2}x",
            r.label,
            r.blocks,
            r.sign_ns as f64 / 1e6,
            r.sig_bytes,
            r.resident_bytes,
            r.gen_mib_s,
            r.scalar_gen_mib_s,
            r.delta_bytes,
            r.overhead
        );
    }

    if let Some(path) = baseline_path {
        let breaches = compare_to_baseline(&rows, &path, mib, version.len() as u64);
        if breaches > 0 {
            eprintln!("\n{breaches} regression(s) past the gates");
            std::process::exit(1);
        }
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"remote_diff\",\n");
    json.push_str("  \"command\": \"cargo run -p ipr-bench --release --bin remote_diff\",\n");
    json.push_str(&format!("  \"reference_mib\": {mib},\n"));
    json.push_str(&format!("  \"version_bytes\": {},\n", version.len()));
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!(
        "  \"local_greedy_delta_bytes\": {local_delta_bytes},\n"
    ));
    json.push_str(&format!("  \"local_greedy_total_ns\": {local_ns},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"chunking\": \"{}\", \"blocks\": {}, \"sign_ns\": {}, \"sig_bytes\": {}, \
             \"resident_bytes\": {}, \"gen_ns\": {}, \"gen_mib_per_s\": {:.1}, \
             \"scalar_gen_mib_per_s\": {:.1}, \"delta_bytes\": {}, \
             \"overhead_vs_local\": {:.4}}}{}\n",
            r.label,
            r.blocks,
            r.sign_ns,
            r.sig_bytes,
            r.resident_bytes,
            r.gen_ns,
            r.gen_mib_s,
            r.scalar_gen_mib_s,
            r.delta_bytes,
            r.overhead,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_remote_diff.json", &json).expect("write results");
    println!("\nwrote results/BENCH_remote_diff.json");
}

/// Gates the current rows against a stored report; returns breach count.
fn compare_to_baseline(rows: &[Row], path: &str, mib: usize, version_bytes: u64) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let baseline = ipr_trace::json::parse(&text)
        .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"));
    let results = baseline
        .get("results")
        .and_then(|r| r.as_array())
        .unwrap_or_else(|| panic!("baseline {path} has no results array"));
    let baseline_row = |label: &str| {
        results
            .iter()
            .find(|r| r.get("chunking").and_then(|v| v.as_str()) == Some(label))
    };
    let baseline_delta =
        |label: &str| -> Option<u64> { baseline_row(label)?.get("delta_bytes")?.as_u64() };
    let baseline_mib_s =
        |label: &str| -> Option<f64> { baseline_row(label)?.get("gen_mib_per_s")?.as_f64() };

    println!(
        "\nComparison against {path} (gates: delta bytes ≤ baseline, delta ≤ \
         {OVERHEAD_CAP}x local greedy, resident ≤ {RESIDENT_CAP_PER_BLOCK} B/block, \
         throughput ≥ {THROUGHPUT_FLOOR_RATIO}x baseline)\n"
    );
    let mut breaches = 0;
    let get_u64 = |key: &str| {
        baseline
            .get(key)
            .and_then(ipr_trace::json::Value::as_u64)
            .unwrap_or(0)
    };
    // Deterministic output is only comparable on the same synthetic
    // pair; the quick CI pair against the committed 64 MiB baseline
    // skips the cross-run gate rather than trivially passing it.
    let same_corpus =
        get_u64("reference_mib") == mib as u64 && get_u64("version_bytes") == version_bytes;
    if same_corpus {
        for r in rows {
            let Some(base) = baseline_delta(&r.label) else {
                println!("{}: no baseline row (ungated)", r.label);
                continue;
            };
            let status = if r.delta_bytes > base {
                breaches += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{}: delta bytes {} vs baseline {} {status}",
                r.label, r.delta_bytes, base
            );
        }
    } else {
        println!(
            "baseline corpus differs ({} MiB / {} bytes vs this run's {mib} / {version_bytes}) \
             — cross-run delta and throughput gates informational only; within-run gates \
             still apply",
            get_u64("reference_mib"),
            get_u64("version_bytes")
        );
    }
    // Per-block-size throughput floor. Absolute MiB/s only compares on
    // the same corpus (and, implicitly, the machine that recorded the
    // baseline); elsewhere the ratio is still printed so a CI log shows
    // the small-corpus numbers next to the committed ones.
    for r in rows {
        let Some(base) = baseline_mib_s(&r.label) else {
            println!("{}: no baseline throughput (ungated)", r.label);
            continue;
        };
        let ratio = r.gen_mib_s / base.max(f64::MIN_POSITIVE);
        let status = if !same_corpus {
            "info"
        } else if ratio < THROUGHPUT_FLOOR_RATIO {
            breaches += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{}: generated at {:.1} MiB/s vs baseline {:.1} ({:.2}x) {status}",
            r.label, r.gen_mib_s, base, ratio
        );
    }
    for r in rows {
        let status = if r.overhead > OVERHEAD_CAP {
            breaches += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{}: delta is {:.2}x the local greedy delta {status}",
            r.label, r.overhead
        );
        let cap = RESIDENT_FIXED_ALLOWANCE + r.blocks * RESIDENT_CAP_PER_BLOCK;
        let status = if r.resident_bytes > cap {
            breaches += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{}: {} resident bytes over {} blocks (cap {cap}) {status}",
            r.label, r.resident_bytes, r.blocks
        );
        let _ = r.chunking;
    }
    breaches
}

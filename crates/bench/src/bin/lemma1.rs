//! Lemma 1 — the CRWI digraph of any delta encoding a version of length
//! `L_V` has at most `L_V` edges.
//!
//! Verified here over the whole experiment corpus (both differs) and the
//! adversarial constructions; the binary reports the largest observed
//! `|E| / L_V` and fails loudly if the bound is ever exceeded.
//!
//! Run: `cargo run -p ipr-bench --release --bin lemma1`

use ipr_bench::{experiment_corpus, Table};
use ipr_core::CrwiGraph;
use ipr_delta::diff::{Differ, GreedyDiffer, OnePassDiffer};
use ipr_workloads::adversarial::{quadratic_edges, tree_digraph};

fn main() {
    println!("Lemma 1: CRWI edges <= L_V for every delta\n");
    let corpus = experiment_corpus();
    let differs: [&dyn Differ; 2] = [&GreedyDiffer::default(), &OnePassDiffer::default()];

    let mut t = Table::new(vec!["workload", "inputs", "max |E|/L_V", "violations"]);
    for differ in differs {
        let mut max_ratio = 0.0f64;
        let mut violations = 0usize;
        for pair in &corpus {
            let script = differ.diff(&pair.reference, &pair.version);
            // Also the read-length bound from the proof: each copy may
            // produce at most `l_i` edges.
            let total_read: u64 = script.copies().iter().map(|c| c.len).sum();
            let crwi = CrwiGraph::build(script.copies());
            let e = crwi.edge_count() as u64;
            if e > script.target_len() || e > total_read {
                violations += 1;
            }
            if script.target_len() > 0 {
                max_ratio = max_ratio.max(e as f64 / script.target_len() as f64);
            }
        }
        t.row(vec![
            format!("corpus / {}", differ.name()),
            corpus.len().to_string(),
            format!("{max_ratio:.4}"),
            violations.to_string(),
        ]);
        assert_eq!(violations, 0, "Lemma 1 violated by {}", differ.name());
    }

    let mut adv_max = 0.0f64;
    let mut adv_violations = 0usize;
    let mut adv_count = 0usize;
    for case in (1..=6)
        .map(tree_digraph)
        .chain([16u64, 64, 256].into_iter().map(quadratic_edges))
    {
        let crwi = CrwiGraph::build(case.script.copies());
        let e = crwi.edge_count() as u64;
        if e > case.script.target_len() {
            adv_violations += 1;
        }
        adv_max = adv_max.max(e as f64 / case.script.target_len() as f64);
        adv_count += 1;
    }
    t.row(vec![
        "adversarial (fig. 2 + fig. 3)".into(),
        adv_count.to_string(),
        format!("{adv_max:.4}"),
        adv_violations.to_string(),
    ]);
    assert_eq!(adv_violations, 0);
    t.print();
    println!("\n  [ok] no input exceeded the Lemma 1 bound");
}

//! §2/§7 — delta compression compresses distributed software "by a factor
//! of 4 to 10" and shrinks transmission time accordingly; in-place
//! conversion keeps almost all of that benefit.
//!
//! Reports the corpus compression-factor distribution and the end-to-end
//! transfer-time speedup of in-place deltas over full images on three
//! channel models.
//!
//! Run: `cargo run -p ipr-bench --release --bin transfer`

use ipr_bench::{bytes, experiment_corpus, pct, Table};
use ipr_core::ConversionConfig;
use ipr_delta::codec::Format;
use ipr_delta::diff::GreedyDiffer;
use ipr_device::update::prepare_update;
use ipr_device::Channel;
use std::time::Duration;

fn main() {
    let corpus = experiment_corpus();
    let differ = GreedyDiffer::default();
    let config = ConversionConfig::default();

    let mut factors = Vec::new();
    let mut total_full = 0u64;
    let mut total_delta = 0u64;
    for pair in &corpus {
        let update = prepare_update(
            &differ,
            &pair.reference,
            &pair.version,
            &config,
            Format::InPlace,
        )
        .expect("preparation cannot fail on corpus pairs");
        total_full += pair.version.len() as u64;
        total_delta += update.payload.len() as u64;
        factors.push(pair.version.len() as f64 / update.payload.len() as f64);
    }
    factors.sort_by(f64::total_cmp);
    let n = factors.len();

    println!("Compression factors of in-place deltas over {n} pairs\n");
    let mut t = Table::new(vec!["percentile", "factor"]);
    for (label, idx) in [
        ("p10", n / 10),
        ("p25", n / 4),
        ("median", n / 2),
        ("p75", 3 * n / 4),
        ("p90", 9 * n / 10),
    ] {
        t.row(vec![label.into(), format!("{:.1}x", factors[idx])]);
    }
    t.row(vec![
        "aggregate".into(),
        format!("{:.1}x", total_full as f64 / total_delta as f64),
    ]);
    t.print();
    let in_band = factors.iter().filter(|&&f| f >= 4.0).count();
    println!(
        "\n  {} of {} pairs compress 4x or better (paper: \"a factor of 4 to 10\")",
        in_band, n
    );

    println!(
        "\nTransfer time: full image vs in-place delta ({} B vs {} B total)\n",
        bytes(total_full),
        bytes(total_delta)
    );
    let mut t = Table::new(vec!["channel", "full image", "in-place delta", "saved"]);
    for channel in [Channel::dialup(), Channel::isdn(), Channel::cellular()] {
        let full = channel.transfer_time(total_full);
        let delta = channel.transfer_time(total_delta);
        t.row(vec![
            channel.to_string(),
            fmt_duration(full),
            fmt_duration(delta),
            pct(1.0 - delta.as_secs_f64() / full.as_secs_f64()),
        ]);
    }
    t.print();

    println!("\nLossy dial-up (stop-and-wait ARQ, 576 B frames):\n");
    let mut t = Table::new(vec!["frame loss", "full image", "in-place delta", "saved"]);
    for loss in [0.0f64, 0.05, 0.2] {
        let ch = ipr_device::LossyChannel::new(Channel::dialup(), loss, 1998);
        let full = ch.simulate_transfer(total_full, 576).time;
        let delta = ch.simulate_transfer(total_delta, 576).time;
        t.row(vec![
            pct(loss),
            fmt_duration(full),
            fmt_duration(delta),
            pct(1.0 - delta.as_secs_f64() / full.as_secs_f64()),
        ]);
    }
    t.print();

    distribution_images(&differ, &config);
}

/// Packaged-distribution images (the paper's actual artifact shape): one
/// container of many member files per release, members shifting whenever
/// an earlier member changes size.
fn distribution_images(differ: &GreedyDiffer, config: &ConversionConfig) {
    use ipr_workloads::archive::distribution_pair;
    println!("\nPackaged distribution images (container of member files per release):\n");
    let mut t = Table::new(vec![
        "distribution",
        "image size",
        "edited members",
        "delta size",
        "factor",
    ]);
    for (i, (members, lo, hi)) in [
        (30usize, 2_000usize, 8_000usize),
        (80, 4_000, 16_000),
        (150, 8_000, 32_000),
    ]
    .iter()
    .enumerate()
    {
        let pair = distribution_pair(100 + i as u64, *members, *lo..*hi);
        let update = prepare_update(differ, &pair.old, &pair.new, config, Format::InPlace)
            .expect("preparation cannot fail");
        t.row(vec![
            format!("{members} members"),
            bytes(pair.new.len() as u64),
            pair.edited_members.to_string(),
            bytes(update.payload.len() as u64),
            format!(
                "{:.1}x",
                pair.new.len() as f64 / update.payload.len() as f64
            ),
        ]);
    }
    t.print();
    println!(
        "\nMember-level edits shift every following byte of the container,\n\
         yet the differ re-finds the unchanged members at their new offsets:\n\
         patch-release distribution deltas compress at or beyond the paper's\n\
         4-10x band."
    );
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 3600.0 {
        format!("{:.1} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.1} s")
    }
}

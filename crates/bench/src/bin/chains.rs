//! Release chains (ours): hop-by-hop updates vs composed deltas vs a
//! direct diff, for devices several releases behind.
//!
//! A server holding per-hop deltas can serve a lagging device three ways:
//!
//! 1. **hop-by-hop** — send every intermediate delta; the device applies
//!    each in place (total payload grows with the lag);
//! 2. **composed** — algebraically compose the per-hop deltas into one
//!    `Δ(v1→vn)` without touching file contents
//!    ([`ipr_delta::compose`]), then convert for in-place application;
//! 3. **direct** — diff `v1` against `vn` directly (needs both full
//!    versions on the server).
//!
//! Composition approaches the direct diff's size while needing only the
//! deltas, at some fragmentation cost (command counts grow with chain
//! length).
//!
//! Run: `cargo run -p ipr-bench --release --bin chains`

use ipr_bench::{bytes, Table};
use ipr_core::{convert_to_in_place, ConversionConfig};
use ipr_delta::codec::{encoded_size, Format};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_delta::{apply, compose_chain, DeltaScript};
use ipr_workloads::chain::{ChainPattern, VersionChain};
use ipr_workloads::content::ContentKind;

fn in_place_size(script: &DeltaScript, reference: &[u8]) -> (u64, usize) {
    let out = convert_to_in_place(script, reference, &ConversionConfig::default())
        .expect("conversion cannot fail");
    (
        encoded_size(&out.script, Format::InPlace).expect("encodable"),
        out.script.len(),
    )
}

fn main() {
    let differ = GreedyDiffer::default();
    println!("Release chains: hop-by-hop vs composed vs direct (128 KiB binary, light hops)\n");
    let mut t = Table::new(vec![
        "lag (hops)",
        "hop-by-hop bytes",
        "composed bytes",
        "direct bytes",
        "composed cmds",
        "direct cmds",
    ]);
    for hops in [1usize, 2, 4, 8] {
        let chain = VersionChain::generate(
            99,
            ContentKind::BinaryLike,
            128 * 1024,
            hops + 1,
            ChainPattern::Patches,
        );
        let releases = chain.releases();
        let first = &releases[0];
        let last = releases.last().expect("non-empty");

        // Per-hop deltas (shared by strategies 1 and 2).
        let deltas: Vec<DeltaScript> = chain
            .hops()
            .map(|(old, new)| differ.diff(old, new))
            .collect();

        // 1. Hop-by-hop: each hop converted against its own reference.
        let mut hop_total = 0u64;
        for (i, d) in deltas.iter().enumerate() {
            let (size, _) = in_place_size(d, &releases[i]);
            hop_total += size;
        }

        // 2. Composed once, converted against v1.
        let composed = compose_chain(&deltas).expect("consecutive chain");
        assert_eq!(&apply(&composed, first).expect("valid"), last);
        let (composed_size, composed_cmds) = in_place_size(&composed, first);

        // 3. Direct diff.
        let direct = differ.diff(first, last);
        let (direct_size, direct_cmds) = in_place_size(&direct, first);

        t.row(vec![
            hops.to_string(),
            bytes(hop_total),
            bytes(composed_size),
            bytes(direct_size),
            composed_cmds.to_string(),
            direct_cmds.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nComposed deltas track the direct diff's size using only stored\n\
         deltas; fragmentation (command count) grows with the lag — the\n\
         composition trade-off."
    );
}

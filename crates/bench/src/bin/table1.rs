//! Table 1 — compression performance of delta compression and in-place
//! conversion.
//!
//! Paper columns (percent of original size, corpus-weighted):
//!
//! | Δ no write offsets | Δ write offsets | in-place (local-min) | in-place (constant) |
//! |--------------------|-----------------|----------------------|---------------------|
//! | 15.3%              | 17.2%           | 17.7%                | 21.2%               |
//!
//! with the loss split into 1.9% encoding loss (write offsets) and
//! 0.5% / 4.0% cycle loss (local-minimum / constant-time). We regenerate
//! the same rows over the synthetic corpus, in both the paper-faithful
//! fixed-width codewords and the varint codewords.
//!
//! Run: `cargo run -p ipr-bench --release --bin table1`

use ipr_bench::{experiment_corpus, pct, Table};
use ipr_core::{convert_to_in_place, ConversionConfig, CyclePolicy};
use ipr_delta::codec::{encoded_size, Format};
use ipr_delta::diff::{Differ, GreedyDiffer};

struct Totals {
    version: u64,
    ordered: u64,
    write_offsets: u64,
    local_min: u64,
    constant: u64,
}

fn measure(ordered_format: Format, inplace_format: Format) -> Totals {
    let corpus = experiment_corpus();
    let differ = GreedyDiffer::default();
    let mut t = Totals {
        version: 0,
        ordered: 0,
        write_offsets: 0,
        local_min: 0,
        constant: 0,
    };
    for pair in &corpus {
        let script = differ.diff(&pair.reference, &pair.version);
        t.version += pair.version.len() as u64;
        t.ordered += encoded_size(&script, ordered_format).expect("write-ordered script");
        // "Write offsets": the same commands, in write order, carrying
        // explicit write offsets — the pure encoding overhead.
        t.write_offsets += encoded_size(&script, inplace_format).expect("encodable");
        for (policy, slot) in [
            (CyclePolicy::LocallyMinimum, &mut t.local_min),
            (CyclePolicy::ConstantTime, &mut t.constant),
        ] {
            let config = ConversionConfig {
                policy,
                cost_format: inplace_format,
            };
            let out = convert_to_in_place(&script, &pair.reference, &config)
                .expect("heuristic policies cannot fail");
            *slot += encoded_size(&out.script, inplace_format).expect("encodable");
        }
    }
    t
}

fn print_table(title: &str, paper_row: Option<[f64; 4]>, t: &Totals) {
    let v = t.version as f64;
    let compression = [
        t.ordered as f64 / v,
        t.write_offsets as f64 / v,
        t.local_min as f64 / v,
        t.constant as f64 / v,
    ];
    let encoding_loss = compression[1] - compression[0];
    let cycle_loss_lm = compression[2] - compression[1];
    let cycle_loss_ct = compression[3] - compression[1];

    println!("\n== {title} ==\n");
    let mut table = Table::new(vec![
        "",
        "Δ no write offsets",
        "Δ write offsets",
        "In-Place (local min)",
        "In-Place (constant)",
    ]);
    table.row(vec![
        "Compression (measured)".into(),
        pct(compression[0]),
        pct(compression[1]),
        pct(compression[2]),
        pct(compression[3]),
    ]);
    if let Some(p) = paper_row {
        table.row(vec![
            "Compression (paper)".into(),
            pct(p[0]),
            pct(p[1]),
            pct(p[2]),
            pct(p[3]),
        ]);
    }
    table.row(vec![
        "Encoding loss".into(),
        String::new(),
        pct(encoding_loss),
        pct(encoding_loss),
        pct(encoding_loss),
    ]);
    table.row(vec![
        "Loss from cycles".into(),
        String::new(),
        String::new(),
        pct(cycle_loss_lm),
        pct(cycle_loss_ct),
    ]);
    table.row(vec![
        "Total loss".into(),
        String::new(),
        pct(encoding_loss),
        pct(encoding_loss + cycle_loss_lm),
        pct(encoding_loss + cycle_loss_ct),
    ]);
    table.print();

    // Shape checks the paper's conclusions rest on.
    let shape = [
        (
            "write offsets cost compression",
            compression[1] > compression[0],
        ),
        (
            "local-min loses less than constant-time",
            t.local_min <= t.constant,
        ),
        (
            "in-place overhead is small (< 8% of original size)",
            compression[3] - compression[0] < 0.08,
        ),
    ];
    println!();
    for (what, ok) in shape {
        println!("  [{}] {what}", if ok { "ok" } else { "MISMATCH" });
    }
}

fn main() {
    println!("Table 1: compression of delta vs in-place reconstructible delta");
    println!("(corpus: synthetic software distribution, see DESIGN.md §3/§5)");

    let varint = measure(Format::Ordered, Format::InPlace);
    print_table("varint codewords", None, &varint);

    let paper = measure(Format::PaperOrdered, Format::PaperInPlace);
    print_table(
        "paper-faithful codewords (4-byte offsets, 1-byte add lengths)",
        Some([0.153, 0.172, 0.177, 0.212]),
        &paper,
    );
}

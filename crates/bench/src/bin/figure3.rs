//! Figure 3 / §6 — the CRWI digraph edge count can be quadratic in the
//! number of copy commands (and is simultaneously bounded by the version
//! length, Lemma 1).
//!
//! The construction: a version of `L = b²` bytes in `b` blocks; block 0 is
//! written by `b` one-byte copies and every other block copies reference
//! block 0, conflicting with all of them: `(b-1)·b = L - √L` edges over
//! `2b - 1` commands — `Θ(|C|²)` and `Θ(L)` at once.
//!
//! Run: `cargo run -p ipr-bench --release --bin figure3`

use ipr_bench::{bytes, Table};
use ipr_core::CrwiGraph;
use ipr_workloads::adversarial::quadratic_edges;

fn main() {
    println!("Figure 3: quadratic CRWI edge counts (edges = (b-1)*b on L = b^2 bytes)\n");
    let mut t = Table::new(vec![
        "b (blocks)",
        "L = b^2",
        "commands |C|",
        "edges |E|",
        "|E| / |C|^2",
        "|E| / L",
    ]);
    for b in [4u64, 8, 16, 32, 64, 128, 256] {
        let case = quadratic_edges(b);
        let crwi = CrwiGraph::build(case.script.copies());
        let c = crwi.node_count() as f64;
        let e = crwi.edge_count() as f64;
        let l = case.script.target_len();
        assert_eq!(crwi.edge_count() as u64, (b - 1) * b);
        assert!(crwi.edge_count() as u64 <= l, "Lemma 1 violated");
        t.row(vec![
            b.to_string(),
            bytes(l),
            bytes(crwi.node_count() as u64),
            bytes(crwi.edge_count() as u64),
            format!("{:.3}", e / (c * c)),
            format!("{:.3}", e / l as f64),
        ]);
    }
    t.print();
    println!(
        "\n|E|/|C|^2 approaches 1/4 (quadratic in commands) while |E|/L stays\n\
         below 1 (Lemma 1): both §6 bounds are tight."
    );
}

//! Match-kernel microbenchmark: wide-word compare kernels vs the naive
//! byte loops they replaced.
//!
//! The differ inner loops were rebuilt on `ipr_delta::diff::kernel`
//! (forward/backward extension via `u64` XOR + `trailing_zeros`, word-
//! wide seed verify). This binary measures those primitives in
//! isolation, away from hash-table noise, over three match profiles:
//!
//! * **long** — megabyte-scale common runs (identical-file diffs, the
//!   seam stitcher's re-extension), where word loads dominate;
//! * **short** — 24-byte matches at every alignment phase (typical
//!   post-seed extension), where per-call overhead dominates;
//! * **verify** — 16-byte seed windows, hit and miss (the candidate
//!   filter in front of every extension).
//!
//! Every timed input is first cross-checked against the naive loop and
//! the run exits non-zero on any disagreement, so the bench doubles as a
//! smoke-level equivalence gate in CI. Throughput numbers are printed
//! for humans and are **not** gated — shared-runner noise would make any
//! absolute or ratio gate flaky; the `diff_throughput` gate covers the
//! end-to-end effect instead.
//!
//! Run: `cargo run -p ipr-bench --release --bin kernel_bench`

use ipr_delta::diff::kernel::{common_prefix, common_suffix, windows_eq};
use std::time::Instant;

fn naive_prefix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

fn naive_suffix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[a.len() - 1 - i] == b[b.len() - 1 - i] {
        i += 1;
    }
    i
}

fn naive_eq(a: &[u8], b: &[u8]) -> bool {
    a.len() == b.len() && (0..a.len()).all(|i| a[i] == b[i])
}

/// Deterministic xorshift fill, independent of any RNG crate.
fn fill(buf: &mut [u8], mut state: u64) {
    for b in buf {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = (state >> 56) as u8;
    }
}

fn best_of(reps: usize, mut f: impl FnMut() -> u128) -> u128 {
    let mut best = f();
    for _ in 1..reps {
        best = best.min(f());
    }
    best
}

struct Row {
    profile: &'static str,
    kernel: &'static str,
    bytes: u64,
    naive_ns: u128,
    wide_ns: u128,
}

fn main() {
    let reps: usize = std::env::var("IPR_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let mut rows = Vec::new();
    let mut mismatches = 0usize;

    // --- long profile: 4 MiB buffers, mismatch planted near the end ---
    let long = 4 * 1024 * 1024;
    let mut a = vec![0u8; long];
    fill(&mut a, 0x2545_f491_4f6c_dd1d);
    let mut b = a.clone();
    b[long - 3] ^= 0x40; // prefix scan runs ~4 MiB before this
    let mut c = a.clone();
    c[2] ^= 0x40; // suffix scan runs ~4 MiB before this
    for (dir, naive, wide, x, y) in [
        (
            "prefix",
            naive_prefix as fn(&[u8], &[u8]) -> usize,
            common_prefix as fn(&[u8], &[u8]) -> usize,
            &a[..],
            &b[..],
        ),
        ("suffix", naive_suffix, common_suffix, &a[..], &c[..]),
    ] {
        if naive(x, y) != wide(x, y) {
            eprintln!(
                "MISMATCH: long/{dir}: naive {} wide {}",
                naive(x, y),
                wide(x, y)
            );
            mismatches += 1;
        }
        let processed = wide(x, y) as u64;
        let naive_ns = best_of(reps, || {
            let t = Instant::now();
            std::hint::black_box(naive(std::hint::black_box(x), std::hint::black_box(y)));
            t.elapsed().as_nanos()
        });
        let wide_ns = best_of(reps, || {
            let t = Instant::now();
            std::hint::black_box(wide(std::hint::black_box(x), std::hint::black_box(y)));
            t.elapsed().as_nanos()
        });
        rows.push(Row {
            profile: "long",
            kernel: dir,
            bytes: processed,
            naive_ns,
            wide_ns,
        });
    }

    // --- short profile: 24-byte matches at every alignment phase ---
    // One call per phase per iteration; throughput counts matched bytes.
    let short_match = 24usize;
    let iters = 100_000usize;
    let mut sa = vec![0u8; 4096];
    fill(&mut sa, 0x9e37_79b9_7f4a_7c15);
    let mut sb = sa.clone();
    for i in (short_match..sb.len()).step_by(short_match + 1) {
        sb[i] ^= 0x10; // mismatch every short_match+1 bytes
    }
    for off in 0..8 {
        let (x, y) = (&sa[off..], &sb[off..]);
        if naive_prefix(x, y) != common_prefix(x, y) {
            eprintln!("MISMATCH: short offset {off}");
            mismatches += 1;
        }
    }
    let short_pass = |f: fn(&[u8], &[u8]) -> usize, sa: &[u8], sb: &[u8]| -> (u128, u64) {
        let t = Instant::now();
        let mut total = 0u64;
        for i in 0..iters {
            let off = (i * 7) % 64;
            total += f(
                std::hint::black_box(&sa[off..]),
                std::hint::black_box(&sb[off..]),
            ) as u64;
        }
        (t.elapsed().as_nanos(), std::hint::black_box(total))
    };
    let (_, short_bytes) = short_pass(common_prefix, &sa, &sb);
    let naive_ns = best_of(reps, || short_pass(naive_prefix, &sa, &sb).0);
    let wide_ns = best_of(reps, || short_pass(common_prefix, &sa, &sb).0);
    rows.push(Row {
        profile: "short",
        kernel: "prefix",
        bytes: short_bytes,
        naive_ns,
        wide_ns,
    });

    // --- verify profile: 16-byte seed windows, ~50% hit rate ---
    let seed_len = 16usize;
    let verify_iters = 200_000usize;
    let mut va = vec![0u8; 8192];
    fill(&mut va, 0xd6e8_feb8_6659_fd93);
    let mut vb = va.clone();
    for i in (0..vb.len()).step_by(2 * seed_len) {
        vb[i + seed_len / 2] ^= 0x20; // half the windows differ mid-seed
    }
    let verify_pass = |f: fn(&[u8], &[u8]) -> bool, va: &[u8], vb: &[u8]| -> (u128, u64) {
        let t = Instant::now();
        let mut hits = 0u64;
        for i in 0..verify_iters {
            let off = (i * seed_len) % (va.len() - seed_len);
            hits += u64::from(f(
                std::hint::black_box(&va[off..off + seed_len]),
                std::hint::black_box(&vb[off..off + seed_len]),
            ));
        }
        (t.elapsed().as_nanos(), std::hint::black_box(hits))
    };
    let (_, naive_hits) = verify_pass(naive_eq, &va, &vb);
    let (_, wide_hits) = verify_pass(windows_eq, &va, &vb);
    if naive_hits != wide_hits {
        eprintln!("MISMATCH: verify hits {naive_hits} vs {wide_hits}");
        mismatches += 1;
    }
    let naive_ns = best_of(reps, || verify_pass(naive_eq, &va, &vb).0);
    let wide_ns = best_of(reps, || verify_pass(windows_eq, &va, &vb).0);
    rows.push(Row {
        profile: "verify",
        kernel: "windows_eq",
        bytes: (verify_iters * seed_len) as u64,
        naive_ns,
        wide_ns,
    });

    println!("Match-kernel microbench: {reps} reps, best-of timing (naive = byte loop)\n");
    println!(
        "{:<8} {:<11} {:>12} {:>12} {:>12} {:>9}",
        "profile", "kernel", "bytes", "naive MiB/s", "wide MiB/s", "speedup"
    );
    for r in &rows {
        let mib = r.bytes as f64 / (1024.0 * 1024.0);
        let naive = mib / (r.naive_ns as f64 / 1e9);
        let wide = mib / (r.wide_ns as f64 / 1e9);
        println!(
            "{:<8} {:<11} {:>12} {:>12.0} {:>12.0} {:>8.2}x",
            r.profile,
            r.kernel,
            r.bytes,
            naive,
            wide,
            r.naive_ns as f64 / r.wide_ns as f64
        );
    }

    if mismatches > 0 {
        eprintln!("\n{mismatches} kernel/naive disagreement(s)");
        std::process::exit(1);
    }
}

//! Differencing throughput: serial vs wave-parallel shared-index diff.
//!
//! Differencing dominates the pipeline (~97% of end-to-end time in
//! `results/BENCH_phase_breakdown.json`), so this benchmark tracks the
//! phase directly: every differ family is run serially and wrapped in
//! [`ParallelDiffer`] at 1/2/4/8 threads over the experiment corpus,
//! reporting MiB/s of version bytes differenced and the encoded delta
//! size (the compression cost of chunked scanning — bounded by seam
//! stitching). A shared [`DiffScratch`] arena is reused across every
//! call, so steady state measures the algorithms, not the allocator.
//!
//! Results land in `results/BENCH_diff_throughput.json`.
//! `host_parallelism` records how many cores the numbers were taken on:
//! speedups above it are not physically possible on that host.
//!
//! Run: `cargo run -p ipr-bench --release --bin diff_throughput`
//!
//! With `--compare <baseline.json>` the run instead gates against a
//! previously written report and exits non-zero on a regression:
//!
//! * **compression** — any configuration's summed encoded delta bytes
//!   exceed the baseline's *at all* (diff output is deterministic, so on
//!   the synthetic corpus a single extra byte is a real algorithmic
//!   change, not noise), or any parallel configuration's delta bytes
//!   exceed the same-run serial engine's by more than [`SEAM_TOLERANCE`]
//!   (a corpus-size-independent seam-stitching gate that holds even on
//!   the quick CI corpus);
//! * **overhead** — single-threaded parallel falls behind the serial
//!   engine by more than [`OVERHEAD_FACTOR`] (a machine-independent
//!   within-run ratio; absolute times are never gated).
//!
//! Timing rows at thread counts above the host's parallelism are printed
//! for the record but carry no information — on a single-core runner
//! every multi-thread row is just the 1-thread row plus scheduling
//! noise, so compare mode flags them as informational and gates nothing
//! on them until a multi-core baseline run lands.
//!
//! The baseline file is left untouched in this mode.

use ipr_bench::experiment_corpus;
use ipr_delta::codec::{encode, Format};
use ipr_delta::diff::{
    CorrectingDiffer, DiffScratch, GreedyDiffer, IndexedDiffer, OnePassDiffer, ParallelDiffer,
};
use ipr_workloads::corpus::FilePair;
use std::time::Instant;

/// Gate: a parallel configuration's encoded delta bytes may exceed the
/// same-run serial engine's by at most this much (2%, the documented
/// seam-stitching bound). The cross-run baseline gate is stricter:
/// deterministic output means delta bytes must not grow *at all*.
const SEAM_TOLERANCE: f64 = 1.02;
/// Gate: single-threaded parallel may cost at most this much of serial.
const OVERHEAD_FACTOR: f64 = 2.0;

struct Row {
    differ: &'static str,
    config: &'static str,
    threads: usize,
    total_ns: u128,
    mib_per_s: f64,
    speedup: f64,
    delta_bytes: u64,
}

fn best_of(reps: usize, mut f: impl FnMut() -> u128) -> u128 {
    let mut best = f();
    for _ in 1..reps {
        best = best.min(f());
    }
    best
}

/// One timed pass of `diff` over the corpus; delta bytes are summed once
/// outside the timed region.
fn corpus_pass(corpus: &[FilePair], mut diff: impl FnMut(&FilePair)) -> u128 {
    let t = Instant::now();
    for pair in corpus {
        diff(pair);
    }
    t.elapsed().as_nanos()
}

/// Serial + 1/2/4/8-thread parallel rows for one differ family.
fn bench_differ<D: IndexedDiffer + Clone>(
    name: &'static str,
    inner: D,
    corpus: &[FilePair],
    reps: usize,
    mib: f64,
) -> Vec<Row> {
    let throughput = |ns: u128| mib / (ns as f64 / 1e9);

    let serial_ns = best_of(reps, || {
        corpus_pass(corpus, |p| {
            std::hint::black_box(inner.diff(&p.reference, &p.version));
        })
    });
    let serial_delta: u64 = corpus
        .iter()
        .map(|p| {
            let script = inner.diff(&p.reference, &p.version);
            encode(&script, Format::Ordered)
                .expect("encodable script")
                .len() as u64
        })
        .sum();
    let mut rows = vec![Row {
        differ: name,
        config: "serial",
        threads: 1,
        total_ns: serial_ns,
        mib_per_s: throughput(serial_ns),
        speedup: 1.0,
        delta_bytes: serial_delta,
    }];

    let mut scratch = DiffScratch::new();
    for threads in [1usize, 2, 4, 8] {
        let differ = ParallelDiffer::new(inner.clone()).with_threads(threads);
        let ns = best_of(reps, || {
            corpus_pass(corpus, |p| {
                std::hint::black_box(differ.diff_with(&mut scratch, &p.reference, &p.version));
            })
        });
        let delta_bytes: u64 = corpus
            .iter()
            .map(|p| {
                let script = differ.diff_with(&mut scratch, &p.reference, &p.version);
                encode(&script, Format::Ordered)
                    .expect("encodable script")
                    .len() as u64
            })
            .sum();
        rows.push(Row {
            differ: name,
            config: "parallel",
            threads,
            total_ns: ns,
            mib_per_s: throughput(ns),
            speedup: serial_ns as f64 / ns as f64,
            delta_bytes,
        });
    }
    rows
}

fn main() {
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--compare" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--compare needs a baseline JSON path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: diff_throughput [--compare <baseline.json>]"
                );
                std::process::exit(2);
            }
        }
    }

    let corpus = experiment_corpus();
    let reps: usize = std::env::var("IPR_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let version_bytes: u64 = corpus.iter().map(|p| p.version.len() as u64).sum();
    let mib = version_bytes as f64 / (1024.0 * 1024.0);

    let mut rows = Vec::new();
    rows.extend(bench_differ(
        "greedy",
        GreedyDiffer::default(),
        &corpus,
        reps,
        mib,
    ));
    rows.extend(bench_differ(
        "one-pass",
        OnePassDiffer::default(),
        &corpus,
        reps,
        mib,
    ));
    rows.extend(bench_differ(
        "correcting",
        CorrectingDiffer::default(),
        &corpus,
        reps,
        mib,
    ));

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "Diff throughput: {} pairs, {:.1} MiB of version data, {} reps, host has {} core(s)\n",
        corpus.len(),
        mib,
        reps,
        host
    );
    println!(
        "{:<12} {:<9} {:>8} {:>12} {:>10} {:>9} {:>13}",
        "differ", "config", "threads", "total ms", "MiB/s", "speedup", "delta bytes"
    );
    for r in &rows {
        println!(
            "{:<12} {:<9} {:>8} {:>12.2} {:>10.1} {:>8.2}x {:>13}",
            r.differ,
            r.config,
            r.threads,
            r.total_ns as f64 / 1e6,
            r.mib_per_s,
            r.speedup,
            r.delta_bytes
        );
    }

    if let Some(path) = baseline_path {
        let breaches = compare_to_baseline(&rows, &path, corpus.len(), version_bytes);
        if breaches > 0 {
            eprintln!("\n{breaches} regression(s) past the gates");
            std::process::exit(1);
        }
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"diff_throughput\",\n");
    json.push_str("  \"command\": \"cargo run -p ipr-bench --release --bin diff_throughput\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"pairs\": {},\n", corpus.len()));
    json.push_str(&format!("  \"version_bytes\": {version_bytes},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"differ\": \"{}\", \"config\": \"{}\", \"threads\": {}, \"total_ns\": {}, \
             \"mib_per_s\": {:.1}, \"speedup_vs_serial\": {:.3}, \"delta_bytes\": {}}}{}\n",
            r.differ,
            r.config,
            r.threads,
            r.total_ns,
            r.mib_per_s,
            r.speedup,
            r.delta_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_diff_throughput.json", &json).expect("write results");
    println!("\nwrote results/BENCH_diff_throughput.json");
}

/// Gates the current rows against a stored report; returns breach count.
fn compare_to_baseline(rows: &[Row], path: &str, pairs: usize, version_bytes: u64) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let baseline = ipr_trace::json::parse(&text)
        .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"));
    let results = baseline
        .get("results")
        .and_then(|r| r.as_array())
        .unwrap_or_else(|| panic!("baseline {path} has no results array"));
    let baseline_delta = |differ: &str, config: &str, threads: usize| -> Option<u64> {
        results
            .iter()
            .find(|r| {
                r.get("differ").and_then(|v| v.as_str()) == Some(differ)
                    && r.get("config").and_then(|v| v.as_str()) == Some(config)
                    && r.get("threads").and_then(ipr_trace::json::Value::as_u64)
                        == Some(threads as u64)
            })?
            .get("delta_bytes")?
            .as_u64()
    };

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\nComparison against {path} (gates: delta bytes ≤ baseline, parallel delta bytes \
         ≤ {SEAM_TOLERANCE}x serial, 1-thread parallel ≤ {OVERHEAD_FACTOR}x serial)\n"
    );
    if host == 1 {
        println!(
            "note: host has 1 core — timing rows at threads > 1 are informational only \
             (no speedup is physically possible; nothing is gated on them)\n"
        );
    }
    let mut breaches = 0;
    // Cross-run delta bytes are only comparable when both runs saw the
    // same corpus; a quick-corpus CI run against a full-corpus baseline
    // would trivially "pass" every row, which is worse than saying so.
    let get_u64 = |key: &str| {
        baseline
            .get(key)
            .and_then(ipr_trace::json::Value::as_u64)
            .unwrap_or(0)
    };
    let same_corpus = get_u64("pairs") == pairs as u64 && get_u64("version_bytes") == version_bytes;
    if same_corpus {
        for r in rows {
            let Some(base) = baseline_delta(r.differ, r.config, r.threads) else {
                println!(
                    "{}/{}/t{}: no baseline row (ungated)",
                    r.differ, r.config, r.threads
                );
                continue;
            };
            let status = if r.delta_bytes > base {
                breaches += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{}/{}/t{}: delta bytes {} vs baseline {} {status}",
                r.differ, r.config, r.threads, r.delta_bytes, base
            );
        }
    } else {
        println!(
            "baseline corpus differs ({} pairs / {} bytes vs this run's {pairs} / \
             {version_bytes}) — cross-run delta gates skipped; within-run gates still apply",
            get_u64("pairs"),
            get_u64("version_bytes")
        );
    }
    // Within-run gates: these compare rows from the same run, so corpus
    // size and machine speed cancel — they hold on the quick CI corpus
    // even when the baseline was taken on the full one.
    for differ in ["greedy", "one-pass", "correcting"] {
        let serial = rows
            .iter()
            .find(|r| r.differ == differ && r.config == "serial")
            .expect("serial row present");
        let par1 = rows
            .iter()
            .find(|r| r.differ == differ && r.config == "parallel" && r.threads == 1)
            .expect("1-thread parallel row present");
        let ratio = par1.total_ns as f64 / serial.total_ns as f64;
        let status = if ratio > OVERHEAD_FACTOR {
            breaches += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("{differ}: 1-thread parallel is {ratio:.2}x serial {status}");
        for par in rows
            .iter()
            .filter(|r| r.differ == differ && r.config == "parallel")
        {
            let ratio = par.delta_bytes as f64 / serial.delta_bytes.max(1) as f64;
            let status = if ratio > SEAM_TOLERANCE {
                breaches += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{differ}: t{} parallel delta bytes are {ratio:.4}x serial {status}",
                par.threads
            );
        }
    }
    breaches
}

//! Per-phase pipeline breakdown via the `ipr-trace` observability layer.
//!
//! Drives the full pipeline — diff → encode → decode → convert → plan →
//! serial apply → parallel apply — over the experiment corpus with a
//! [`ipr_trace::StatsRecorder`] installed, then reports where the time
//! went. Unlike the other experiment binaries, nothing here is timed by
//! hand: every number comes from the same spans and counters that
//! `ipr --stats` exposes, so this doubles as an end-to-end check that the
//! instrumentation covers the whole pipeline.
//!
//! Results land in `results/BENCH_phase_breakdown.json` in the
//! `ipr-stats/1` schema (see docs/OBSERVABILITY.md), diffable across PRs.
//!
//! Run: `cargo run -p ipr-bench --release --bin phases`

use ipr_bench::{experiment_corpus, pct, Table};
use ipr_core::{
    apply_in_place, apply_schedule_parallel, convert_to_in_place, required_capacity,
    ConversionConfig, ParallelConfig, ParallelSchedule,
};
use ipr_delta::codec::{decode, encode, Format};
use ipr_delta::diff::{Differ, GreedyDiffer};
use std::sync::Arc;

fn main() {
    let corpus = experiment_corpus();
    let recorder = Arc::new(ipr_trace::StatsRecorder::new());
    let _guard = ipr_trace::install(recorder.clone());

    let differ = GreedyDiffer::default();
    let config = ParallelConfig::default();
    for pair in &corpus {
        let script = differ.diff(&pair.reference, &pair.version);
        let wire = encode(&script, Format::InPlace).expect("encodable script");
        let decoded = decode(&wire).expect("round-trip");
        let out = convert_to_in_place(
            &decoded.script,
            &pair.reference,
            &ConversionConfig::default(),
        )
        .expect("conversion cannot fail");
        let plan = ParallelSchedule::plan(&out.script).expect("converted script is safe");
        let cap = usize::try_from(required_capacity(&out.script)).expect("fits usize");
        let mut buf = vec![0u8; cap];
        buf[..pair.reference.len()].copy_from_slice(&pair.reference);
        apply_in_place(&out.script, &mut buf).expect("serial apply");
        buf[..pair.reference.len()].copy_from_slice(&pair.reference);
        apply_schedule_parallel(&out.script, &plan, &mut buf, &config).expect("parallel apply");
    }

    let report = recorder.report();

    // Phase share table: top-level spans as a fraction of total traced time.
    let phases = [
        ("diff", "diff"),
        ("codec.encode", "encode"),
        ("codec.decode", "decode"),
        ("convert", "convert"),
        ("schedule.plan", "plan"),
        ("apply.serial", "serial apply"),
        ("apply.parallel", "parallel apply"),
    ];
    let total_ns: u64 = phases
        .iter()
        .filter_map(|(name, _)| report.span(name))
        .map(|s| s.total_ns)
        .sum();
    println!(
        "Pipeline phase breakdown: {} pairs, all numbers from ipr-trace spans\n",
        corpus.len()
    );
    let mut t = Table::new(vec!["phase", "calls", "total ms", "share"]);
    for (name, label) in phases {
        let s = report.span(name).expect("phase span recorded");
        t.row(vec![
            label.into(),
            s.count.to_string(),
            format!("{:.2}", s.total_ns as f64 / 1e6),
            pct(s.total_ns as f64 / total_ns as f64),
        ]);
    }
    t.print();

    println!("\nFull span tree and counters:\n\n{report}");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_phase_breakdown.json", report.to_json()).expect("write results");
    println!("wrote results/BENCH_phase_breakdown.json");
}

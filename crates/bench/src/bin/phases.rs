//! Per-phase pipeline breakdown via the `ipr-trace` observability layer.
//!
//! Drives the full pipeline — diff → encode → decode → convert → plan →
//! serial apply → parallel apply — over the experiment corpus with a
//! [`ipr_trace::StatsRecorder`] installed, then reports where the time
//! went. Unlike the other experiment binaries, nothing here is timed by
//! hand: every number comes from the same spans and counters that
//! `ipr --stats` exposes, so this doubles as an end-to-end check that the
//! instrumentation covers the whole pipeline.
//!
//! Results land in `results/BENCH_phase_breakdown.json` in the
//! `ipr-stats/1` schema (see docs/OBSERVABILITY.md), diffable across PRs.
//!
//! Run: `cargo run -p ipr-bench --release --bin phases`
//!
//! With `--compare <baseline.json>` the run instead diffs itself against a
//! previously written breakdown and exits non-zero only when a phase's
//! *share of total pipeline time* grows by more than [`REGRESSION_FACTOR`].
//! Shares, not absolute times, so the gate is machine-independent; the
//! generous factor plus the [`MIN_BASELINE_SHARE`] floor keep CI noise from
//! tripping it. The baseline file is left untouched in this mode.

use ipr_bench::{experiment_corpus, pct, Table};
use ipr_core::{
    apply_in_place, apply_schedule_parallel, convert_to_in_place, required_capacity,
    ConversionConfig, ParallelConfig, ParallelSchedule,
};
use ipr_delta::codec::{decode, encode, Format};
use ipr_delta::diff::{Differ, GreedyDiffer};
use std::sync::Arc;

/// A phase regresses when its share of total time grows past this factor.
const REGRESSION_FACTOR: f64 = 3.0;
/// Phases below this baseline share are too small to gate on: their shares
/// are dominated by timer noise, not by the code under test.
const MIN_BASELINE_SHARE: f64 = 0.02;

fn main() {
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--compare" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--compare needs a baseline JSON path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}`; usage: phases [--compare <baseline.json>]");
                std::process::exit(2);
            }
        }
    }

    let corpus = experiment_corpus();
    let recorder = Arc::new(ipr_trace::StatsRecorder::new());
    let _guard = ipr_trace::install(recorder.clone());

    // Recorded so readers of the JSON can judge the parallel-apply rows:
    // speedups above the host's core count are not physically possible.
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    ipr_trace::gauge("host.parallelism", host as u64);

    let differ = GreedyDiffer::default();
    let config = ParallelConfig::default();
    for pair in &corpus {
        let script = differ.diff(&pair.reference, &pair.version);
        let wire = encode(&script, Format::InPlace).expect("encodable script");
        let decoded = decode(&wire).expect("round-trip");
        let out = convert_to_in_place(
            &decoded.script,
            &pair.reference,
            &ConversionConfig::default(),
        )
        .expect("conversion cannot fail");
        let plan = ParallelSchedule::plan(&out.script).expect("converted script is safe");
        let cap = usize::try_from(required_capacity(&out.script)).expect("fits usize");
        let mut buf = vec![0u8; cap];
        buf[..pair.reference.len()].copy_from_slice(&pair.reference);
        apply_in_place(&out.script, &mut buf).expect("serial apply");
        buf[..pair.reference.len()].copy_from_slice(&pair.reference);
        apply_schedule_parallel(&out.script, &plan, &mut buf, &config).expect("parallel apply");
    }

    let report = recorder.report();

    // Phase share table: top-level spans as a fraction of total traced time.
    let phases = [
        ("diff", "diff"),
        ("codec.encode", "encode"),
        ("codec.decode", "decode"),
        ("convert", "convert"),
        ("schedule.plan", "plan"),
        ("apply.serial", "serial apply"),
        ("apply.parallel", "parallel apply"),
    ];
    let total_ns: u64 = phases
        .iter()
        .filter_map(|(name, _)| report.span(name))
        .map(|s| s.total_ns)
        .sum();
    println!(
        "Pipeline phase breakdown: {} pairs, all numbers from ipr-trace spans\n",
        corpus.len()
    );
    let mut t = Table::new(vec!["phase", "calls", "total ms", "share"]);
    for (name, label) in phases {
        let s = report.span(name).expect("phase span recorded");
        t.row(vec![
            label.into(),
            s.count.to_string(),
            format!("{:.2}", s.total_ns as f64 / 1e6),
            pct(s.total_ns as f64 / total_ns as f64),
        ]);
    }
    t.print();

    println!("\nFull span tree and counters:\n\n{report}");

    if let Some(path) = baseline_path {
        let breaches = compare_to_baseline(&report, &phases, total_ns, &path);
        if breaches > 0 {
            eprintln!("\n{breaches} phase(s) regressed past {REGRESSION_FACTOR}x");
            std::process::exit(1);
        }
        return;
    }

    // `host_parallelism` rides at the top level (the convention shared
    // by every BENCH_*.json), not just as a recorded gauge: splice it
    // in right after the opening brace of the stats report.
    let json = report
        .to_json()
        .strip_prefix("{\n")
        .map(|rest| format!("{{\n  \"host_parallelism\": {host},\n{rest}"))
        .expect("stats report opens with a brace");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_phase_breakdown.json", json).expect("write results");
    println!("wrote results/BENCH_phase_breakdown.json");
}

/// Diffs the current run's phase shares against a stored breakdown and
/// prints the comparison table; returns the number of gated regressions.
fn compare_to_baseline(
    report: &ipr_trace::StatsReport,
    phases: &[(&str, &str)],
    total_ns: u64,
    path: &str,
) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let baseline = ipr_trace::json::parse(&text)
        .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"));
    let baseline_ns =
        |name: &str| -> Option<u64> { baseline.get("spans")?.get(name)?.get("total_ns")?.as_u64() };
    let baseline_total: u64 = phases
        .iter()
        .filter_map(|(name, _)| baseline_ns(name))
        .sum();
    assert!(
        baseline_total > 0,
        "baseline {path} records none of the pipeline phases"
    );

    println!("\nPhase-share comparison against {path} (gate: {REGRESSION_FACTOR}x growth, phases under {:.0}% baseline share ungated)\n", MIN_BASELINE_SHARE * 100.0);
    let mut t = Table::new(vec!["phase", "baseline", "current", "ratio", "status"]);
    let mut breaches = 0;
    for &(name, label) in phases {
        let current =
            report.span(name).expect("phase span recorded").total_ns as f64 / total_ns as f64;
        let Some(base_ns) = baseline_ns(name) else {
            t.row(vec![
                label.into(),
                "—".into(),
                pct(current),
                "—".into(),
                "new phase (ungated)".into(),
            ]);
            continue;
        };
        let base = base_ns as f64 / baseline_total as f64;
        let ratio = if base > 0.0 {
            current / base
        } else {
            f64::INFINITY
        };
        let status = if base < MIN_BASELINE_SHARE {
            "ungated (tiny baseline share)"
        } else if ratio > REGRESSION_FACTOR {
            breaches += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        t.row(vec![
            label.into(),
            pct(base),
            pct(current),
            format!("{ratio:.2}x"),
            status.into(),
        ]);
    }
    t.print();
    breaches
}

//! Streaming install vs download-then-apply over lossy channels.
//!
//! One firmware hop (`IPR_BENCH_STREAM_BYTES` bytes, drifted the same
//! way every run) is shipped as a chunked delta stream through every
//! channel preset (dialup / ISDN / cellular) at loss rates 0, 1% and
//! 5%, and installed two ways:
//!
//! * **streaming** — [`ipr_device::stream_install`] pulls chunks through
//!   the lossy channel and applies commands while the tail of the delta
//!   is still on the wire; *time to first reconstructed byte* is the
//!   simulated instant the first command lands in flash;
//! * **download-then-apply** — the whole payload crosses the same
//!   channel first, so its first reconstructed byte cannot land before
//!   the transfer completes.
//!
//! Every cell asserts byte-identity with an offline apply and that the
//! decoder's resident buffer stayed under the frame+chunk bound; a
//! kill/resume leg on the worst channel checks the checkpoint path end
//! to end. All reported times are *simulated* (pure functions of the
//! payload, the channel model and the loss seed), so they are identical
//! on every machine and `--compare` gates them exactly.
//!
//! Results land in `results/BENCH_streaming_install.json`.
//!
//! Run: `cargo run -p ipr-bench --release --bin streaming_install`
//!
//! With `--compare <baseline.json>` the run gates instead of writing:
//!
//! * byte-identity and the buffer bound (within-run, hard);
//! * streaming TTFB beats download-then-apply on both dialup cells with
//!   loss (hard — that is the point of streaming; fast channels are
//!   reported but not gated);
//! * wire length and every cell's simulated times and retransmission
//!   counts match the baseline exactly (machine-independent).

use ipr_device::{stream_install, Channel, Device, LossyChannel, StreamProgress, StreamReport};
use ipr_pipeline::{DeltaStream, Engine};
use ipr_workloads::content::{self, ContentKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LOSS_RATES: [f64; 3] = [0.0, 0.01, 0.05];
const LOSS_SEED: u64 = 9;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn presets() -> [(&'static str, Channel); 3] {
    [
        ("dialup", Channel::dialup()),
        ("isdn", Channel::isdn()),
        ("cellular", Channel::cellular()),
    ]
}

/// One channel × loss measurement.
struct Cell {
    channel: &'static str,
    loss: f64,
    ttfb_ns: u64,
    total_ns: u64,
    download_ns: u64,
    retransmissions: u64,
    chunks: u64,
    commands: u64,
    commands_pre_eof: u64,
    buffered_high_water: u64,
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).expect("simulated time fits in u64 nanoseconds")
}

fn fresh_device(reference: &[u8], version: &[u8]) -> Device {
    let mut device = Device::new(reference.len().max(version.len()));
    device.flash(reference).expect("flash reference");
    device
}

fn complete(
    device: &mut Device,
    stream: &DeltaStream,
    channel: LossyChannel,
    mtu: usize,
) -> StreamReport {
    match stream_install(device, stream, channel, mtu, None, None).expect("streaming install") {
        StreamProgress::Complete(report) => report,
        StreamProgress::Killed { .. } => unreachable!("no kill requested"),
    }
}

fn main() {
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--compare" => {
                baseline_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--compare needs a baseline JSON path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: streaming_install [--compare <baseline.json>]"
                );
                std::process::exit(2);
            }
        }
    }

    let bytes = env_usize("IPR_BENCH_STREAM_BYTES", 256 * 1024);
    let chunk = env_usize("IPR_BENCH_STREAM_CHUNK", 1024);
    let mtu = env_usize("IPR_BENCH_STREAM_MTU", 576);

    // One firmware hop with moderate drift: the shipped release keeps
    // most of the image (block moves the differ turns into copies) but
    // rewrites ~10% with fresh content scattered across sixteen sites,
    // so the delta compresses well yet still spans many chunks.
    let mut rng = StdRng::seed_from_u64(777);
    let reference = content::generate(&mut rng, ContentKind::BinaryLike, bytes);
    let mut version = reference.clone();
    version.rotate_left(bytes / 16);
    for i in 0..16 {
        let at = i * bytes / 16;
        let fresh = content::generate(&mut rng, ContentKind::BinaryLike, bytes / 160);
        let end = (at + fresh.len()).min(version.len());
        version[at..end].copy_from_slice(&fresh[..end - at]);
    }

    let mut engine = Engine::new();
    let stream = engine
        .stream_update(&reference, &version, chunk)
        .expect("prepare streaming update");
    let wire_len = stream.wire_len();

    // Offline ground truth and the decoder's resident-memory bound:
    // the largest possible buffered suffix is one maximal command frame
    // (tag + three ten-byte varints + the largest add literal) plus one
    // not-yet-drained chunk.
    let delta = engine.update(&reference, &version).expect("offline delta");
    let max_literal = delta
        .script
        .commands()
        .iter()
        .map(|c| match c {
            ipr_delta::Command::Add(a) => a.len(),
            ipr_delta::Command::Copy(_) => 0,
        })
        .max()
        .unwrap_or(0);
    let buffer_bound = max_literal + 31 + chunk as u64;
    let offline = {
        let mut device = fresh_device(&reference, &version);
        let report = complete(
            &mut device,
            &stream,
            LossyChannel::new(Channel::isdn(), 0.0, 1),
            mtu,
        );
        assert!(report.crc_verified, "offline reference run must verify");
        device.image().to_vec()
    };
    assert_eq!(offline, version, "stream decodes to the shipped version");

    println!(
        "Streaming install: {} KiB image, {wire_len} B wire, {chunk} B chunks, {mtu} B MTU\n",
        bytes / 1024
    );
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>14} {:>7} {:>8}",
        "channel", "loss", "ttfb ms", "total ms", "download ms", "ratio", "retx"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for (name, base) in presets() {
        for loss in LOSS_RATES {
            let channel = LossyChannel::new(base, loss, LOSS_SEED);
            let mut device = fresh_device(&reference, &version);
            let report = complete(&mut device, &stream, channel, mtu);
            assert!(report.crc_verified, "{name}/{loss}: CRC must verify");
            assert_eq!(
                device.image(),
                &offline[..],
                "{name}/{loss}: streaming differs from offline apply"
            );
            assert!(
                report.buffered_high_water <= buffer_bound,
                "{name}/{loss}: high water {} exceeds bound {buffer_bound}",
                report.buffered_high_water
            );
            let download_ns = duration_ns(channel.simulate_transfer(wire_len, mtu).time);
            let ttfb_ns = duration_ns(
                report
                    .time_to_first_byte
                    .expect("install applies at least one command"),
            );
            let cell = Cell {
                channel: name,
                loss,
                ttfb_ns,
                total_ns: duration_ns(report.transfer_time),
                download_ns,
                retransmissions: report.retransmissions,
                chunks: report.chunks,
                commands: report.commands_applied,
                commands_pre_eof: report.commands_pre_eof,
                buffered_high_water: report.buffered_high_water,
            };
            println!(
                "{:<10} {:>5.0}% {:>14.1} {:>14.1} {:>14.1} {:>7.3} {:>8}",
                cell.channel,
                cell.loss * 100.0,
                cell.ttfb_ns as f64 / 1e6,
                cell.total_ns as f64 / 1e6,
                cell.download_ns as f64 / 1e6,
                cell.ttfb_ns as f64 / cell.download_ns as f64,
                cell.retransmissions
            );
            cells.push(cell);
        }
    }

    // Kill/resume leg on the worst channel: die mid-stream, persist the
    // checkpoint through its wire form, resume, and land byte-identical.
    let resume_channel = LossyChannel::new(Channel::dialup(), 0.05, LOSS_SEED);
    let total_chunks = wire_len.div_ceil(chunk as u64);
    let kill_at = total_chunks / 2;
    let mut device = fresh_device(&reference, &version);
    let resumes = match stream_install(
        &mut device,
        &stream,
        resume_channel,
        mtu,
        None,
        Some(kill_at),
    )
    .expect("killed install")
    {
        StreamProgress::Killed { checkpoint, .. } => {
            let restored = ipr_device::InstallCheckpoint::decode(
                &checkpoint.expect("kill lands past the header").encode(),
            )
            .expect("checkpoint round-trips");
            match stream_install(
                &mut device,
                &stream,
                resume_channel,
                mtu,
                Some(&restored),
                None,
            )
            .expect("resumed install")
            {
                StreamProgress::Complete(report) => report.resumes,
                StreamProgress::Killed { .. } => unreachable!("no kill on resume"),
            }
        }
        StreamProgress::Complete(_) => unreachable!("kill point is mid-stream"),
    };
    assert_eq!(
        device.image(),
        &offline[..],
        "resumed install differs from offline apply"
    );
    println!(
        "\nkill/resume on dialup @5%: killed after chunk {kill_at}/{total_chunks}, \
         {resumes} resume(s), byte-identical"
    );

    if let Some(path) = baseline_path {
        let breaches = gate(&path, wire_len, &cells);
        if breaches > 0 {
            eprintln!("\n{breaches} gate breach(es) against the baseline");
            std::process::exit(1);
        }
        return;
    }

    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"streaming_install\",\n");
    json.push_str("  \"command\": \"cargo run -p ipr-bench --release --bin streaming_install\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"image_bytes\": {bytes},\n"));
    json.push_str(&format!("  \"chunk_bytes\": {chunk},\n"));
    json.push_str(&format!("  \"mtu_bytes\": {mtu},\n"));
    json.push_str(&format!("  \"wire_len\": {wire_len},\n"));
    json.push_str(&format!("  \"buffer_bound\": {buffer_bound},\n"));
    json.push_str(&format!("  \"resume_kill_at\": {kill_at},\n"));
    json.push_str(&format!("  \"resumes\": {resumes},\n"));
    json.push_str("  \"cells\": [\n");
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"channel\": \"{}\", \"loss\": {}, \"ttfb_ns\": {}, \"total_ns\": {}, \
                 \"download_ns\": {}, \"retransmissions\": {}, \"chunks\": {}, \
                 \"commands\": {}, \"commands_pre_eof\": {}, \"buffered_high_water\": {}}}",
                c.channel,
                c.loss,
                c.ttfb_ns,
                c.total_ns,
                c.download_ns,
                c.retransmissions,
                c.chunks,
                c.commands,
                c.commands_pre_eof,
                c.buffered_high_water
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_streaming_install.json", &json).expect("write results");
    println!("wrote results/BENCH_streaming_install.json");
}

/// Gates the run against a stored report; returns the breach count.
/// Simulated times are exact functions of the payload and the channel
/// model, so every number here is gated exactly — any drift is a real
/// behavioural change in the differ, the codec or the channel.
fn gate(path: &str, wire_len: u64, cells: &[Cell]) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let baseline = ipr_trace::json::parse(&text)
        .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e}"));
    let mut breaches = 0;
    let mut check = |label: &str, ok: bool, detail: String| {
        let status = if ok {
            "ok"
        } else {
            breaches += 1;
            "REGRESSED"
        };
        println!("{label}: {detail} {status}");
    };
    println!("\nComparison against {path} (simulated times gate exactly)\n");

    // Hard gate: streaming must beat download-then-apply to the first
    // reconstructed byte on dialup — the channel the paper's "low
    // bandwidth" argument is about. Fast channels are informational.
    for cell in cells {
        let ratio = cell.ttfb_ns as f64 / cell.download_ns as f64;
        let label = format!("ttfb ratio {}@{:.0}%", cell.channel, cell.loss * 100.0);
        if cell.channel == "dialup" {
            check(
                &label,
                ratio < 1.0,
                format!("{ratio:.3} (hard, must be < 1)"),
            );
        } else {
            println!("{label}: {ratio:.3} (informational)");
        }
    }

    let field = |key: &str| -> u64 {
        baseline
            .get(key)
            .and_then(ipr_trace::json::Value::as_u64)
            .unwrap_or_else(|| panic!("baseline {path} has no {key} field"))
    };
    check(
        "wire_len",
        wire_len == field("wire_len"),
        format!("{wire_len} vs baseline {}", field("wire_len")),
    );

    let rows = baseline
        .get("cells")
        .and_then(ipr_trace::json::Value::as_array)
        .unwrap_or_else(|| panic!("baseline {path} has no cells array"));
    check(
        "cell count",
        rows.len() == cells.len(),
        format!("{} vs baseline {}", cells.len(), rows.len()),
    );
    for (cell, row) in cells.iter().zip(rows) {
        let want = |key: &str| -> u64 {
            row.get(key)
                .and_then(ipr_trace::json::Value::as_u64)
                .unwrap_or_else(|| panic!("baseline cell has no {key} field"))
        };
        let label = format!("{}@{:.0}%", cell.channel, cell.loss * 100.0);
        for (key, got) in [
            ("ttfb_ns", cell.ttfb_ns),
            ("total_ns", cell.total_ns),
            ("download_ns", cell.download_ns),
            ("retransmissions", cell.retransmissions),
            ("chunks", cell.chunks),
            ("commands", cell.commands),
        ] {
            check(
                &format!("{label} {key}"),
                got == want(key),
                format!("{got} vs baseline {}", want(key)),
            );
        }
    }
    breaches
}

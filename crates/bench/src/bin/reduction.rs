//! §5 NP-hardness — the reduction from feedback vertex set, executably.
//!
//! The paper proves minimum-cost cycle breaking NP-hard by encoding an
//! arbitrary digraph into a CRWI digraph, but omits the construction.
//! `ipr-workloads::reduction` supplies one (neck/router/port gadgets);
//! this binary demonstrates the correspondence: for a handful of input
//! digraphs, the exact minimum-cost vertex deletion of the *realized
//! delta file* selects precisely the necks of a minimum feedback vertex
//! set of the input digraph.
//!
//! Run: `cargo run -p ipr-bench --release --bin reduction`

use ipr_bench::Table;
use ipr_core::CrwiGraph;
use ipr_digraph::{fvs, Digraph, NodeId};
use ipr_workloads::reduction::realize_digraph;

type Case = (&'static str, usize, Vec<(NodeId, NodeId)>);

fn main() {
    println!("§5 NP-hardness: feedback vertex set embeds into CRWI digraphs\n");
    let cases: Vec<Case> = vec![
        ("3-cycle", 3, vec![(0, 1), (1, 2), (2, 0)]),
        (
            "two cycles sharing node 1",
            4,
            vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)],
        ),
        (
            "figure-8 through node 0",
            5,
            vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)],
        ),
        ("5-ring", 5, (0..5).map(|i| (i, (i + 1) % 5)).collect()),
        ("DAG (no cycles)", 4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]),
        ("self-loop + tail", 3, vec![(0, 0), (0, 1), (1, 2)]),
    ];

    let mut t = Table::new(vec![
        "input digraph",
        "G: min FVS",
        "realization: commands",
        "edges",
        "deleted necks",
        "match",
    ]);
    for (name, nodes, edges) in cases {
        let g = Digraph::from_edges(nodes, edges.iter().copied());
        let g_fvs =
            fvs::minimum_feedback_vertex_set(&g, &vec![1; nodes], 16).expect("small inputs");

        let realized = realize_digraph(&g, 1);
        let crwi = CrwiGraph::build(realized.script.copies());
        let costs: Vec<u64> = crwi.copies().iter().map(|c| c.len).collect();
        let set = fvs::minimum_feedback_vertex_set(crwi.graph(), &costs, 24)
            .expect("gadget components stay small");
        let mut deleted_nodes: Vec<NodeId> = set
            .iter()
            .filter_map(|&v| realized.node_of_write_offset(crwi.copies()[v as usize].to))
            .collect();
        deleted_nodes.sort_unstable();
        let only_necks = set.len() == deleted_nodes.len();

        // The deleted necks must form a minimum FVS of G (same size and
        // feasible; G's optimum need not be unique).
        let feasible = fvs::is_feedback_vertex_set(&g, &deleted_nodes);
        let matches = only_necks && feasible && deleted_nodes.len() == g_fvs.len();

        t.row(vec![
            name.into(),
            format!("{g_fvs:?}"),
            crwi.node_count().to_string(),
            crwi.edge_count().to_string(),
            format!("{deleted_nodes:?}"),
            if matches {
                "ok".into()
            } else {
                "MISMATCH".to_string()
            },
        ]);
        assert!(matches, "{name}: reduction correspondence failed");
    }
    t.print();
    println!(
        "\nMinimum-cost cycle breaking on the realized delta solves feedback\n\
         vertex set on the input digraph — the §5 NP-hardness reduction."
    );
}

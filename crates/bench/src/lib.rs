//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §4 for the index).
//!
//! Each experiment is a binary under `src/bin/`:
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `table1`   | Table 1 — compression of the four algorithm columns |
//! | `timing`   | §7 — conversion time vs differencing time |
//! | `figure1`  | Fig. 1 — delta encoding illustration |
//! | `figure2`  | Fig. 2 — tree digraph defeating the locally-minimum policy |
//! | `figure3`  | Fig. 3 — quadratic CRWI edge counts |
//! | `lemma1`   | Lemma 1 — edges ≤ L_V over every workload |
//! | `transfer` | §2/§7 — compression factors and transfer-time speedups |
//! | `ablation` | §5/§7 — policy optimality gap, codec redesign, buffer sizes |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ipr_workloads::corpus::{CorpusSpec, FilePair};
use std::time::{Duration, Instant};

/// The corpus every experiment binary uses: 200 synthetic pairs,
/// 4 KiB – 512 KiB.
///
/// Override the pair count with `IPR_BENCH_PAIRS` and the maximum size
/// with `IPR_BENCH_MAX_LEN` (bytes) to trade fidelity for speed — or
/// point `IPR_CORPUS_OLD` and `IPR_CORPUS_NEW` at two directory trees of
/// the same software (old and new release) to run every experiment on
/// real data, as the paper did with GNU/BSD distributions.
#[must_use]
pub fn experiment_corpus() -> Vec<FilePair> {
    if let (Ok(old), Ok(new)) = (
        std::env::var("IPR_CORPUS_OLD"),
        std::env::var("IPR_CORPUS_NEW"),
    ) {
        let pairs = ipr_workloads::corpus::from_dirs(old.as_ref(), new.as_ref())
            .expect("IPR_CORPUS_OLD/IPR_CORPUS_NEW must be readable directory trees");
        assert!(
            !pairs.is_empty(),
            "real corpus directories share no file paths"
        );
        return pairs;
    }
    let pairs = std::env::var("IPR_BENCH_PAIRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let max_len = std::env::var("IPR_BENCH_MAX_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(512 * 1024);
    CorpusSpec {
        pairs,
        min_len: 4 * 1024,
        max_len,
        ..CorpusSpec::default()
    }
    .build()
}

/// Times a closure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count with thousands separators.
#[must_use]
pub fn bytes(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A minimal fixed-width table printer for experiment output.
///
/// # Example
///
/// ```
/// use ipr_bench::Table;
///
/// let mut t = Table::new(vec!["metric", "value"]);
/// t.row(vec!["compression".into(), "15.3%".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("compression"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.153), "15.3%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn bytes_formats_thousands() {
        assert_eq!(bytes(0), "0");
        assert_eq!(bytes(999), "999");
        assert_eq!(bytes(1000), "1,000");
        assert_eq!(bytes(1234567), "1,234,567");
    }

    #[test]
    fn table_aligns() {
        let mut t = Table::new(vec!["a", "metric"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn corpus_env_overrides() {
        // Just exercise the default path (env vars unset in tests).
        std::env::remove_var("IPR_BENCH_PAIRS");
        // Not building the full 200-pair corpus in a unit test: only check
        // the spec plumbing via a tiny override.
        std::env::set_var("IPR_BENCH_PAIRS", "2");
        std::env::set_var("IPR_BENCH_MAX_LEN", "8192");
        let corpus = experiment_corpus();
        assert_eq!(corpus.len(), 2);
        std::env::remove_var("IPR_BENCH_PAIRS");
        std::env::remove_var("IPR_BENCH_MAX_LEN");
    }
}

//! Pipeline observability for the in-place reconstruction toolkit.
//!
//! Every phase of the diff → encode → convert → schedule → apply pipeline
//! reports *where time goes* and *what happened* through this crate:
//!
//! * [`span`] — nestable RAII spans timed with the monotonic clock
//!   ([`std::time::Instant`]); nesting depth is tracked per thread so a
//!   recorder can reconstruct the tree.
//! * [`add`] / [`gauge`] — named monotonic counters and last-value gauges.
//! * [`observe`] — bounded power-of-two histograms (64 buckets, fixed
//!   memory regardless of sample count), used for per-wave latencies.
//!
//! Instrumentation is routed through a pluggable [`Recorder`] installed
//! per thread with [`install`]. When **no recorder is installed** — the
//! default — every entry point is a single thread-local check that
//! returns immediately: no clock is read, no allocation happens, nothing
//! is recorded. [`NoopRecorder`] exists for APIs that want to hand out a
//! recorder unconditionally; installing it costs one virtual call per
//! event with an empty body.
//!
//! The names passed to these functions are a **stable contract**
//! documented in `docs/OBSERVABILITY.md`; renaming one is a breaking
//! change for anything diffing stats across versions.
//!
//! [`StatsRecorder`] is the built-in aggregating recorder behind the
//! CLI's `--stats[=json]` flag and the bench per-phase breakdowns. It is
//! thread-safe: worker threads of the wave-parallel applier install a
//! clone of the same handle and their counters aggregate into one report.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ipr_trace::{install, StatsRecorder};
//!
//! let stats = Arc::new(StatsRecorder::new());
//! let guard = install(stats.clone());
//! {
//!     let _outer = ipr_trace::span("convert");
//!     let _inner = ipr_trace::span("convert.toposort");
//!     ipr_trace::add("convert.cycles_broken", 3);
//! }
//! drop(guard);
//!
//! let report = stats.report();
//! assert_eq!(report.counter("convert.cycles_broken"), Some(3));
//! assert_eq!(report.span("convert.toposort").unwrap().depth, 1);
//! assert!(report.to_json().contains("\"convert.cycles_broken\": 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod recorder;
mod stats;

pub use recorder::{NoopRecorder, Recorder};
pub use stats::{Histogram, HistogramEntry, SpanStat, StatsRecorder, StatsReport};

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static CURRENT: RefCell<Option<Arc<dyn Recorder>>> = const { RefCell::new(None) };
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Installs `recorder` as this thread's recorder, returning a guard that
/// restores the previous one (usually none) when dropped.
///
/// Instrumentation is per thread by design: the guard pattern lets tests
/// and CLI commands scope their collection precisely, and code that fans
/// out to worker threads re-installs a clone of the handle obtained from
/// [`installed`] inside each worker (see the wave-parallel applier).
pub fn install(recorder: Arc<dyn Recorder>) -> RecorderGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(recorder));
    // The new recorder never saw the spans currently on this thread's
    // stack, so its depth starts at zero; the guard restores the outer
    // stack's depth on drop.
    let prev_depth = DEPTH.with(|d| d.replace(0));
    RecorderGuard { prev, prev_depth }
}

/// A clone of this thread's installed recorder handle, if any.
///
/// Pass the clone into spawned threads and [`install`] it there so
/// cross-thread events aggregate into the same recorder.
#[must_use]
pub fn installed() -> Option<Arc<dyn Recorder>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether a recorder is installed on this thread.
///
/// Instrumentation sites with non-trivial argument computation (summing
/// payload bytes, formatting) should guard on this so the untraced path
/// stays free.
#[must_use]
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Runs `f` with the installed recorder, if any. The closure form keeps
/// multi-event call sites to a single thread-local lookup.
pub fn with(f: impl FnOnce(&dyn Recorder)) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow().as_deref() {
            f(r);
        }
    });
}

/// Restores the previously installed recorder on drop.
pub struct RecorderGuard {
    prev: Option<Arc<dyn Recorder>>,
    prev_depth: usize,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        DEPTH.with(|d| d.set(self.prev_depth));
    }
}

/// Starts a named span; the span ends (and its monotonic elapsed time is
/// reported) when the returned guard drops.
///
/// Spans nest: a span opened while another is live records a depth one
/// greater. With no recorder installed this is a thread-local check and
/// the clock is never read.
#[must_use = "a span measures until the guard is dropped"]
pub fn span(name: &'static str) -> Span {
    let timing = CURRENT.with(|c| {
        let borrow = c.borrow();
        let r = borrow.as_deref()?;
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        r.span_start(name, depth);
        Some((Instant::now(), depth))
    });
    Span { name, timing }
}

/// RAII guard for a live span; see [`span`].
pub struct Span {
    name: &'static str,
    /// `None` when no recorder was installed at creation — drop is free.
    timing: Option<(Instant, usize)>,
}

impl Span {
    /// The span's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, depth)) = self.timing {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            DEPTH.with(|d| d.set(depth));
            with(|r| r.span_end(self.name, depth, nanos));
        }
    }
}

/// Adds `delta` to the named monotonic counter.
pub fn add(name: &'static str, delta: u64) {
    with(|r| r.add(name, delta));
}

/// Sets the named gauge to `value` (last write wins).
pub fn gauge(name: &'static str, value: u64) {
    with(|r| r.gauge(name, value));
}

/// Records `value` into the named bounded histogram.
pub fn observe(name: &'static str, value: u64) {
    with(|r| r.observe(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Captures raw span events so tests can assert ordering and depth.
    #[derive(Default)]
    struct EventLog {
        events: Mutex<Vec<(String, &'static str, usize, u64)>>,
    }

    impl Recorder for EventLog {
        fn span_start(&self, name: &'static str, depth: usize) {
            self.events
                .lock()
                .unwrap()
                .push(("start".into(), name, depth, 0));
        }
        fn span_end(&self, name: &'static str, depth: usize, nanos: u64) {
            self.events
                .lock()
                .unwrap()
                .push(("end".into(), name, depth, nanos));
        }
    }

    #[test]
    fn no_recorder_is_inert() {
        assert!(!enabled());
        let s = span("anything");
        assert!(s.timing.is_none());
        drop(s);
        add("counter", 1);
        gauge("gauge", 2);
        observe("hist", 3);
    }

    #[test]
    fn spans_nest_with_increasing_depth() {
        let log = Arc::new(EventLog::default());
        let guard = install(log.clone());
        {
            let _a = span("outer");
            {
                let _b = span("inner");
                let _c = span("innermost");
            }
            let _d = span("sibling");
        }
        drop(guard);
        let events = log.events.lock().unwrap();
        let shape: Vec<(&str, &str, usize)> = events
            .iter()
            .map(|(kind, name, depth, _)| (kind.as_str(), *name, *depth))
            .collect();
        assert_eq!(
            shape,
            vec![
                ("start", "outer", 0),
                ("start", "inner", 1),
                ("start", "innermost", 2),
                ("end", "innermost", 2),
                ("end", "inner", 1),
                ("start", "sibling", 1),
                ("end", "sibling", 1),
                ("end", "outer", 0),
            ]
        );
    }

    #[test]
    fn span_timing_is_monotonic_and_contains_children() {
        let log = Arc::new(EventLog::default());
        let guard = install(log.clone());
        {
            let _outer = span("outer");
            let _inner = span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(guard);
        let events = log.events.lock().unwrap();
        let ns_of = |which: &str| {
            events
                .iter()
                .find(|(k, n, _, _)| k == "end" && *n == which)
                .map(|&(_, _, _, ns)| ns)
                .unwrap()
        };
        let (outer, inner) = (ns_of("outer"), ns_of("inner"));
        assert!(inner >= 2_000_000, "slept 2ms inside: {inner}ns");
        assert!(outer >= inner, "parent spans contain their children");
    }

    #[test]
    fn guard_restores_previous_recorder_and_depth() {
        let first = Arc::new(EventLog::default());
        let second = Arc::new(EventLog::default());
        let g1 = install(first.clone());
        let _outer = span("outer");
        {
            // Spans drop before the guard that scoped them (reverse
            // declaration order), as in real RAII use.
            let _g2 = install(second.clone());
            let _s = span("rescoped");
        }
        // Back on the first recorder at the right depth.
        let _inner = span("inner");
        drop(_inner);
        drop(_outer);
        drop(g1);
        assert!(!enabled());
        let second_events = second.events.lock().unwrap();
        // The rescoped recorder starts at depth 0, independent of the
        // outer stack.
        assert_eq!(second_events[0].2, 0);
        let first_events = first.events.lock().unwrap();
        assert!(first_events
            .iter()
            .any(|(k, n, d, _)| k == "start" && *n == "inner" && *d == 1));
    }
}

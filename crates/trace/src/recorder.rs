//! The pluggable sink every instrumentation event flows into.

/// A sink for instrumentation events.
///
/// All methods have empty default bodies, so a recorder implements only
/// what it cares about. Implementations must be thread-safe: the
/// wave-parallel applier installs one shared handle on every worker
/// thread, and counters from all of them must aggregate.
///
/// Event names are `&'static str` on purpose: the set of span, counter,
/// gauge and histogram names is a closed, documented contract (see
/// `docs/OBSERVABILITY.md`), not a dynamic namespace — this keeps the
/// no-op path allocation-free and makes reports diffable across runs.
pub trait Recorder: Send + Sync {
    /// A span named `name` opened at nesting `depth` (0 = outermost).
    fn span_start(&self, name: &'static str, depth: usize) {
        let _ = (name, depth);
    }

    /// The span closed after `nanos` nanoseconds of monotonic time.
    fn span_end(&self, name: &'static str, depth: usize, nanos: u64) {
        let _ = (name, depth, nanos);
    }

    /// `delta` added to the monotonic counter `name`.
    fn add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Gauge `name` set to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// `value` recorded into the bounded histogram `name`.
    fn observe(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }
}

/// A recorder that discards every event.
///
/// Useful when an API wants to hand out a `&dyn Recorder`
/// unconditionally. Code that merely wants tracing *off* should install
/// no recorder at all — that path never reads the clock, while an
/// installed `NoopRecorder` still times every span to report it nowhere.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_accepts_everything() {
        let r = NoopRecorder;
        r.span_start("s", 0);
        r.span_end("s", 0, 1);
        r.add("c", 1);
        r.gauge("g", 2);
        r.observe("h", 3);
    }
}

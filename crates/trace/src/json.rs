//! A minimal zero-dependency JSON reader/escaper.
//!
//! Exists so tests, benches and downstream tools can parse the
//! `ipr-stats/1` reports emitted by [`crate::StatsReport::to_json`]
//! without pulling in a serialization framework. It handles the full
//! JSON grammar but is tuned for trust-your-own-output use: numbers are
//! `f64`, and errors carry a byte offset rather than line/column.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys sorted (BTreeMap) for deterministic iteration.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, or `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Element `index` of an array, or `None` for other variants.
    #[must_use]
    pub fn index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object's map, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array's elements, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure at a byte offset of the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What was expected or found.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem,
/// including trailing non-whitespace after the document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Quotes and escapes `s` as a JSON string literal (including the
/// surrounding double quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; input is a &str so boundaries
                    // are valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let unit = self.hex4()?;
        // Surrogate pair handling for completeness.
        if (0xD800..0xDC00).contains(&unit) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(unit).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().index(0).unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("a")
                .unwrap()
                .index(2)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d").unwrap().as_object().unwrap().len(), 0);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""line\nquote\"tab\tslash\\u: A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("line\nquote\"tab\tslash\\u: A😀"));
    }

    #[test]
    fn escape_roundtrips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "new\nline\ttab",
            "ctrl\u{1}",
            "uni😀",
        ] {
            let quoted = escape(s);
            assert_eq!(parse(&quoted).unwrap().as_str(), Some(s), "for {quoted}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{1: 2}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = parse("[1, ?]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("\"1\"").unwrap().as_u64(), None);
    }
}

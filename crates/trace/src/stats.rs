//! The built-in aggregating recorder and its diffable report.

use crate::Recorder;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// Bucket count of a [`Histogram`]: bucket `i ≥ 1` counts values whose
/// bit length is `i` (i.e. `2^(i-1) <= v < 2^i`), bucket 0 counts zeros.
/// 65 buckets cover the whole `u64` range in fixed memory.
const HISTOGRAM_BUCKETS: usize = 65;

/// Aggregate of one span name: how often it ran and for how long.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Completions recorded.
    pub count: u64,
    /// Total monotonic nanoseconds across completions.
    pub total_ns: u64,
    /// Shortest completion.
    pub min_ns: u64,
    /// Longest completion.
    pub max_ns: u64,
    /// Smallest nesting depth observed (0 = ran as an outermost span).
    pub depth: usize,
}

impl SpanStat {
    fn record(&mut self, depth: usize, nanos: u64) {
        self.count += 1;
        self.total_ns += nanos;
        self.min_ns = self.min_ns.min(nanos);
        self.max_ns = self.max_ns.max(nanos);
        self.depth = self.depth.min(depth);
    }
}

/// A bounded power-of-two histogram: fixed memory however many samples
/// are recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending bound order. Bucket bounds are `0, 1, 3, 7, …, 2^k - 1`.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = match i {
                    0 => 0,
                    64 => u64::MAX,
                    i => (1u64 << i) - 1,
                };
                (bound, c)
            })
            .collect()
    }

    /// Mean sample value, zero when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// The built-in aggregating [`Recorder`]: accumulates span timings,
/// counters, gauges and histograms, all keyed by name, and snapshots
/// them into a [`StatsReport`].
///
/// Thread-safe via a single mutex; events are phase- or wave-grained in
/// this codebase, so contention is negligible. Maps are ordered
/// (`BTreeMap`) so reports — and their JSON — are deterministic and
/// diffable.
#[derive(Default)]
pub struct StatsRecorder {
    inner: Mutex<Inner>,
}

impl StatsRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots everything recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn report(&self) -> StatsReport {
        let inner = self.inner.lock().expect("stats lock poisoned");
        StatsReport {
            spans: inner
                .spans
                .iter()
                .map(|(&name, &stat)| (name.to_string(), stat))
                .collect(),
            counters: inner
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&name, h)| HistogramEntry {
                    name: name.to_string(),
                    histogram: h.clone(),
                })
                .collect(),
        }
    }
}

impl Recorder for StatsRecorder {
    fn span_end(&self, name: &'static str, depth: usize, nanos: u64) {
        let mut inner = self.inner.lock().expect("stats lock poisoned");
        inner
            .spans
            .entry(name)
            .or_insert(SpanStat {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
                depth: usize::MAX,
            })
            .record(depth, nanos);
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("stats lock poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("stats lock poisoned");
        inner.gauges.insert(name, value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("stats lock poisoned");
        inner.histograms.entry(name).or_default().record(value);
    }
}

/// A named histogram in a [`StatsReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramEntry {
    /// The histogram's name.
    pub name: String,
    /// The aggregated samples.
    pub histogram: Histogram,
}

/// A point-in-time snapshot of a [`StatsRecorder`], ready to print or
/// serialize. All collections are sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Per-span aggregates, `(name, stat)`.
    pub spans: Vec<(String, SpanStat)>,
    /// Counters, `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges, `(name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Histograms.
    pub histograms: Vec<HistogramEntry>,
}

/// Identifies the JSON layout emitted by [`StatsReport::to_json`];
/// bumped on any incompatible change.
pub const STATS_SCHEMA: &str = "ipr-stats/1";

impl StatsReport {
    /// The value of counter `name`, if recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if recorded.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The aggregate of span `name`, if it completed at least once.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The histogram `name`, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.histogram)
    }

    /// Serializes the report to the stable `ipr-stats/1` JSON layout:
    /// objects keyed by event name, keys in sorted order, two-space
    /// indentation — the same bytes for the same measurements, so checked
    /// in reports diff cleanly across PRs.
    #[must_use]
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{STATS_SCHEMA}\",\n"));

        out.push_str("  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"depth\": {}}}",
                escape(name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
                s.depth
            ));
        }
        out.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        for (key, pairs) in [("counters", &self.counters), ("gauges", &self.gauges)] {
            out.push_str(&format!("  \"{key}\": {{"));
            for (i, (name, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    {}: {}", escape(name), v));
            }
            out.push_str(if pairs.is_empty() { "},\n" } else { "\n  },\n" });
        }

        out.push_str("  \"histograms\": {");
        for (i, e) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = &e.histogram;
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(bound, count)| format!("[{bound}, {count}]"))
                .collect();
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"buckets\": [{}]}}",
                escape(&e.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(", ")
            ));
        }
        out.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push('}');
        out
    }
}

/// Human-readable per-phase report (the CLI's plain `--stats` output).
impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.spans.is_empty() {
            writeln!(f, "spans (count, total, min..max):")?;
            for (name, s) in &self.spans {
                writeln!(
                    f,
                    "  {:indent$}{name:<32} {:>6}  {:>12}  {}..{}",
                    "",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns),
                    indent = 2 * s.depth,
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<40} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, v) in &self.gauges {
                writeln!(f, "  {name:<40} {v}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms (count, mean, min..max):")?;
            for e in &self.histograms {
                let h = &e.histogram;
                writeln!(
                    f,
                    "  {:<40} {:>6}  {:>12}  {}..{}",
                    e.name,
                    h.count,
                    fmt_ns(h.mean()),
                    fmt_ns(h.min),
                    fmt_ns(h.max)
                )?;
            }
        }
        Ok(())
    }
}

/// Formats nanoseconds with a readable unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, span};
    use std::sync::Arc;

    #[test]
    fn counters_aggregate_across_threads() {
        let stats = Arc::new(StatsRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stats = Arc::clone(&stats);
                s.spawn(move || {
                    let _g = install(stats);
                    for _ in 0..1000 {
                        crate::add("work.items", 1);
                    }
                    crate::add("work.bytes", 250);
                });
            }
        });
        let report = stats.report();
        assert_eq!(report.counter("work.items"), Some(4000));
        assert_eq!(report.counter("work.bytes"), Some(1000));
    }

    #[test]
    fn span_stats_track_min_max_depth() {
        let stats = Arc::new(StatsRecorder::new());
        let g = install(stats.clone());
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("leaf");
        }
        {
            // `leaf` also runs once as an outermost span: depth records
            // the smallest observed.
            let _top = span("leaf");
        }
        drop(g);
        let report = stats.report();
        let leaf = report.span("leaf").unwrap();
        assert_eq!(leaf.count, 4);
        assert_eq!(leaf.depth, 0);
        assert!(leaf.min_ns <= leaf.max_ns);
        assert!(leaf.total_ns >= leaf.max_ns);
        assert_eq!(report.span("outer").unwrap().depth, 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let stats = StatsRecorder::new();
        stats.gauge("threads", 2);
        stats.gauge("threads", 8);
        assert_eq!(stats.report().gauge("threads"), Some(8));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        let buckets = h.nonzero_buckets();
        // 0 → bound 0; 1 → bound 1; 2,3 → bound 3; 4 → bound 7;
        // 1000 → bound 1023; u64::MAX → top bucket.
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1), (u64::MAX, 1)]
        );
        // The sum saturates at u64::MAX rather than wrapping.
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.mean(), u64::MAX / 7);
    }

    #[test]
    fn json_is_stable_and_parses() {
        let stats = StatsRecorder::new();
        stats.add("b.counter", 2);
        stats.add("a.counter", 1);
        stats.span_end("phase", 0, 1234);
        stats.observe("lat", 100);
        let report = stats.report();
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "serialization is deterministic");
        // Counters are name-sorted regardless of insertion order.
        assert!(json.find("a.counter").unwrap() < json.find("b.counter").unwrap());

        let v = crate::json::parse(&json).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(STATS_SCHEMA));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("a.counter")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            v.get("spans")
                .unwrap()
                .get("phase")
                .unwrap()
                .get("total_ns")
                .unwrap()
                .as_u64(),
            Some(1234)
        );
    }

    #[test]
    fn empty_report_serializes() {
        let report = StatsRecorder::new().report();
        let v = crate::json::parse(&report.to_json()).unwrap();
        assert!(v.get("spans").is_some());
        assert_eq!(format!("{report}"), "");
    }

    #[test]
    fn display_mentions_every_section() {
        let stats = StatsRecorder::new();
        stats.span_end("phase", 1, 2_500_000);
        stats.add("c", 1);
        stats.gauge("g", 2);
        stats.observe("h", 3);
        let text = format!("{}", stats.report());
        for needle in ["spans", "counters", "gauges", "histograms", "2.50ms"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}

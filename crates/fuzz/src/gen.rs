//! Deterministic structured generators.
//!
//! Everything here derives from a single `u64` seed through the vendored
//! [`rand`] crate, whose byte streams are stable across releases of this
//! workspace — a case seed printed by a failing fuzz run today rebuilds
//! the identical input forever.
//!
//! Two input species are produced:
//!
//! * [`case`] — a *valid* [`DeltaScript`] plus its reference file, for the
//!   round-trip and conversion-equivalence oracles. Scripts are built by
//!   tiling the target interval with copy/add commands (so the §3
//!   invariants hold by construction) and then shuffling the command
//!   order, which is exactly the population the conversion algorithm must
//!   handle: arbitrary semantics, arbitrary order.
//! * [`hostile_bytes`] — byte strings aimed at the decoders: pure noise,
//!   bit-flipped valid deltas, truncations, and crafted headers whose
//!   declared command counts or add lengths vastly exceed the input size.

use ipr_delta::{Command, DeltaScript};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// One generated conversion workload: a reference file and a valid delta
/// script against it.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The reference (old) file.
    pub reference: Vec<u8>,
    /// A valid script with `source_len == reference.len()`.
    pub script: DeltaScript,
}

/// Derives the per-iteration case seed from a master seed.
///
/// Iteration `i` of a run seeded with `master` uses case seed
/// `master + i` (wrapping), so a failure at iteration `i` is reproduced
/// *byte-identically* by a fresh run with `--seed master+i --iters 1`.
#[must_use]
pub fn case_seed(master: u64, iteration: u64) -> u64 {
    master.wrapping_add(iteration)
}

/// The deterministic generator state for one case seed.
#[must_use]
pub fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generates one valid case.
///
/// Sizes are kept small (≤ ~4 KiB) so a 10k-iteration run stays fast;
/// the space of *shapes* (growing/shrinking files, empty files, dense
/// self-referential copies, long literal runs) is what matters for the
/// oracles, not raw scale.
pub fn case(rng: &mut StdRng) -> FuzzCase {
    let source_len: u64 = match rng.random_range(0u32..10) {
        0 => 0,
        1 => rng.random_range(1u64..16),
        2..=4 => rng.random_range(1u64..256),
        _ => rng.random_range(1u64..4096),
    };
    let target_len: u64 = match rng.random_range(0u32..12) {
        0 => 0,
        1 => rng.random_range(1u64..16),
        // Shrinking and growing revisions.
        2 => rng.random_range(1u64..=source_len / 2 + 1),
        3 => rng.random_range(source_len + 1..source_len + 2048),
        _ => rng.random_range(1u64..4096),
    };

    let reference = reference_bytes(rng, source_len as usize);
    let commands = tile_commands(rng, source_len, target_len);
    let commands = maybe_shuffle(rng, commands);
    let script = DeltaScript::new(source_len, target_len, commands)
        .expect("generator tiles the target exactly");
    FuzzCase { reference, script }
}

/// Reference content: random, low-entropy, or patterned — differencing
/// behaviour is irrelevant here, but converted adds materialize reference
/// bytes, so content must vary enough to catch wrong-offset bugs.
fn reference_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    match rng.random_range(0u32..3) {
        0 => {
            let mut v = vec![0u8; len];
            rng.fill_bytes(&mut v);
            v
        }
        1 => {
            let b: u8 = rng.random();
            vec![b; len]
        }
        _ => (0..len).map(|i| (i % 251) as u8).collect(),
    }
}

/// Tiles `[0, target_len)` with copy and add commands in write order.
///
/// Copy sources are biased toward the command's own write offset: reads
/// near writes are what cross intervals and breed CRWI edges and cycles,
/// the regime the paper's Figures 2 and 3 construct by hand.
fn tile_commands(rng: &mut StdRng, source_len: u64, target_len: u64) -> Vec<Command> {
    let mut commands = Vec::new();
    let mut pos = 0u64;
    // Occasionally tile with one command per block of fixed stride: a
    // rotation by a block, the canonical cycle factory.
    let rotation = source_len >= 64 && source_len == target_len && rng.random_bool(0.15);
    if rotation {
        let block = rng.random_range(8u64..=source_len / 4);
        let shift = rng.random_range(1u64..=source_len - block.min(source_len - 1));
        while pos < target_len {
            let len = block.min(target_len - pos);
            let from = (pos + shift) % (source_len - len + 1);
            commands.push(Command::copy(from, pos, len));
            pos += len;
        }
        return commands;
    }
    while pos < target_len {
        let remaining = target_len - pos;
        let len = rng.random_range(1u64..=remaining.min(512));
        let copy_possible = source_len >= len;
        if copy_possible && rng.random_bool(0.65) {
            let max_from = source_len - len;
            let from = if max_from > 0 && rng.random_bool(0.6) {
                // Bias reads near the write offset (± a small jitter).
                let jitter = rng.random_range(0u64..=64.min(max_from));
                let near = pos.min(max_from);
                if rng.random_bool(0.5) {
                    near.saturating_sub(jitter)
                } else {
                    (near + jitter).min(max_from)
                }
            } else if max_from > 0 {
                rng.random_range(0u64..=max_from)
            } else {
                0
            };
            commands.push(Command::copy(from, pos, len));
        } else {
            let mut data = vec![0u8; len as usize];
            rng.fill_bytes(&mut data);
            commands.push(Command::add(pos, data));
        }
        pos += len;
    }
    commands
}

/// Shuffles the command order most of the time; the rest stay in write
/// order so the offset-free codecs get exercised on their happy path.
fn maybe_shuffle(rng: &mut StdRng, mut commands: Vec<Command>) -> Vec<Command> {
    if commands.len() < 2 || rng.random_bool(0.25) {
        return commands;
    }
    // Fisher–Yates with the vendored generator.
    for i in (1..commands.len()).rev() {
        let j = rng.random_range(0usize..=i);
        commands.swap(i, j);
    }
    commands
}

/// A random permutation of `0..n` (used by the CRWI differential oracle
/// to test orders that are *not* produced by the converter).
pub fn permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0usize..=i);
        order.swap(i, j);
    }
    order
}

/// Generates one hostile byte string for the decoder-robustness oracle.
pub fn hostile_bytes(rng: &mut StdRng) -> Vec<u8> {
    match rng.random_range(0u32..6) {
        // Pure noise, any length.
        0 => {
            let len = rng.random_range(0usize..512);
            let mut v = vec![0u8; len];
            rng.fill_bytes(&mut v);
            v
        }
        // A valid delta with random byte flips.
        1 => {
            let mut wire = valid_wire(rng);
            let flips = rng.random_range(1usize..8);
            for _ in 0..flips {
                if wire.is_empty() {
                    break;
                }
                let i = rng.random_range(0usize..wire.len());
                wire[i] ^= 1 << rng.random_range(0u32..8);
            }
            wire
        }
        // A valid delta truncated at a random point.
        2 => {
            let wire = valid_wire(rng);
            let cut = rng.random_range(0usize..=wire.len());
            wire[..cut].to_vec()
        }
        // A valid delta with trailing garbage.
        3 => {
            let mut wire = valid_wire(rng);
            let extra = rng.random_range(1usize..32);
            for _ in 0..extra {
                wire.push(rng.random());
            }
            wire
        }
        // A well-formed header declaring an enormous command count over a
        // tiny payload: must yield a typed error, never an OOM-sized
        // reservation.
        4 => {
            let mut wire = ipr_delta::codec::MAGIC.to_vec();
            wire.push(rng.random_range(0u8..5)); // valid format byte
            wire.push(0); // no CRC flag
            push_varint(rng.random_range(0u64..1 << 40), &mut wire); // source_len
            push_varint(rng.random_range(0u64..1 << 40), &mut wire); // target_len
            push_varint(rng.random_range(1u64 << 30..1 << 60), &mut wire); // count
            for _ in 0..rng.random_range(0usize..16) {
                wire.push(rng.random());
            }
            wire
        }
        // An add command declaring a length far past the end of input.
        _ => {
            let mut wire = ipr_delta::codec::MAGIC.to_vec();
            wire.push(1); // Format::InPlace
            wire.push(0);
            push_varint(8, &mut wire); // source_len
            push_varint(1 << 40, &mut wire); // target_len
            push_varint(1, &mut wire); // one command
            wire.push(0x01); // TAG_ADD
            push_varint(0, &mut wire); // to
            push_varint(rng.random_range(1u64 << 30..1 << 50), &mut wire); // len
            wire.push(rng.random()); // a single data byte
            wire
        }
    }
}

/// Encodes a small valid case in a random format.
fn valid_wire(rng: &mut StdRng) -> Vec<u8> {
    use ipr_delta::codec::{encode, encode_checked, Format};
    let case = case(rng);
    let script = if rng.random_bool(0.5) {
        case.script
    } else {
        case.script.into_write_ordered()
    };
    let format = Format::ALL[rng.random_range(0usize..Format::ALL.len())];
    let script = if format.supports_out_of_order() || script.is_write_ordered() {
        script
    } else {
        script.into_write_ordered()
    };
    if rng.random_bool(0.3) {
        let target = ipr_delta::apply(&script, &case.reference).expect("valid case applies");
        encode_checked(&script, format, &target).expect("generator offsets fit every format")
    } else {
        encode(&script, format).expect("generator offsets fit every format")
    }
}

fn push_varint(v: u64, out: &mut Vec<u8>) {
    ipr_delta::varint::encode(v, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed() {
        let a = case(&mut rng_for(1234));
        let b = case(&mut rng_for(1234));
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.script, b.script);
        let c = case(&mut rng_for(1235));
        assert!(c.script != a.script || c.reference != a.reference);
    }

    #[test]
    fn cases_are_valid_and_varied() {
        let mut shuffled = 0;
        let mut with_adds = 0;
        let mut with_copies = 0;
        for seed in 0..200u64 {
            let c = case(&mut rng_for(seed));
            assert_eq!(c.reference.len() as u64, c.script.source_len());
            // DeltaScript::new validated the tiling already; spot-check the
            // shape census.
            if !c.script.is_write_ordered() {
                shuffled += 1;
            }
            if c.script.add_count() > 0 {
                with_adds += 1;
            }
            if c.script.copy_count() > 0 {
                with_copies += 1;
            }
        }
        assert!(shuffled > 50, "shuffled only {shuffled}/200");
        assert!(with_adds > 50, "adds only in {with_adds}/200");
        assert!(with_copies > 100, "copies only in {with_copies}/200");
    }

    #[test]
    fn hostile_bytes_deterministic_and_varied() {
        let a = hostile_bytes(&mut rng_for(99));
        let b = hostile_bytes(&mut rng_for(99));
        assert_eq!(a, b);
        let lens: std::collections::HashSet<usize> = (0..50u64)
            .map(|s| hostile_bytes(&mut rng_for(s)).len())
            .collect();
        assert!(lens.len() > 10, "hostile inputs all the same length");
    }

    #[test]
    fn case_seed_is_reproducible_offset() {
        assert_eq!(case_seed(42, 0), 42);
        assert_eq!(case_seed(42, 7), 49);
        assert_eq!(case_seed(u64::MAX, 1), 0);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = rng_for(5);
        let p = permutation(&mut rng, 20);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}

//! A standalone Equation 2 validator.
//!
//! This is deliberately *independent* of `ipr-core`'s verifier and of the
//! `ipr-digraph` interval machinery: it replays an emitted command order
//! with its own bookkeeping and asserts directly that no command reads a
//! byte an earlier command wrote,
//!
//! ```text
//! ∀j:  [f_j, f_j + l_j) ∩ ⋃_{i<j} [t_i, t_i + l_i) = ∅
//! ```
//!
//! so a bug in the CRWI digraph, the topological sort, *and* the
//! production checker would still be caught here. The implementation is
//! the dumbest thing that is obviously correct: a sorted, merged list of
//! written half-open ranges, linear insertion, binary-search lookup.

use ipr_delta::{Command, DeltaScript};
use std::fmt;

/// Evidence that a command order violates Equation 2, as found by the
/// independent checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Eq2Violation {
    /// Index (application order) of the command whose read is clobbered.
    pub command: usize,
    /// Start of the read interval.
    pub read_start: u64,
    /// End (exclusive) of the read interval.
    pub read_end: u64,
    /// A previously written range intersecting the read.
    pub written: (u64, u64),
}

impl fmt::Display for Eq2Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "command {} reads [{}, {}) but [{}, {}) was already written",
            self.command, self.read_start, self.read_end, self.written.0, self.written.1
        )
    }
}

/// Disjoint, sorted, merged set of written half-open ranges.
#[derive(Clone, Debug, Default)]
struct WrittenRanges {
    /// Sorted by start; pairwise disjoint and non-adjacent after merging.
    ranges: Vec<(u64, u64)>,
}

impl WrittenRanges {
    /// First stored range intersecting `[start, end)`, if any.
    fn intersecting(&self, start: u64, end: u64) -> Option<(u64, u64)> {
        // partition_point: first stored range with r.start >= start; the
        // one before it may still straddle `start`.
        let i = self.ranges.partition_point(|r| r.0 < start);
        if i > 0 && self.ranges[i - 1].1 > start {
            return Some(self.ranges[i - 1]);
        }
        if i < self.ranges.len() && self.ranges[i].0 < end {
            return Some(self.ranges[i]);
        }
        None
    }

    /// Inserts `[start, end)`, merging neighbours.
    fn insert(&mut self, mut start: u64, mut end: u64) {
        let i = self.ranges.partition_point(|r| r.1 < start);
        let mut j = i;
        while j < self.ranges.len() && self.ranges[j].0 <= end {
            start = start.min(self.ranges[j].0);
            end = end.max(self.ranges[j].1);
            j += 1;
        }
        self.ranges.splice(i..j, [(start, end)]);
    }
}

/// Replays `script`'s command order and checks Equation 2 directly.
///
/// Returns the first violation, or `None` when the order is in-place
/// safe. A copy whose read overlaps *its own* write is fine (the §4.1
/// directional-copy rule handles it); the read is checked *before* the
/// command's write interval is recorded.
#[must_use]
pub fn eq2_violation(script: &DeltaScript) -> Option<Eq2Violation> {
    let mut written = WrittenRanges::default();
    for (index, cmd) in script.commands().iter().enumerate() {
        if let Command::Copy(c) = cmd {
            let (start, end) = (c.from, c.from + c.len);
            if let Some(hit) = written.intersecting(start, end) {
                return Some(Eq2Violation {
                    command: index,
                    read_start: start,
                    read_end: end,
                    written: hit,
                });
            }
        }
        written.insert(cmd.to(), cmd.to() + cmd.len());
    }
    None
}

/// Whether the script's command order satisfies Equation 2 per the
/// independent checker.
#[must_use]
pub fn is_eq2_safe(script: &DeltaScript) -> bool {
    eq2_violation(script).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_delta::Command;

    #[test]
    fn written_ranges_merge_and_query() {
        let mut w = WrittenRanges::default();
        w.insert(10, 20);
        w.insert(30, 40);
        assert_eq!(w.intersecting(0, 10), None);
        assert_eq!(w.intersecting(19, 30), Some((10, 20)));
        assert_eq!(w.intersecting(20, 30), None);
        w.insert(20, 30); // bridges the gap
        assert_eq!(w.ranges, vec![(10, 40)]);
        w.insert(0, 5);
        w.insert(5, 10); // adjacent: merges with both neighbours
        assert_eq!(w.ranges, vec![(0, 40)]);
        assert_eq!(w.intersecting(39, 100), Some((0, 40)));
        assert_eq!(w.intersecting(40, 100), None);
    }

    #[test]
    fn detects_clobbered_read() {
        let s =
            DeltaScript::new(16, 8, vec![Command::copy(8, 4, 4), Command::copy(4, 0, 4)]).unwrap();
        let v = eq2_violation(&s).expect("second command reads what the first wrote");
        assert_eq!(v.command, 1);
        assert_eq!((v.read_start, v.read_end), (4, 8));
        assert!(!v.to_string().is_empty());
        // The reverse order is safe.
        assert!(is_eq2_safe(&s.permuted(&[1, 0])));
    }

    #[test]
    fn self_overlap_is_safe() {
        let s = DeltaScript::new(16, 8, vec![Command::copy(4, 0, 8)]).unwrap();
        assert!(is_eq2_safe(&s));
    }

    #[test]
    fn add_clobbering_read_detected() {
        let s = DeltaScript::new(
            8,
            16,
            vec![Command::add(0, vec![9; 8]), Command::copy(0, 8, 8)],
        )
        .unwrap();
        assert!(!is_eq2_safe(&s));
        assert!(is_eq2_safe(&s.permuted(&[1, 0])));
    }

    #[test]
    fn agrees_with_production_checker_on_samples() {
        for seed in 0..300u64 {
            let mut rng = crate::gen::rng_for(seed);
            let case = crate::gen::case(&mut rng);
            let ours = is_eq2_safe(&case.script);
            let theirs = ipr_core::is_in_place_safe(&case.script);
            assert_eq!(ours, theirs, "seed {seed} disagrees");
        }
    }
}

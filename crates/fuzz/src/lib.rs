//! Deterministic differential fuzzing and conformance harness.
//!
//! The in-place guarantee (the paper's Equation 2: no command reads a
//! byte an earlier command wrote) is exactly the kind of invariant that
//! survives unit tests and dies on adversarial inputs. This crate
//! generates those inputs — structured delta scripts and hostile wire
//! bytes — from a single `u64` seed with the vendored [`rand`] crate,
//! and judges them with eight differential oracles:
//!
//! * **codec** ([`oracles::check_codec_case`] +
//!   [`oracles::check_decoder_robustness`]): every format round-trips
//!   bit-exactly and no byte string makes a decoder panic;
//! * **convert** ([`oracles::check_convert_case`]): scratch-space apply
//!   is ground truth, and conversion must reproduce it under both cycle
//!   policies across the serial, parallel, resumable (with simulated
//!   power cuts and torn writes) and spilled engines;
//! * **crwi** ([`oracles::check_crwi_case`]): a standalone Equation 2
//!   validator ([`check`]) that agrees with the production verifier on
//!   arbitrary command orders;
//! * **diff** ([`oracles::check_diff_case`]): the parallel diff engine
//!   produces scripts that apply correctly
//!   (`apply(diff(r, v), r) == v`) and are deterministic — identical
//!   commands for repeated runs and across thread counts — for every
//!   wrapped differ, over a seed-driven sweep of chunk sizes;
//! * **remote** ([`oracles::check_remote_case`]): the signature-based
//!   streaming generator — `apply(generate_delta(sign(r), v), r) == v`
//!   byte for byte, over a seed-driven sweep of fixed block sizes and
//!   CDC parameters, with the signature round-tripped through its wire
//!   encoding and the version streamed at hostile read granularities;
//! * **engine** ([`oracles::check_engine_case`]): the session-layer
//!   [`Engine`](ipr_pipeline::Engine) path — diff through its arenas,
//!   pooled conversion, checked encoding, wave-parallel apply — emits
//!   byte-identical commands, wire bytes and applied buffers to the
//!   legacy free-function pipeline, over a seed-driven sweep of cycle
//!   policies, thread counts and wire formats, and stays identical when
//!   the same engine (with its recycled arenas) runs the case again;
//! * **store** ([`oracles::check_store_case`]): the versioned object
//!   store — a drifting version history written into a throwaway
//!   on-disk store reads back byte-identically after every put, after
//!   compaction under a salt-chosen depth cap, and after a fresh
//!   reopen, with a full `fsck` sweep clean at every checkpoint;
//! * **streaming** ([`oracles::check_streaming_case`]): the resumable
//!   streaming install — over a salt-swept grid of chunk sizes, MTUs,
//!   loss rates and kill points, a killed-and-resumed install (with the
//!   checkpoint round-tripped through its wire encoding) reconstructs
//!   the same bytes as offline apply, and resuming the same checkpoint
//!   against two copies of the same mid-update flash is idempotent.
//!
//! Everything is reproducible: iteration `i` of a run seeded `s` uses
//! case seed `s + i`, printed with every failure, so
//! `ipr fuzz --oracle <o> --seed <s+i> --iters 1` rebuilds the failure
//! byte-identically. Failures are [shrunk](shrink) before reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod corpus;
pub mod gen;
pub mod oracles;
pub mod shrink;

use gen::FuzzCase;
use std::fmt;
use std::str::FromStr;

/// Seed-stream salt separating hostile-bytes inputs from structured
/// cases within one case seed.
const HOSTILE_SALT: u64 = 0x686f7374; // "host"

/// One of the eight differential oracles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Oracle {
    /// Codec round-trip + decoder robustness.
    Codec,
    /// Conversion equivalence across engines and policies.
    Convert,
    /// Independent Equation 2 checker vs the production verifier.
    Crwi,
    /// Parallel diff correctness and determinism across thread counts.
    Diff,
    /// Session-layer `Engine` path vs the legacy free-function pipeline.
    Engine,
    /// Signature-based streaming remote diff reconstructs byte-exactly.
    Remote,
    /// Versioned object store round-trips, compacts and fscks clean.
    Store,
    /// Killed-and-resumed streaming installs match offline apply.
    Streaming,
}

impl Oracle {
    /// All oracles, in reporting order.
    pub const ALL: [Oracle; 8] = [
        Oracle::Codec,
        Oracle::Convert,
        Oracle::Crwi,
        Oracle::Diff,
        Oracle::Engine,
        Oracle::Remote,
        Oracle::Store,
        Oracle::Streaming,
    ];

    /// The `ipr-trace` span name covering one iteration of this oracle
    /// (see docs/OBSERVABILITY.md).
    #[must_use]
    pub fn span_name(self) -> &'static str {
        match self {
            Oracle::Codec => "fuzz.codec",
            Oracle::Convert => "fuzz.convert",
            Oracle::Crwi => "fuzz.crwi",
            Oracle::Diff => "fuzz.diff",
            Oracle::Engine => "fuzz.engine",
            Oracle::Remote => "fuzz.remote",
            Oracle::Store => "fuzz.store",
            Oracle::Streaming => "fuzz.streaming",
        }
    }
}

impl fmt::Display for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Oracle::Codec => "codec",
            Oracle::Convert => "convert",
            Oracle::Crwi => "crwi",
            Oracle::Diff => "diff",
            Oracle::Engine => "engine",
            Oracle::Remote => "remote",
            Oracle::Store => "store",
            Oracle::Streaming => "streaming",
        })
    }
}

impl FromStr for Oracle {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "codec" => Ok(Oracle::Codec),
            "convert" => Ok(Oracle::Convert),
            "crwi" => Ok(Oracle::Crwi),
            "diff" => Ok(Oracle::Diff),
            "engine" => Ok(Oracle::Engine),
            "remote" => Ok(Oracle::Remote),
            "store" => Ok(Oracle::Store),
            "streaming" => Ok(Oracle::Streaming),
            other => Err(format!(
                "unknown oracle `{other}` (expected codec, convert, crwi, diff, engine, \
                 remote, store, streaming or all)"
            )),
        }
    }
}

/// Configuration for a fuzz run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Master seed; iteration `i` uses case seed `seed + i` (wrapping).
    pub seed: u64,
    /// Iterations to run (each iteration drives every selected oracle).
    pub iters: u64,
    /// Oracles to drive.
    pub oracles: Vec<Oracle>,
    /// Shrink failing inputs before reporting.
    pub shrink: bool,
    /// Stop after this many violations.
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            iters: 1000,
            oracles: Oracle::ALL.to_vec(),
            shrink: true,
            max_failures: 5,
        }
    }
}

/// One oracle violation, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The oracle that objected.
    pub oracle: Oracle,
    /// The case seed (not the master seed) of the failing iteration.
    pub seed: u64,
    /// The oracle's failure message.
    pub detail: String,
    /// Description of the shrunk input and its (possibly different)
    /// failure message, when shrinking was enabled and made progress.
    pub shrunk: Option<String>,
}

impl Violation {
    /// The command line that replays exactly this failure.
    #[must_use]
    pub fn repro(&self) -> String {
        format!(
            "ipr fuzz --oracle {} --seed {} --iters 1",
            self.oracle, self.seed
        )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] case seed {}: {}\n  repro: {}",
            self.oracle,
            self.seed,
            self.detail,
            self.repro()
        )?;
        if let Some(shrunk) = &self.shrunk {
            write!(f, "\n  shrunk: {shrunk}")?;
        }
        Ok(())
    }
}

/// Outcome of [`run`].
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Iterations completed (each drives every selected oracle).
    pub iters_run: u64,
    /// Violations found, at most `max_failures`.
    pub violations: Vec<Violation>,
}

impl FuzzReport {
    /// Whether the run found no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the configured oracles over `iters` consecutive case seeds.
///
/// Emits `fuzz.iters` / `fuzz.failures` counters and one
/// `fuzz.<oracle>` span per oracle iteration through [`ipr_trace`], so
/// `ipr fuzz --stats=json` reports where the budget went.
#[must_use]
pub fn run(config: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for iter in 0..config.iters {
        ipr_trace::add("fuzz.iters", 1);
        let seed = gen::case_seed(config.seed, iter);
        for &oracle in &config.oracles {
            let outcome = {
                let _span = ipr_trace::span(oracle.span_name());
                run_case(oracle, seed)
            };
            if let Err(detail) = outcome {
                ipr_trace::add("fuzz.failures", 1);
                let shrunk = config.shrink.then(|| shrink_failure(oracle, seed));
                report.violations.push(Violation {
                    oracle,
                    seed,
                    detail,
                    shrunk,
                });
                if report.violations.len() >= config.max_failures {
                    report.iters_run = iter + 1;
                    return report;
                }
            }
        }
        report.iters_run = iter + 1;
    }
    report
}

/// Runs one oracle on one case seed — the unit both [`run`] and the
/// corpus replayer are built from.
///
/// # Errors
///
/// The oracle's failure message.
pub fn run_case(oracle: Oracle, seed: u64) -> Result<(), String> {
    match oracle {
        Oracle::Codec => {
            oracles::check_codec_case(&case_for(seed))?;
            oracles::check_decoder_robustness(&hostile_for(seed))
                .map_err(|e| format!("hostile input: {e}"))
        }
        Oracle::Convert => oracles::check_convert_case(&case_for(seed), seed),
        Oracle::Crwi => oracles::check_crwi_case(&case_for(seed), seed),
        Oracle::Diff => oracles::check_diff_case(&case_for(seed), seed),
        Oracle::Engine => oracles::check_engine_case(&case_for(seed), seed),
        Oracle::Remote => oracles::check_remote_case(&case_for(seed), seed),
        Oracle::Store => oracles::check_store_case(&case_for(seed), seed),
        Oracle::Streaming => oracles::check_streaming_case(&case_for(seed), seed),
    }
}

/// Replays one corpus entry.
///
/// # Errors
///
/// The failing case seed (or hostile input) and oracle message.
pub fn run_corpus_entry(entry: &corpus::CorpusEntry) -> Result<(), String> {
    match entry {
        corpus::CorpusEntry::Seeded {
            oracle,
            seed,
            iters,
        } => {
            for i in 0..*iters {
                let s = gen::case_seed(*seed, i);
                run_case(*oracle, s).map_err(|e| format!("[{oracle}] case seed {s}: {e}"))?;
            }
            Ok(())
        }
        corpus::CorpusEntry::DecodeBytes(bytes) => oracles::check_decoder_robustness(bytes)
            .map_err(|e| format!("[codec] {} raw bytes: {e}", bytes.len())),
    }
}

/// The structured case for a case seed.
fn case_for(seed: u64) -> FuzzCase {
    gen::case(&mut gen::rng_for(seed))
}

/// The hostile decoder input for a case seed.
fn hostile_for(seed: u64) -> Vec<u8> {
    gen::hostile_bytes(&mut gen::rng_for(seed ^ HOSTILE_SALT))
}

/// Shrinks whichever input of `seed` fails `oracle` and renders it.
fn shrink_failure(oracle: Oracle, seed: u64) -> String {
    let _span = ipr_trace::span("fuzz.shrink");
    match oracle {
        Oracle::Codec => {
            let case = case_for(seed);
            if oracles::check_codec_case(&case).is_err() {
                let (small, detail) = shrink::shrink_case(&case, &oracles::check_codec_case);
                return format!("{} — {detail}", describe_case(&small));
            }
            let (small, detail) =
                shrink::shrink_bytes(&hostile_for(seed), &oracles::check_decoder_robustness);
            format!("{} — {detail}", describe_bytes(&small))
        }
        Oracle::Convert => {
            let check = move |c: &FuzzCase| oracles::check_convert_case(c, seed);
            let (small, detail) = shrink::shrink_case(&case_for(seed), &check);
            format!("{} — {detail}", describe_case(&small))
        }
        Oracle::Crwi => {
            let check = move |c: &FuzzCase| oracles::check_crwi_case(c, seed);
            let (small, detail) = shrink::shrink_case(&case_for(seed), &check);
            format!("{} — {detail}", describe_case(&small))
        }
        Oracle::Diff => {
            let check = move |c: &FuzzCase| oracles::check_diff_case(c, seed);
            let (small, detail) = shrink::shrink_case(&case_for(seed), &check);
            format!("{} — {detail}", describe_case(&small))
        }
        Oracle::Engine => {
            let check = move |c: &FuzzCase| oracles::check_engine_case(c, seed);
            let (small, detail) = shrink::shrink_case(&case_for(seed), &check);
            format!("{} — {detail}", describe_case(&small))
        }
        Oracle::Remote => {
            let check = move |c: &FuzzCase| oracles::check_remote_case(c, seed);
            let (small, detail) = shrink::shrink_case(&case_for(seed), &check);
            format!("{} — {detail}", describe_case(&small))
        }
        Oracle::Store => {
            let check = move |c: &FuzzCase| oracles::check_store_case(c, seed);
            let (small, detail) = shrink::shrink_case(&case_for(seed), &check);
            format!("{} — {detail}", describe_case(&small))
        }
        Oracle::Streaming => {
            let check = move |c: &FuzzCase| oracles::check_streaming_case(c, seed);
            let (small, detail) = shrink::shrink_case(&case_for(seed), &check);
            format!("{} — {detail}", describe_case(&small))
        }
    }
}

/// A compact, paste-into-a-test rendering of a case.
fn describe_case(case: &FuzzCase) -> String {
    const MAX_LISTED: usize = 16;
    let script = &case.script;
    let mut out = format!(
        "case: source_len={} target_len={} commands={}",
        script.source_len(),
        script.target_len(),
        script.len()
    );
    for cmd in script.commands().iter().take(MAX_LISTED) {
        match cmd {
            ipr_delta::Command::Copy(c) => {
                out.push_str(&format!(" copy({},{},{})", c.from, c.to, c.len));
            }
            ipr_delta::Command::Add(a) => {
                out.push_str(&format!(" add({},{}B)", a.to, a.data.len()));
            }
        }
    }
    if script.len() > MAX_LISTED {
        out.push_str(&format!(" … +{}", script.len() - MAX_LISTED));
    }
    out
}

/// Hex rendering of a (shrunk, so short) decoder input.
fn describe_bytes(bytes: &[u8]) -> String {
    const MAX_HEX: usize = 64;
    let hex: String = bytes
        .iter()
        .take(MAX_HEX)
        .map(|b| format!("{b:02x}"))
        .collect();
    if bytes.len() > MAX_HEX {
        format!("bytes[{}]: {hex}…", bytes.len())
    } else {
        format!("bytes[{}]: {hex}", bytes.len())
    }
}

/// Parses a seed argument: decimal or `0x`-prefixed hex.
///
/// # Errors
///
/// A human-readable message naming the bad input.
pub fn parse_seed(s: &str) -> Result<u64, String> {
    corpus::parse_u64(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_parses_and_displays() {
        for oracle in Oracle::ALL {
            assert_eq!(oracle.to_string().parse::<Oracle>().unwrap(), oracle);
        }
        assert!("all".parse::<Oracle>().is_err());
    }

    #[test]
    fn clean_run_over_all_oracles() {
        let report = run(&FuzzConfig {
            seed: 42,
            iters: 15,
            ..FuzzConfig::default()
        });
        assert_eq!(report.iters_run, 15);
        assert!(
            report.is_clean(),
            "violations: {:?}",
            report
                .violations
                .iter()
                .map(Violation::repro)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_case_matches_run_for_each_iteration() {
        // The repro contract: iteration i of a run seeded s is exactly
        // run_case(oracle, s + i).
        let master = 7u64;
        for i in 0..5u64 {
            let seed = gen::case_seed(master, i);
            for oracle in Oracle::ALL {
                assert!(run_case(oracle, seed).is_ok());
            }
        }
    }

    #[test]
    fn violation_report_carries_repro_line() {
        let v = Violation {
            oracle: Oracle::Convert,
            seed: 1234,
            detail: "it broke".to_string(),
            shrunk: Some("case: …".to_string()),
        };
        let text = v.to_string();
        assert!(text.contains("ipr fuzz --oracle convert --seed 1234 --iters 1"));
        assert!(text.contains("it broke"));
        assert!(text.contains("shrunk"));
    }

    #[test]
    fn parse_seed_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42").unwrap(), 42);
        assert_eq!(parse_seed("0x2a").unwrap(), 42);
        assert!(parse_seed("nope").is_err());
    }
}

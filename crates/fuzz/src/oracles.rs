//! The differential oracles.
//!
//! Each oracle is a *deterministic* predicate over a generated input —
//! no internal randomness — so a failing input found under one seed
//! fails identically when regenerated, and every shrinking candidate is
//! judged by exactly the same criterion.
//!
//! * [`check_codec_case`] — every codec round-trips a valid script
//!   bit-exactly (re-encoding the decoded script reproduces the wire
//!   bytes), semantically (applying the decoded script reproduces the
//!   version file), and through the streaming decoder.
//! * [`check_decoder_robustness`] — an arbitrary byte string fed to the
//!   decoders either parses or yields a typed [`DecodeError`]; panics
//!   are caught and reported as violations.
//! * [`check_convert_case`] — scratch-space application is the ground
//!   truth; conversion under every cycle policy must reproduce it via
//!   the serial, parallel, resumable (including a simulated mid-chunk
//!   power cut with a torn write), and spilled engines.
//! * [`check_crwi_case`] — the independent Equation 2 checker
//!   ([`crate::check`]) agrees with `ipr_core`'s verifier on random
//!   permutations, and safety implies in-place application correctness.
//! * [`check_diff_case`] — the parallel diff engine, wrapped around
//!   every differ family, produces scripts that apply back to the
//!   version file and are deterministic: repeated runs and *different
//!   thread counts* must emit identical command sequences.
//! * [`check_engine_case`] — the session-layer
//!   [`Engine`](ipr_pipeline::Engine) one-call path
//!   (diff through owned arenas → pooled conversion → checked encoding →
//!   wave-parallel apply) is byte-identical to the legacy free-function
//!   pipeline, including on the second run of the *same* engine, whose
//!   arenas now hold recycled storage from the first.
//! * [`check_remote_case`] — the signature-based streaming generator:
//!   `apply(generate_delta(sign(r), v), r) == v` byte for byte across a
//!   salt-swept set of fixed block sizes and CDC parameters, with the
//!   signature surviving its wire round-trip, the streaming signature
//!   builder agreeing with the in-memory one, and the generator's
//!   output invariant under hostile read granularities.
//! * [`check_store_case`] — the versioned object store: a drifting
//!   version history put into a throwaway on-disk store reads back
//!   byte-identically after every put, after compaction under a
//!   salt-chosen depth cap, and after a fresh reopen, with a full
//!   `fsck` sweep clean at every checkpoint.

use crate::check;
use crate::gen::FuzzCase;
use ipr_core::resumable::{resume_in_place_observed, Journal, Progress};
use ipr_core::spill::{convert_with_spill, SpillConfig};
use ipr_core::{
    apply_in_place, apply_in_place_parallel, check_in_place_safe, convert_to_in_place,
    required_capacity, ConversionConfig, CyclePolicy, ParallelConfig, ParallelSchedule, ReadMode,
};
use ipr_delta::codec::stream::StreamDecoder;
use ipr_delta::codec::{decode, encode, encode_checked, DecodeError, EncodeError, Format};
use ipr_delta::diff::{
    CorrectingDiffer, Differ, GreedyDiffer, IndexedDiffer, OnePassDiffer, ParallelDiffer,
};
use ipr_delta::remote::{
    generate_delta, generate_delta_bytes, generate_delta_scalar, CdcParams, Chunking, Signature,
};
use ipr_delta::{Command, DeltaScript};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Largest strongly-connected component the exhaustive policy is asked to
/// solve during fuzzing; cases with more copies skip that policy.
const EXHAUSTIVE_LIMIT: usize = 10;
const EXHAUSTIVE_MAX_COPIES: usize = 24;

/// Scratch budgets swept by the spill leg of the conversion oracle.
const SPILL_BUDGETS: [u64; 3] = [0, 13, 1 << 20];

type CheckResult = Result<(), String>;

fn fail(msg: String) -> CheckResult {
    Err(msg)
}

/// Scratch-space ground truth for a valid case.
fn scratch_apply(case: &FuzzCase) -> Result<Vec<u8>, String> {
    ipr_delta::apply(&case.script, &case.reference)
        .map_err(|e| format!("scratch apply rejected a generated case: {e}"))
}

/// A buffer holding the reference, padded to in-place capacity.
fn in_place_buf(case: &FuzzCase, script: &DeltaScript) -> Vec<u8> {
    let mut buf = case.reference.clone();
    buf.resize(required_capacity(script) as usize, 0);
    buf
}

// ---------------------------------------------------------------------------
// Oracle 1: codec round-trip
// ---------------------------------------------------------------------------

/// Checks the codec round-trip oracle on one valid case.
///
/// For each of the five formats: encode (write-ordering the script first
/// when the format demands it), decode, assert the decoded script is
/// semantically identical (same version file) and that *re-encoding it
/// reproduces the wire bytes bit-exactly* — this holds even for the paper
/// formats, whose fixed-width fields split long commands, because the
/// split is idempotent. The streaming decoder must agree with the batch
/// decoder on every wire, and a CRC-carrying wire must round-trip its
/// checksum.
pub fn check_codec_case(case: &FuzzCase) -> CheckResult {
    let expected = scratch_apply(case)?;
    for format in Format::ALL {
        let script = if format.supports_out_of_order() || case.script.is_write_ordered() {
            case.script.clone()
        } else {
            // The offset-free formats must reject out-of-order scripts
            // with the typed error, not scramble the output.
            match encode(&case.script, format) {
                Err(EncodeError::NotWriteOrdered) => {}
                other => {
                    return fail(format!(
                        "{format:?}: encoding a shuffled script gave {other:?}, \
                         expected Err(NotWriteOrdered)"
                    ));
                }
            }
            case.script.clone().into_write_ordered()
        };

        let wire = encode(&script, format)
            .map_err(|e| format!("{format:?}: encode rejected a valid script: {e}"))?;
        let decoded =
            decode(&wire).map_err(|e| format!("{format:?}: decode rejected own wire: {e}"))?;
        if decoded.format != format {
            return fail(format!(
                "{format:?}: decoded format tag is {:?}",
                decoded.format
            ));
        }
        if decoded.target_crc.is_some() {
            return fail(format!("{format:?}: CRC materialized from nowhere"));
        }
        if decoded.script.source_len() != script.source_len()
            || decoded.script.target_len() != script.target_len()
        {
            return fail(format!(
                "{format:?}: lengths changed in flight: {}→{} vs {}→{}",
                script.source_len(),
                script.target_len(),
                decoded.script.source_len(),
                decoded.script.target_len()
            ));
        }
        let applied = ipr_delta::apply(&decoded.script, &case.reference)
            .map_err(|e| format!("{format:?}: decoded script no longer applies: {e}"))?;
        if applied != expected {
            return fail(format!(
                "{format:?}: decoded script builds a different file"
            ));
        }
        let rewire = encode(&decoded.script, format)
            .map_err(|e| format!("{format:?}: re-encode of decoded script failed: {e}"))?;
        if rewire != wire {
            return fail(format!(
                "{format:?}: re-encode not bit-exact ({} vs {} bytes)",
                rewire.len(),
                wire.len()
            ));
        }
        // The varint formats have no width limits, so they must also
        // preserve the command sequence verbatim (paper formats may
        // split long commands).
        if matches!(format, Format::Ordered | Format::InPlace | Format::Improved)
            && decoded.script.commands() != script.commands()
        {
            return fail(format!("{format:?}: command sequence changed in flight"));
        }

        stream_matches_batch(&wire, &decoded.script, format)?;

        // CRC round-trip: the checksum must survive, and the whole
        // checked wire must be reproducible from what came out of it.
        let checked = encode_checked(&script, format, &expected)
            .map_err(|e| format!("{format:?}: encode_checked failed: {e}"))?;
        let cdec = decode(&checked)
            .map_err(|e| format!("{format:?}: decode of checked wire failed: {e}"))?;
        if cdec.target_crc.is_none() {
            return fail(format!("{format:?}: embedded CRC lost in decode"));
        }
        let rechecked = encode_checked(&cdec.script, format, &expected)
            .map_err(|e| format!("{format:?}: re-encode_checked failed: {e}"))?;
        if rechecked != checked {
            return fail(format!("{format:?}: checked wire not bit-exact"));
        }
    }
    Ok(())
}

/// Feeds `wire` to the streaming decoder in ragged chunks and asserts it
/// yields exactly the batch decoder's command sequence.
fn stream_matches_batch(wire: &[u8], batch: &DeltaScript, format: Format) -> CheckResult {
    // Deterministic ragged chunk sizes — small primes exercise every
    // partial-header and partial-command resume path.
    const CHUNKS: [usize; 6] = [1, 3, 7, 2, 13, 5];
    let mut dec = StreamDecoder::new();
    let mut commands: Vec<Command> = Vec::new();
    let mut pos = 0usize;
    let mut turn = 0usize;
    while pos < wire.len() {
        let n = CHUNKS[turn % CHUNKS.len()].min(wire.len() - pos);
        turn += 1;
        dec.push(&wire[pos..pos + n]);
        pos += n;
        loop {
            match dec.next_command() {
                Ok(Some(cmd)) => commands.push(cmd),
                Ok(None) => break,
                Err(e) => return fail(format!("{format:?}: stream decoder error mid-wire: {e}")),
            }
        }
    }
    if !dec.is_complete() {
        return fail(format!(
            "{format:?}: stream decoder incomplete after full wire"
        ));
    }
    let header = dec
        .finish()
        .map_err(|e| format!("{format:?}: stream finish rejected own wire: {e}"))?;
    if header.format != format
        || header.source_len != batch.source_len()
        || header.target_len != batch.target_len()
    {
        return fail(format!("{format:?}: stream header disagrees with batch"));
    }
    if commands != batch.commands() {
        return fail(format!(
            "{format:?}: stream decoded {} commands, batch {}, or contents differ",
            commands.len(),
            batch.commands().len()
        ));
    }
    Ok(())
}

/// Checks the decoder-robustness half of the codec oracle on one
/// arbitrary byte string.
///
/// Both decoders must return — never panic — and when the batch decoder
/// *accepts* the input, the result must behave like any other decoded
/// delta: re-encodable, and re-decodable to the same script.
pub fn check_decoder_robustness(bytes: &[u8]) -> CheckResult {
    let batch = catch_unwind(AssertUnwindSafe(|| decode(bytes)))
        .map_err(|_| "batch decoder panicked".to_string())?;

    let streamed = catch_unwind(AssertUnwindSafe(|| {
        let mut dec = StreamDecoder::new();
        dec.push(bytes);
        loop {
            match dec.next_command() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => return Err(e),
            }
        }
        dec.finish().map(|_header| ())
    }))
    .map_err(|_| "stream decoder panicked".to_string())?;

    match (&batch, &streamed) {
        (Ok(d), Err(e)) => {
            // The streaming decoder defers validation it cannot do
            // incrementally, but it must never be *stricter* than batch.
            return fail(format!(
                "stream decoder rejected ({e}) what batch accepted ({:?})",
                d.format
            ));
        }
        (Err(DecodeError::Truncated | DecodeError::Varint(_)), Ok(())) => {
            // Expected asymmetry: a truncated wire is `Ok(None)` (feed
            // more bytes) for the stream decoder unless finish() is
            // strict. finish() *is* called above, so this arm means
            // finish accepted a truncation — only legal when the header
            // never completed.
        }
        _ => {}
    }

    if let Ok(d) = batch {
        let rewire = encode(&d.script, d.format)
            .map_err(|e| format!("accepted hostile input re-encodes with error: {e}"))?;
        let again = decode(&rewire)
            .map_err(|e| format!("re-encoded accepted input no longer decodes: {e}"))?;
        if again.script != d.script {
            return fail("accepted hostile input is not decode-stable".to_string());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle 2: conversion equivalence
// ---------------------------------------------------------------------------

/// Checks the conversion-equivalence oracle on one valid case.
///
/// `salt` varies deterministic details (power-cut position, chunk size)
/// from case to case; pass the case seed.
pub fn check_convert_case(case: &FuzzCase, salt: u64) -> CheckResult {
    let expected = scratch_apply(case)?;

    let mut policies = vec![CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum];
    if case.script.copy_count() <= EXHAUSTIVE_MAX_COPIES {
        policies.push(CyclePolicy::Exhaustive {
            limit: EXHAUSTIVE_LIMIT,
        });
    }

    for policy in policies {
        let config = ConversionConfig::with_policy(policy);
        let outcome = match convert_to_in_place(&case.script, &case.reference, &config) {
            Ok(outcome) => outcome,
            // The exhaustive solver documents this refusal: an SCC larger
            // than its limit is not a violation, just out of its reach.
            Err(ipr_core::ConvertError::ComponentTooLarge(_))
                if matches!(policy, CyclePolicy::Exhaustive { .. }) =>
            {
                continue;
            }
            Err(e) => return fail(format!("{policy}: conversion failed: {e}")),
        };
        let script = &outcome.script;

        if let Err(v) = check_in_place_safe(script) {
            return fail(format!("{policy}: converted script unsafe (ipr-core): {v}"));
        }
        if let Some(v) = check::eq2_violation(script) {
            return fail(format!(
                "{policy}: converted script violates Eq. 2 per the independent checker: {v}"
            ));
        }

        // Serial engine.
        let mut buf = in_place_buf(case, script);
        apply_in_place(script, &mut buf).map_err(|e| format!("{policy}: serial apply: {e}"))?;
        if buf[..expected.len()] != expected[..] {
            return fail(format!("{policy}: serial in-place output differs"));
        }

        // Parallel engine, both read modes, forced fan-out.
        if ParallelSchedule::plan(script).is_none() {
            return fail(format!(
                "{policy}: wave planner rejected a script the verifier accepted"
            ));
        }
        for read_mode in [ReadMode::Snapshot, ReadMode::ZeroCopy] {
            let pconfig = ParallelConfig {
                threads: 2,
                read_mode,
                serial_wave_bytes: 0,
            };
            let mut buf = in_place_buf(case, script);
            apply_in_place_parallel(script, &mut buf, &pconfig)
                .map_err(|e| format!("{policy}/{read_mode:?}: parallel apply: {e}"))?;
            if buf[..expected.len()] != expected[..] {
                return fail(format!("{policy}/{read_mode:?}: parallel output differs"));
            }
        }

        check_resumable(case, script, &expected, salt).map_err(|e| format!("{policy}: {e}"))?;
        check_spilled(case, &config, &expected).map_err(|e| format!("{policy}: {e}"))?;
    }
    Ok(())
}

/// Resumable engine: clean multi-reboot replay, then a power cut in the
/// middle of a staged chunk with the target region corrupted (a torn
/// write), recovered via the journal's redo record.
fn check_resumable(
    case: &FuzzCase,
    script: &DeltaScript,
    expected: &[u8],
    salt: u64,
) -> CheckResult {
    let chunk_size = 1 + (salt % 61) as usize;
    let reboot_budget = 1 + (salt % 97);

    // Clean reboots: suspend every `reboot_budget` bytes.
    let mut buf = in_place_buf(case, script);
    let mut journal = Journal::new();
    let mut spins = 0u32;
    loop {
        let progress = resume_in_place_observed(
            script,
            &mut buf,
            &mut journal,
            chunk_size,
            reboot_budget,
            &mut |_| {},
        )
        .map_err(|e| format!("resumable apply: {e}"))?;
        if progress == Progress::Complete {
            break;
        }
        spins += 1;
        if spins > 4_000_000 {
            return fail("resumable apply failed to make progress".to_string());
        }
    }
    if buf[..expected.len()] != expected[..] {
        return fail("resumable (clean reboots) output differs".to_string());
    }

    // Torn-write power cut. First run to completion recording the
    // journal at every durable point; pick one with a staged chunk.
    let mut staged: Vec<Journal> = Vec::new();
    let mut buf = in_place_buf(case, script);
    let mut journal = Journal::new();
    resume_in_place_observed(
        script,
        &mut buf,
        &mut journal,
        chunk_size,
        u64::MAX,
        &mut |j| {
            if j.has_pending_chunk() {
                staged.push(j.clone());
            }
        },
    )
    .map_err(|e| format!("resumable observe run: {e}"))?;
    if staged.is_empty() {
        return Ok(()); // empty script: nothing to cut
    }
    let crash = staged[(salt % staged.len() as u64) as usize].clone();

    // Rebuild the buffer exactly as it stood when that chunk was staged:
    // all payload bytes before it were applied, and budgets cut at chunk
    // boundaries, so replaying with that byte budget lands on the same
    // durable state.
    let commands = script.commands();
    let bytes_before: u64 = commands[..crash.command_index()]
        .iter()
        .map(ipr_delta::Command::len)
        .sum::<u64>()
        + crash.bytes_done_in_command();
    let mut buf = in_place_buf(case, script);
    let mut replay = Journal::new();
    if bytes_before > 0 {
        resume_in_place_observed(
            script,
            &mut buf,
            &mut replay,
            chunk_size,
            bytes_before,
            &mut |_| {},
        )
        .map_err(|e| format!("resumable rebuild run: {e}"))?;
    }

    // Power fails mid-write: the staged chunk's target region holds
    // arbitrary garbage (worse than any real torn write). Recovery must
    // overwrite the whole region from the redo record.
    let (to, data) = crash.pending_chunk().expect("picked a staged snapshot");
    let torn = 1 + (salt as usize % data.len());
    for (i, b) in buf[to as usize..to as usize + torn].iter_mut().enumerate() {
        *b = 0xA5u8.wrapping_add(i as u8);
    }

    let mut journal = crash.clone();
    let progress = resume_in_place_observed(
        script,
        &mut buf,
        &mut journal,
        chunk_size,
        u64::MAX,
        &mut |_| {},
    )
    .map_err(|e| format!("resumable recovery: {e}"))?;
    if progress != Progress::Complete {
        return fail("resumable recovery suspended on an unbounded budget".to_string());
    }
    if buf[..expected.len()] != expected[..] {
        return fail(format!(
            "power cut at command {} + {} bytes not recovered: output differs",
            crash.command_index(),
            crash.bytes_done_in_command()
        ));
    }
    Ok(())
}

/// Spilled conversion across a sweep of scratch budgets.
fn check_spilled(case: &FuzzCase, config: &ConversionConfig, expected: &[u8]) -> CheckResult {
    for budget in SPILL_BUDGETS {
        let spill = SpillConfig {
            conversion: *config,
            scratch_budget: budget,
        };
        let out = convert_with_spill(&case.script, &case.reference, &spill)
            .map_err(|e| format!("spill(budget={budget}): conversion failed: {e}"))?;
        if out.scratch_used > budget {
            return fail(format!(
                "spill(budget={budget}): stashed {} bytes over budget",
                out.scratch_used
            ));
        }
        if !ipr_core::spill::is_spill_safe(&out.script, &out.stashed) {
            return fail(format!("spill(budget={budget}): output not spill-safe"));
        }
        let mut buf = in_place_buf(case, &out.script);
        ipr_core::spill::apply_in_place_spilled(&out.script, &out.stashed, &mut buf, budget)
            .map_err(|e| format!("spill(budget={budget}): apply: {e}"))?;
        if buf[..expected.len()] != expected[..] {
            return fail(format!("spill(budget={budget}): output differs"));
        }
        if budget == 0 && !out.stashed.is_empty() {
            return fail("spill(budget=0): stashed copies with zero scratch".to_string());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle 3: CRWI invariant checker
// ---------------------------------------------------------------------------

/// Number of random permutations tried per case.
const CRWI_TRIALS: usize = 8;

/// Checks the CRWI oracle on one valid case.
///
/// The independent Equation 2 checker must agree with `ipr_core`'s
/// verifier on random command orders, and whenever both call an order
/// safe, applying it in place must reproduce the scratch-space output —
/// Eq. 2 is not just an invariant, it is *the* condition under which
/// in-place application is correct.
pub fn check_crwi_case(case: &FuzzCase, salt: u64) -> CheckResult {
    let expected = scratch_apply(case)?;
    let mut rng = crate::gen::rng_for(salt ^ 0x43525749); // "CRWI"
    let n = case.script.len();

    let mut orders: Vec<DeltaScript> = vec![case.script.clone()];
    for _ in 0..CRWI_TRIALS {
        let perm = crate::gen::permutation(&mut rng, n);
        orders.push(case.script.permuted(&perm));
    }

    for (trial, script) in orders.iter().enumerate() {
        let ours = check::eq2_violation(script);
        let theirs = check_in_place_safe(script);
        match (&ours, &theirs) {
            (None, Err(v)) => {
                return fail(format!(
                    "trial {trial}: independent checker says safe, ipr-core says {v}"
                ));
            }
            (Some(v), Ok(())) => {
                return fail(format!(
                    "trial {trial}: ipr-core says safe, independent checker found {v}"
                ));
            }
            _ => {}
        }
        // The planner must accept exactly the safe orders.
        let planned = ParallelSchedule::plan(script).is_some();
        if planned != ours.is_none() {
            return fail(format!(
                "trial {trial}: wave planner {} an order the checkers call {}",
                if planned { "accepted" } else { "rejected" },
                if ours.is_none() { "safe" } else { "unsafe" },
            ));
        }
        if ours.is_none() {
            let mut buf = in_place_buf(case, script);
            apply_in_place(script, &mut buf)
                .map_err(|e| format!("trial {trial}: safe order failed to apply: {e}"))?;
            if buf[..expected.len()] != expected[..] {
                return fail(format!(
                    "trial {trial}: order passed Eq. 2 but in-place output differs"
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle 4: parallel diff correctness and determinism
// ---------------------------------------------------------------------------

/// Chunk sizes swept by the diff oracle; the salt picks one per case, so
/// consecutive seeds exercise single-byte chunks through chunks larger
/// than most generated files.
const DIFF_CHUNKS: [usize; 5] = [1, 3, 17, 64, 256];

/// Checks the parallel-diff oracle on one valid case.
///
/// The generated reference/version pair is diffed with [`ParallelDiffer`]
/// around each differ family at a salt-chosen chunk size and thread
/// count. Three properties must hold for each engine:
///
/// 1. **correctness** — the emitted script applies back to the version
///    file (`apply(diff(r, v), r) == v`);
/// 2. **determinism** — running the same configuration twice emits an
///    identical command sequence;
/// 3. **thread independence** — a different thread count emits the *same*
///    command sequence (chunk boundaries depend only on input length, so
///    output is invariant across thread counts, a stronger guarantee
///    than per-thread-count determinism).
pub fn check_diff_case(case: &FuzzCase, salt: u64) -> CheckResult {
    let version = scratch_apply(case)?;
    let chunk = DIFF_CHUNKS[(salt % DIFF_CHUNKS.len() as u64) as usize];
    let threads = 1 + (salt / DIFF_CHUNKS.len() as u64 % 4) as usize;

    check_diff_engine(GreedyDiffer::new(4), case, &version, chunk, threads)?;
    check_diff_engine(OnePassDiffer::new(4, 10), case, &version, chunk, threads)?;
    check_diff_engine(CorrectingDiffer::new(4, 10), case, &version, chunk, threads)
}

/// Runs the three diff-oracle properties for one wrapped differ.
fn check_diff_engine<D: IndexedDiffer + Clone>(
    inner: D,
    case: &FuzzCase,
    version: &[u8],
    chunk: usize,
    threads: usize,
) -> CheckResult {
    let differ = ParallelDiffer::new(inner.clone())
        .with_threads(threads)
        .with_chunk_bytes(chunk);
    let name = differ.name();
    let script = differ.diff(&case.reference, version);

    let applied = ipr_delta::apply(&script, &case.reference)
        .map_err(|e| format!("{name}(chunk={chunk},threads={threads}): apply failed: {e}"))?;
    if applied != version {
        return fail(format!(
            "{name}(chunk={chunk},threads={threads}): applied output differs from version"
        ));
    }

    let again = differ.diff(&case.reference, version);
    if again.commands() != script.commands() {
        return fail(format!(
            "{name}(chunk={chunk},threads={threads}): repeated run emitted different commands"
        ));
    }

    let other_threads = threads % 4 + 1;
    let cross = ParallelDiffer::new(inner)
        .with_threads(other_threads)
        .with_chunk_bytes(chunk)
        .diff(&case.reference, version);
    if cross.commands() != script.commands() {
        return fail(format!(
            "{name}(chunk={chunk}): {threads} and {other_threads} threads emitted \
             different commands"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle 5: engine session layer vs the legacy free-function pipeline
// ---------------------------------------------------------------------------

/// Wire formats the engine oracle sweeps (each must carry out-of-order
/// scripts, since conversion emits them).
const ENGINE_FORMATS: [Format; 3] = [Format::InPlace, Format::Improved, Format::PaperInPlace];

/// Checks the engine-equivalence oracle on one valid case.
///
/// The salt picks a cycle policy, thread count and wire format. An
/// [`Engine`](ipr_pipeline::Engine) configured with them must produce — twice in a row, so the
/// second run exercises recycled arenas — exactly the commands, wire
/// bytes and applied buffer of the legacy free-function pipeline
/// (`ParallelDiffer::diff` → [`convert_to_in_place`] →
/// [`encode_checked`] → [`apply_in_place_parallel`]).
pub fn check_engine_case(case: &FuzzCase, salt: u64) -> CheckResult {
    let version = scratch_apply(case)?;
    let policy = if salt.is_multiple_of(2) {
        CyclePolicy::ConstantTime
    } else {
        CyclePolicy::LocallyMinimum
    };
    let threads = 1 + (salt / 2 % 4) as usize;
    let format = ENGINE_FORMATS[(salt / 8 % ENGINE_FORMATS.len() as u64) as usize];

    let mut config = ipr_pipeline::EngineConfig::with_threads(threads);
    config.conversion = ConversionConfig {
        policy,
        cost_format: format,
    };
    config.format = format;
    let tag = format!("engine(policy={policy},threads={threads},format={format:?})");

    // The legacy path, from the same primitives the engine wraps.
    let differ = ParallelDiffer::new(GreedyDiffer::default()).with_threads(threads);
    let script = differ.diff(&case.reference, &version);
    let legacy = convert_to_in_place(&script, &case.reference, &config.conversion)
        .map_err(|e| format!("{tag}: legacy conversion failed: {e}"))?;
    let legacy_wire = encode_checked(&legacy.script, format, &version)
        .map_err(|e| format!("{tag}: legacy encode failed: {e}"))?;

    let mut engine = ipr_pipeline::Engine::with_config(config);
    for round in 0..2 {
        let delta = engine
            .update(&case.reference, &version)
            .map_err(|e| format!("{tag} round {round}: update failed: {e}"))?;
        if delta.script.commands() != legacy.script.commands() {
            return fail(format!(
                "{tag} round {round}: engine commands differ from the legacy pipeline"
            ));
        }
        if delta.payload != legacy_wire {
            return fail(format!(
                "{tag} round {round}: engine wire bytes differ ({} vs {} bytes)",
                delta.payload.len(),
                legacy_wire.len()
            ));
        }
        // Timings aside, the conversion measurements must agree too.
        let counters = |r: &ipr_core::ConversionReport| {
            (
                r.input_copies,
                r.input_adds,
                r.edges,
                r.cycles_broken,
                r.copies_converted,
                r.bytes_converted,
                r.conversion_cost,
            )
        };
        if counters(&delta.report) != counters(&legacy.report) {
            return fail(format!(
                "{tag} round {round}: conversion reports differ: {:?} vs {:?}",
                delta.report, legacy.report
            ));
        }
        let mut buf = in_place_buf(case, &delta.script);
        engine
            .apply_in_place(&delta.script, &mut buf)
            .map_err(|e| format!("{tag} round {round}: engine apply failed: {e}"))?;
        if buf[..version.len()] != version[..] {
            return fail(format!(
                "{tag} round {round}: engine-applied buffer differs from the version file"
            ));
        }
        engine.recycle(delta);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Oracle 6: remote signature-based streaming diff
// ---------------------------------------------------------------------------

/// Chunkings swept by the remote oracle. Fixed sizes run from
/// single-byte blocks (every window is a candidate) past most generated
/// files; the CDC entries include degenerate bounds (`min = 1`) the
/// stability guarantee does not cover — reconstruction must hold anyway.
const REMOTE_CHUNKINGS: [Chunking; 8] = [
    Chunking::Fixed(1),
    Chunking::Fixed(3),
    Chunking::Fixed(16),
    Chunking::Fixed(64),
    Chunking::Fixed(512),
    Chunking::Cdc(CdcParams {
        min: 1,
        avg: 8,
        max: 32,
    }),
    Chunking::Cdc(CdcParams {
        min: 16,
        avg: 64,
        max: 256,
    }),
    Chunking::Cdc(CdcParams {
        min: 64,
        avg: 256,
        max: 1024,
    }),
];

/// Read granularities the remote oracle streams the version at.
const REMOTE_TRICKLES: [usize; 4] = [1, 7, 64, 4096];

/// A reader that serves at most `step` bytes per `read` call, however
/// large the caller's buffer — the hostile end of what an arbitrary
/// `Read` implementation is allowed to do.
struct Trickle<'a> {
    data: &'a [u8],
    pos: usize,
    step: usize,
}

impl std::io::Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.step).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Checks the remote-diff oracle on one valid case.
///
/// The case's reference is signed with a salt-chosen chunking and the
/// (scratch-applied) version streamed against the signature at a
/// salt-chosen read granularity. Five properties must hold:
///
/// 1. **reconstruction** — the generated script applies back to the
///    version byte-identically, like any local diff;
/// 2. **wire round-trip** — `decode(encode(sig)) == sig`, and the
///    decoded signature drives the generator to the same commands;
/// 3. **streaming signature** — [`Signature::build_streaming`] over a
///    trickle reader equals [`Signature::build`] over the slice;
/// 4. **read-granularity independence** — the generator emits identical
///    commands whether the version arrives one byte or 4 KiB at a time;
/// 5. **consistency envelope** — matched + literal bytes in the script
///    cover the version exactly (no command is lost or duplicated),
///    enforced implicitly by 1 plus the codec's target-length check;
/// 6. **batched == scalar** — the batched weak-scan generator
///    ([`generate_delta`]) and its byte-at-a-time reference
///    ([`generate_delta_scalar`]) emit identical command streams.
pub fn check_remote_case(case: &FuzzCase, salt: u64) -> CheckResult {
    let version = scratch_apply(case)?;
    let chunking = REMOTE_CHUNKINGS[(salt % REMOTE_CHUNKINGS.len() as u64) as usize];
    let trickle = REMOTE_TRICKLES
        [(salt / REMOTE_CHUNKINGS.len() as u64 % REMOTE_TRICKLES.len() as u64) as usize];
    let tag = format!("remote(chunking={chunking},trickle={trickle})");

    let signature = Signature::build(&case.reference, chunking)
        .map_err(|e| format!("{tag}: signature build failed: {e}"))?;

    // Streaming build over a hostile reader must agree byte-for-byte.
    let streamed = Signature::build_streaming(
        Trickle {
            data: &case.reference,
            pos: 0,
            step: trickle,
        },
        chunking,
    )
    .map_err(|e| format!("{tag}: streaming signature build failed: {e}"))?;
    if streamed != signature {
        return fail(format!(
            "{tag}: streaming signature differs from the in-memory build"
        ));
    }

    // Wire round-trip.
    let decoded = Signature::decode(&signature.encode())
        .map_err(|e| format!("{tag}: signature wire round-trip failed: {e}"))?;
    if decoded != signature {
        return fail(format!(
            "{tag}: decoded signature differs from the original"
        ));
    }

    // Generate from the decoded signature over a trickle reader …
    let script = generate_delta(
        &decoded,
        Trickle {
            data: &version,
            pos: 0,
            step: trickle,
        },
    )
    .map_err(|e| format!("{tag}: generate_delta failed: {e}"))?;

    // … and it must reconstruct the version exactly.
    let rebuilt = ipr_delta::apply(&script, &case.reference)
        .map_err(|e| format!("{tag}: generated script failed to apply: {e}"))?;
    if rebuilt != version {
        return fail(format!(
            "{tag}: reconstruction differs from the version file \
             ({} vs {} bytes)",
            rebuilt.len(),
            version.len()
        ));
    }

    // Read granularity must not leak into the output.
    let whole = generate_delta_bytes(&signature, &version);
    if whole.commands() != script.commands() {
        return fail(format!(
            "{tag}: trickle-fed generator emitted different commands than \
             the whole-slice generator"
        ));
    }

    // The batched weak-scan kernel must be a pure speedup: the
    // byte-at-a-time scalar generator emits the identical command
    // stream on every input, batch-boundary straddles included.
    let scalar = generate_delta_scalar(&signature, &version[..])
        .map_err(|e| format!("{tag}: generate_delta_scalar failed: {e}"))?;
    if scalar.commands() != script.commands() {
        return fail(format!(
            "{tag}: batched generator emitted different commands than the \
             byte-at-a-time scalar generator"
        ));
    }
    Ok(())
}

/// Checks the object-store oracle on one valid case.
///
/// The case spawns a small drifting version history (the reference, the
/// scratch-applied version, then salt-driven mutations of it) written
/// into a throwaway on-disk store with a salt-chosen depth cap. The
/// in-memory history is ground truth; the store must agree with it at
/// every step:
///
/// 1. **round-trip** — after every `put`, `get` of *every* version so
///    far is byte-identical to the in-memory copy (reads through
///    `Engine::apply_chain` over the stored delta chain);
/// 2. **dedup** — re-putting an existing version is a no-op that
///    commits nothing;
/// 3. **fsck-clean** — after every mutation batch (all puts, then
///    compaction) a full `fsck` sweep reports zero findings;
/// 4. **compaction** — `compact` caps every chain at the depth bound
///    and changes no reconstructed byte;
/// 5. **persistence** — a fresh `open` of the directory reconstructs
///    the same bytes (nothing lived only in session state).
pub fn check_store_case(case: &FuzzCase, salt: u64) -> CheckResult {
    use rand::Rng;
    let version = scratch_apply(case)?;
    let depth_cap = 1 + (salt % 4) as u32;
    let tag = format!("store(depth_cap={depth_cap})");

    // Ground truth: reference, version, and two salt-driven drifts.
    let mut rng = crate::gen::rng_for(salt ^ 0x73746f7265); // "store"
    let mut history = vec![case.reference.clone(), version];
    for _ in 0..2 {
        let mut next = history.last().unwrap().clone();
        for _ in 0..rng.random_range(1u32..8) {
            if next.is_empty() || rng.random_range(0u32..4) == 0 {
                let extra = rng.random_range(1usize..64);
                next.extend((0..extra).map(|_| rng.random_range(0u32..256) as u8));
            } else {
                let at = rng.random_range(0usize..next.len());
                next[at] ^= 1 + rng.random_range(0u32..255) as u8;
            }
        }
        history.push(next);
    }
    history.dedup_by(|a, b| a == b); // identical neighbours would dedup in the store

    let dir = ipr_store::scratch_dir(&std::env::temp_dir(), "fuzz");
    let result = (|| -> CheckResult {
        let mut store = ipr_store::Store::init(&dir, depth_cap)
            .map_err(|e| format!("{tag}: init failed: {e}"))?;
        let mut oids = Vec::new();
        for (i, bytes) in history.iter().enumerate() {
            let out = store
                .put(bytes, None)
                .map_err(|e| format!("{tag}: put #{i} failed: {e}"))?;
            oids.push(out.oid);
            for (j, (oid, want)) in oids.iter().zip(&history).enumerate() {
                let got = store
                    .get(*oid)
                    .map_err(|e| format!("{tag}: get #{j} after put #{i} failed: {e}"))?;
                if &got != want {
                    return fail(format!(
                        "{tag}: version #{j} read back {} bytes, expected {}",
                        got.len(),
                        want.len()
                    ));
                }
            }
            let gen_before = store.manifest().gen;
            let replay = store
                .put(bytes, None)
                .map_err(|e| format!("{tag}: duplicate put #{i} failed: {e}"))?;
            if replay.created || store.manifest().gen != gen_before {
                return fail(format!("{tag}: duplicate put #{i} was not a no-op"));
            }
        }
        let report = ipr_store::fsck(&dir, false)
            .map_err(|e| format!("{tag}: fsck after puts failed: {e}"))?;
        if !report.is_clean() {
            return fail(format!(
                "{tag}: fsck after puts found {:?}",
                report.findings
            ));
        }
        let compact = store
            .compact()
            .map_err(|e| format!("{tag}: compact failed: {e}"))?;
        if compact.max_depth_after > depth_cap {
            return fail(format!(
                "{tag}: compaction left depth {} over the cap",
                compact.max_depth_after
            ));
        }
        drop(store);
        // A fresh session over the same directory must agree.
        let mut reopened =
            ipr_store::Store::open(&dir).map_err(|e| format!("{tag}: reopen failed: {e}"))?;
        for (j, (oid, want)) in oids.iter().zip(&history).enumerate() {
            let got = reopened
                .get(*oid)
                .map_err(|e| format!("{tag}: get #{j} after compaction failed: {e}"))?;
            if &got != want {
                return fail(format!(
                    "{tag}: version #{j} changed across compaction + reopen"
                ));
            }
        }
        let report = ipr_store::fsck(&dir, false)
            .map_err(|e| format!("{tag}: fsck after compaction failed: {e}"))?;
        if !report.is_clean() {
            return fail(format!(
                "{tag}: fsck after compaction found {:?}",
                report.findings
            ));
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Wire formats swept by the streaming-install oracle (in-place capable).
const STREAMING_FORMATS: [Format; 3] = [Format::InPlace, Format::Improved, Format::PaperInPlace];
/// Serving chunk sizes swept by the streaming-install oracle.
const STREAMING_CHUNKS: [usize; 5] = [1, 7, 64, 250, 1024];
/// Channel MTUs swept by the streaming-install oracle.
const STREAMING_MTUS: [usize; 3] = [16, 576, 1400];
/// Frame loss rates swept by the streaming-install oracle.
const STREAMING_LOSS: [f64; 4] = [0.0, 0.01, 0.05, 0.3];

/// Checks the resumable streaming-install oracle on one valid case.
///
/// Offline scratch apply of the engine-converted delta is ground truth.
/// Over a salt-chosen (format, chunk size, MTU, loss rate) point:
///
/// 1. **uninterrupted** — a streaming install over the lossy channel
///    reconstructs the offline bytes exactly, with its embedded CRC
///    verified;
/// 2. **kill + resume** — the install killed at a salt-chosen chunk
///    boundary and resumed from its checkpoint (round-tripped through
///    [`ipr_device::InstallCheckpoint::encode`]) converges to the same
///    bytes;
/// 3. **idempotent replay** — resuming the *same* checkpoint against
///    two copies of the same mid-update flash yields identical images
///    (the journal contract: replaying a checkpoint is harmless).
pub fn check_streaming_case(case: &FuzzCase, salt: u64) -> CheckResult {
    use ipr_device::{stream_install, Channel, Device, InstallCheckpoint, StreamProgress};

    let format = STREAMING_FORMATS[(salt % STREAMING_FORMATS.len() as u64) as usize];
    let chunk = STREAMING_CHUNKS[(salt / 3 % STREAMING_CHUNKS.len() as u64) as usize];
    let mtu = STREAMING_MTUS[(salt / 15 % STREAMING_MTUS.len() as u64) as usize];
    let loss = STREAMING_LOSS[(salt / 45 % STREAMING_LOSS.len() as u64) as usize];
    let tag = format!("streaming(format={format:?},chunk={chunk},mtu={mtu},loss={loss})");
    let channel = ipr_device::LossyChannel::new(Channel::dialup(), loss, salt);

    // Ground truth: the target the delta declares, applied offline.
    let version = scratch_apply(case)?;
    let mut config = ipr_pipeline::EngineConfig::with_threads(1);
    config.format = format;
    config.conversion.cost_format = format;
    let mut engine = ipr_pipeline::Engine::with_config(config);
    let stream = engine
        .stream_update(&case.reference, &version, chunk)
        .map_err(|e| format!("{tag}: stream_update failed: {e}"))?;
    let capacity = case.reference.len().max(version.len());

    let fresh_device = || -> Result<Device, String> {
        let mut device = Device::new(capacity);
        device
            .flash(&case.reference)
            .map_err(|e| format!("{tag}: flash failed: {e}"))?;
        Ok(device)
    };
    let check_image = |device: &Device, leg: &str| -> CheckResult {
        if device.image() != version {
            return fail(format!(
                "{tag}: {leg} image differs from offline apply ({} vs {} bytes)",
                device.image().len(),
                version.len()
            ));
        }
        Ok(())
    };

    // Leg 1: uninterrupted streaming install.
    let mut device = fresh_device()?;
    match stream_install(&mut device, &stream, channel, mtu, None, None)
        .map_err(|e| format!("{tag}: uninterrupted install failed: {e}"))?
    {
        StreamProgress::Complete(report) => {
            if !report.crc_verified {
                return fail(format!("{tag}: embedded CRC was not verified"));
            }
            if report.received_bytes != stream.wire_len() {
                return fail(format!(
                    "{tag}: received {} wire bytes, stream has {}",
                    report.received_bytes,
                    stream.wire_len()
                ));
            }
        }
        StreamProgress::Killed { .. } => {
            return fail(format!("{tag}: install killed without a kill request"));
        }
    }
    check_image(&device, "uninterrupted")?;

    // Leg 2: kill at a salt-chosen chunk boundary, then resume. The cut
    // may land before the header (tiny chunks): resuming is then a
    // restart from byte 0 — still expected to converge.
    let total_chunks = stream.wire_len().div_ceil(chunk as u64).max(1);
    let kill_at = 1 + salt / 180 % total_chunks;
    let mut device = fresh_device()?;
    let first = stream_install(&mut device, &stream, channel, mtu, None, Some(kill_at))
        .map_err(|e| format!("{tag}: killed install (kill_at={kill_at}) failed: {e}"))?;
    match first {
        StreamProgress::Complete(_) => {
            // The stream finished before the kill point (short streams).
            check_image(&device, "kill leg (completed early)")?;
        }
        StreamProgress::Killed { checkpoint, .. } => {
            let checkpoint = match checkpoint {
                Some(cp) => {
                    let encoded = cp.encode();
                    let decoded = InstallCheckpoint::decode(&encoded)
                        .map_err(|e| format!("{tag}: checkpoint wire round-trip failed: {e}"))?;
                    if decoded != cp {
                        return fail(format!("{tag}: checkpoint changed across round-trip"));
                    }
                    Some(decoded)
                }
                None => None, // killed before the header: restart fresh
            };
            // Leg 3: the same checkpoint replayed on two copies of the
            // same mid-update flash must converge identically.
            let mut replica = device.clone();
            for (leg, dev) in [("resume", &mut device), ("replay", &mut replica)] {
                let done = stream_install(dev, &stream, channel, mtu, checkpoint.as_ref(), None)
                    .map_err(|e| format!("{tag}: {leg} (kill_at={kill_at}) failed: {e}"))?;
                match done {
                    StreamProgress::Complete(report) => {
                        if checkpoint.is_some() && report.resumes != 1 {
                            return fail(format!(
                                "{tag}: {leg} reported {} resumes, expected 1",
                                report.resumes
                            ));
                        }
                    }
                    StreamProgress::Killed { .. } => {
                        return fail(format!("{tag}: {leg} killed without a kill request"));
                    }
                }
                check_image(dev, leg)?;
            }
            if device.image() != replica.image() {
                return fail(format!("{tag}: checkpoint replay diverged between devices"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{case, hostile_bytes, rng_for};

    #[test]
    fn codec_oracle_clean_on_seeds() {
        for seed in 0..40u64 {
            let c = case(&mut rng_for(seed));
            check_codec_case(&c).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn robustness_oracle_clean_on_seeds() {
        for seed in 0..80u64 {
            let bytes = hostile_bytes(&mut rng_for(seed));
            check_decoder_robustness(&bytes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn convert_oracle_clean_on_seeds() {
        for seed in 0..25u64 {
            let c = case(&mut rng_for(seed));
            check_convert_case(&c, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn crwi_oracle_clean_on_seeds() {
        for seed in 0..25u64 {
            let c = case(&mut rng_for(seed));
            check_crwi_case(&c, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn diff_oracle_clean_on_seeds() {
        for seed in 0..25u64 {
            let c = case(&mut rng_for(seed));
            check_diff_case(&c, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn engine_oracle_clean_on_seeds() {
        // 24 consecutive seeds cover every (policy, thread, format)
        // combination the salt sweep can pick.
        for seed in 0..24u64 {
            let c = case(&mut rng_for(seed));
            check_engine_case(&c, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn remote_oracle_clean_on_seeds() {
        // 32 consecutive seeds cover every (chunking, trickle) pair the
        // salt sweep can pick.
        for seed in 0..32u64 {
            let c = case(&mut rng_for(seed));
            check_remote_case(&c, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn store_oracle_clean_on_seeds() {
        // 8 consecutive seeds cover every depth cap (1..=4) the salt
        // sweep can pick, twice; each case does real disk I/O.
        for seed in 0..8u64 {
            let c = case(&mut rng_for(seed));
            check_store_case(&c, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn remote_oracle_catches_a_corrupted_signature() {
        // Tampering with one strong hash must surface as a violation
        // (the generator matches a block whose content changed).
        let mut hits = 0;
        for seed in 0..20u64 {
            let c = case(&mut rng_for(seed));
            let Ok(version) = ipr_delta::apply(&c.script, &c.reference) else {
                continue;
            };
            let chunking = Chunking::Fixed(16);
            let signature = Signature::build(&c.reference, chunking).unwrap();
            if signature.blocks().is_empty() || version.is_empty() {
                continue;
            }
            // Rebuild a signature whose first block lies about its
            // content: claim the weak/strong of the version's first
            // 16 bytes while the reference holds something else.
            let window = &version[..version.len().min(16)];
            if window.len() < 16 || c.reference.len() < 16 || c.reference[..16] == *window {
                continue;
            }
            let mut forged = c.reference.clone();
            forged[..16].copy_from_slice(window);
            let lying = Signature::build(&forged, chunking).unwrap();
            let script = generate_delta_bytes(&lying, &version);
            let rebuilt = ipr_delta::apply(&script, &c.reference).unwrap();
            if rebuilt != version {
                hits += 1;
            }
        }
        assert!(hits > 0, "no forged signature produced a detectable miss");
    }

    #[test]
    fn convert_oracle_catches_a_wrong_converter() {
        // A "converter" that forgets to reorder: the original shuffled
        // script usually violates Eq. 2 and the oracle must object.
        let mut hits = 0;
        for seed in 0..50u64 {
            let c = case(&mut rng_for(seed));
            if check_in_place_safe(&c.script).is_err() {
                hits += 1;
                assert!(
                    check::eq2_violation(&c.script).is_some(),
                    "seed {seed}: independent checker missed a violation"
                );
            }
        }
        assert!(hits > 5, "generator produced too few conflicting scripts");
    }
}

//! The regression corpus: tiny text files, one per remembered failure
//! (or interesting region of the input space), replayed by
//! `tests/fuzz_regression.rs` on every CI run.
//!
//! The format is deliberately line-oriented `key = value` so an entry
//! can be authored by hand straight from a fuzz failure report:
//!
//! ```text
//! # 2026-08-07: decoder over-reservation on huge declared count
//! oracle = codec
//! seed = 4301
//! iters = 1
//! ```
//!
//! or, for raw decoder inputs:
//!
//! ```text
//! decode-bytes = 49505201...
//! ```

use crate::Oracle;
use std::fmt;
use std::path::Path;

/// One corpus entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorpusEntry {
    /// Replay `iters` iterations of `oracle` starting at `seed`.
    Seeded {
        /// Which oracle to drive.
        oracle: Oracle,
        /// Master seed for the first iteration.
        seed: u64,
        /// Number of consecutive case seeds to replay.
        iters: u64,
    },
    /// Feed these exact bytes to the decoder-robustness check.
    DecodeBytes(Vec<u8>),
}

/// A malformed corpus file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusError {
    /// 1-based line number, 0 for whole-file problems.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CorpusError {}

impl CorpusEntry {
    /// Parses one corpus file. `#` starts a comment; blank lines are
    /// ignored; keys are `oracle`, `seed`, `iters` (seeded entries) or
    /// `decode-bytes` (hex, raw decoder input).
    pub fn parse(text: &str) -> Result<CorpusEntry, CorpusError> {
        let mut oracle: Option<Oracle> = None;
        let mut seed: Option<u64> = None;
        let mut iters: Option<u64> = None;
        let mut bytes: Option<Vec<u8>> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            let (key, value) = text.split_once('=').ok_or(CorpusError {
                line,
                message: format!("expected `key = value`, got `{text}`"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            let err = |message: String| CorpusError { line, message };
            match key {
                "oracle" => {
                    oracle = Some(
                        value
                            .parse()
                            .map_err(|e: String| err(format!("bad oracle: {e}")))?,
                    );
                }
                "seed" => {
                    seed = Some(parse_u64(value).map_err(|e| err(format!("bad seed: {e}")))?);
                }
                "iters" => {
                    iters = Some(parse_u64(value).map_err(|e| err(format!("bad iters: {e}")))?);
                }
                "decode-bytes" => {
                    bytes = Some(parse_hex(value).map_err(|e| err(format!("bad hex: {e}")))?);
                }
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }
        match (oracle, seed, bytes) {
            (None, None, Some(b)) => Ok(CorpusEntry::DecodeBytes(b)),
            (Some(oracle), Some(seed), None) => Ok(CorpusEntry::Seeded {
                oracle,
                seed,
                iters: iters.unwrap_or(1),
            }),
            _ => Err(CorpusError {
                line: 0,
                message: "entry needs either `oracle` + `seed` or `decode-bytes`".to_string(),
            }),
        }
    }

    /// Renders the entry in the corpus file format, with a leading
    /// comment line.
    #[must_use]
    pub fn serialize(&self, comment: &str) -> String {
        match self {
            CorpusEntry::Seeded {
                oracle,
                seed,
                iters,
            } => {
                format!("# {comment}\noracle = {oracle}\nseed = {seed}\niters = {iters}\n")
            }
            CorpusEntry::DecodeBytes(bytes) => {
                let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
                format!("# {comment}\ndecode-bytes = {hex}\n")
            }
        }
    }
}

/// Loads every `*.seed` file in `dir`, sorted by file name so replay
/// order (and thus CI logs) are stable.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, CorpusEntry)>, String> {
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension()? == "seed").then_some(path)
        })
        .collect();
    names.sort();
    let mut entries = Vec::with_capacity(names.len());
    for path in names {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry = CorpusEntry::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        entries.push((name, entry));
    }
    Ok(entries)
}

/// Accepts decimal or `0x`-prefixed hex.
pub(crate) fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|e| format!("`{s}`: {e}"))
}

fn parse_hex(s: &str) -> Result<Vec<u8>, String> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if !compact.len().is_multiple_of(2) {
        return Err("odd number of hex digits".to_string());
    }
    (0..compact.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&compact[i..i + 2], 16)
                .map_err(|e| format!("`{}`: {e}", &compact[i..i + 2]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_seeded_entry() {
        let entry = CorpusEntry::parse(
            "# why this seed matters\noracle = convert\nseed = 0x2a\niters = 3\n",
        )
        .unwrap();
        assert_eq!(
            entry,
            CorpusEntry::Seeded {
                oracle: Oracle::Convert,
                seed: 42,
                iters: 3
            }
        );
    }

    #[test]
    fn parses_decode_bytes_entry() {
        let entry = CorpusEntry::parse("decode-bytes = 4950 52 01\n").unwrap();
        assert_eq!(
            entry,
            CorpusEntry::DecodeBytes(vec![0x49, 0x50, 0x52, 0x01])
        );
    }

    #[test]
    fn iters_defaults_to_one() {
        let entry = CorpusEntry::parse("oracle = codec\nseed = 7\n").unwrap();
        assert_eq!(
            entry,
            CorpusEntry::Seeded {
                oracle: Oracle::Codec,
                seed: 7,
                iters: 1
            }
        );
    }

    #[test]
    fn round_trips_through_serialize() {
        for entry in [
            CorpusEntry::Seeded {
                oracle: Oracle::Crwi,
                seed: 99,
                iters: 2,
            },
            CorpusEntry::DecodeBytes(vec![0xde, 0xad, 0x00]),
        ] {
            let text = entry.serialize("regression");
            assert_eq!(CorpusEntry::parse(&text).unwrap(), entry);
        }
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(CorpusEntry::parse("oracle = codec\n").is_err()); // no seed
        assert!(CorpusEntry::parse("garbage\n").is_err());
        assert!(CorpusEntry::parse("oracle = nope\nseed = 1\n").is_err());
        assert!(CorpusEntry::parse("decode-bytes = abc\n").is_err()); // odd hex
        assert!(CorpusEntry::parse("seed = 1\ndecode-bytes = ab\n").is_err());
    }
}

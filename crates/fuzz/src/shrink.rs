//! Failure shrinking.
//!
//! A fuzz failure on a 4 KiB, 300-command case is evidence; a failure on
//! a 12-byte, 2-command case is a diagnosis. Both shrinkers are greedy
//! fixed-point loops: apply every candidate reduction, keep any that
//! still fails the *same deterministic check*, stop when none does.
//!
//! Script cases shrink by truncating the target file at a command-write
//! boundary (the write intervals tile `[0, target_len)`, so the commands
//! whose writes end at or before a boundary are themselves a valid
//! script) and by simplifying surviving commands (copies become adds,
//! add data becomes zeros) — simplifications preserve scratch-space
//! semantics only in structure, not bytes, which is fine: the check is
//! re-run on every candidate and is the sole judge.

use crate::gen::FuzzCase;
use ipr_delta::{Command, DeltaScript};

/// Bound on shrink candidates tried, to keep worst-case shrink time
/// negligible next to the fuzz run itself.
const MAX_ATTEMPTS: usize = 4_000;

/// Shrinks a failing case, returning the smallest still-failing case and
/// its failure message. Returns the input's own failure when nothing
/// smaller fails.
pub fn shrink_case(
    case: &FuzzCase,
    check: &dyn Fn(&FuzzCase) -> Result<(), String>,
) -> (FuzzCase, String) {
    let mut best = case.clone();
    let mut detail = match check(&best) {
        Err(e) => e,
        Ok(()) => return (best, "original failure did not reproduce".to_string()),
    };
    let mut attempts = 0usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return (best, detail);
            }
            if let Err(e) = check(&candidate) {
                best = candidate;
                detail = e;
                improved = true;
                break; // restart candidate generation from the new best
            }
        }
        if !improved {
            return (best, detail);
        }
    }
}

/// Candidate reductions for a case, biggest bites first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let script = &case.script;
    let mut out = Vec::new();

    // 1. Truncate the target at a write boundary: keep only commands
    //    whose write interval ends at or before the cut.
    let mut bounds: Vec<u64> = script.commands().iter().map(|c| c.to() + c.len()).collect();
    bounds.sort_unstable();
    bounds.dedup();
    bounds.pop(); // the full length is not a reduction
                  // Prefer halving: order boundaries by distance from target_len / 2.
    bounds.sort_by_key(|&b| b.abs_diff(script.target_len() / 2));
    for cut in bounds.into_iter().take(24) {
        let kept: Vec<Command> = script
            .commands()
            .iter()
            .filter(|c| c.to() + c.len() <= cut)
            .cloned()
            .collect();
        if let Ok(s) = DeltaScript::new(script.source_len(), cut, kept) {
            out.push(FuzzCase {
                reference: case.reference.clone(),
                script: s,
            });
        }
    }

    // 2. Simplify one command: a copy becomes an add of the reference
    //    bytes it read (removes a CRWI vertex), an add's data becomes
    //    zeros (removes payload entropy).
    for (i, cmd) in script.commands().iter().enumerate() {
        let replacement = match cmd {
            Command::Copy(c) => {
                let src = &case.reference[c.from as usize..(c.from + c.len) as usize];
                Command::add(c.to, src.to_vec())
            }
            Command::Add(a) => {
                if a.data.iter().all(|&b| b == 0) {
                    continue;
                }
                Command::add(a.to, vec![0u8; a.data.len()])
            }
        };
        let mut commands = script.commands().to_vec();
        commands[i] = replacement;
        if let Ok(s) = DeltaScript::new(script.source_len(), script.target_len(), commands) {
            out.push(FuzzCase {
                reference: case.reference.clone(),
                script: s,
            });
        }
    }

    // 3. Zero the reference (kills content-dependent failures' noise).
    if case.reference.iter().any(|&b| b != 0) {
        out.push(FuzzCase {
            reference: vec![0u8; case.reference.len()],
            script: script.clone(),
        });
    }
    out
}

/// Shrinks a failing decoder input with a ddmin-style sweep: drop
/// exponentially smaller chunks, then single bytes, then zero bytes.
pub fn shrink_bytes(
    bytes: &[u8],
    check: &dyn Fn(&[u8]) -> Result<(), String>,
) -> (Vec<u8>, String) {
    let mut best = bytes.to_vec();
    let mut detail = match check(&best) {
        Err(e) => e,
        Ok(()) => return (best, "original failure did not reproduce".to_string()),
    };
    let mut attempts = 0usize;

    let mut chunk = best.len().max(1) / 2;
    while chunk >= 1 {
        let mut improved = false;
        let mut start = 0usize;
        while start < best.len() {
            if attempts > MAX_ATTEMPTS {
                return (best, detail);
            }
            attempts += 1;
            let end = (start + chunk).min(best.len());
            let mut candidate = best.clone();
            candidate.drain(start..end);
            if let Err(e) = check(&candidate) {
                best = candidate;
                detail = e;
                improved = true;
                // retry the same offset against the shorter input
            } else {
                start += chunk;
            }
        }
        if !improved {
            chunk /= 2;
        }
    }

    // Canonicalize surviving bytes toward zero.
    for i in 0..best.len() {
        if best[i] == 0 || attempts > MAX_ATTEMPTS {
            continue;
        }
        attempts += 1;
        let mut candidate = best.clone();
        candidate[i] = 0;
        if let Err(e) = check(&candidate) {
            best = candidate;
            detail = e;
        }
    }
    (best, detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{case, rng_for};

    #[test]
    fn shrinks_a_script_failure_to_its_core() {
        // Failure: "some command writes at or past offset 100".
        let check = |c: &FuzzCase| -> Result<(), String> {
            for cmd in c.script.commands() {
                if cmd.to() + cmd.len() > 100 {
                    return Err("writes past 100".to_string());
                }
            }
            Ok(())
        };
        for seed in 0..20u64 {
            let c = case(&mut rng_for(seed));
            if check(&c).is_ok() {
                continue;
            }
            let (small, detail) = shrink_case(&c, &check);
            assert_eq!(detail, "writes past 100");
            assert!(small.script.target_len() <= c.script.target_len());
            // Minimal: cutting any more passes the check, so the last
            // write boundary is the first one past 100.
            assert!(small.script.target_len() >= 100);
        }
    }

    #[test]
    fn shrinks_bytes_to_the_poison_pattern() {
        let check = |b: &[u8]| -> Result<(), String> {
            if b.windows(2).any(|w| w == [0xde, 0xad]) {
                Err("contains 0xDEAD".to_string())
            } else {
                Ok(())
            }
        };
        let mut input = vec![7u8; 300];
        input[171] = 0xde;
        input[172] = 0xad;
        let (small, detail) = shrink_bytes(&input, &check);
        assert_eq!(detail, "contains 0xDEAD");
        assert_eq!(small, vec![0xde, 0xad]);
    }

    #[test]
    fn non_reproducing_failure_is_reported() {
        let c = case(&mut rng_for(3));
        let (_, detail) = shrink_case(&c, &|_| Ok(()));
        assert!(detail.contains("did not reproduce"));
    }
}

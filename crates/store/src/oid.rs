//! Content-addressed object identifiers.
//!
//! An [`Oid`] is the 128-bit strong hash
//! ([`ipr_delta::remote::strong_of`]) of an object's exact on-disk
//! bytes — the same two-lane hash the remote-differencing block match
//! trusts, reused here so the store and the wire protocol share one
//! collision-resistance argument (docs/REMOTE.md, docs/STORE.md). Two
//! objects with equal bytes always share an id, so writes deduplicate
//! for free, and an object file whose contents drift from its name is
//! detected by rehashing — the cornerstone of `fsck`.

use std::fmt;
use std::str::FromStr;

/// A 128-bit content address, rendered as 32 lowercase hex digits.
///
/// # Example
///
/// ```
/// use ipr_store::Oid;
///
/// let oid = Oid::of(b"some object bytes");
/// let hex = oid.to_string();
/// assert_eq!(hex.len(), 32);
/// assert_eq!(hex.parse::<Oid>().unwrap(), oid);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(u128);

impl Oid {
    /// The content address of `bytes`.
    #[must_use]
    pub fn of(bytes: &[u8]) -> Self {
        Oid(ipr_delta::remote::strong_of(bytes))
    }

    /// The raw 128-bit value.
    #[must_use]
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Whether this id's hex rendering starts with `prefix`.
    ///
    /// Used by the CLI so `ipr store get` accepts any unambiguous
    /// abbreviation of a full id.
    #[must_use]
    pub fn matches_prefix(self, prefix: &str) -> bool {
        self.to_string().starts_with(prefix)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({:032x})", self.0)
    }
}

/// A malformed object-id string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseOidError {
    /// The offending input.
    pub input: String,
}

impl fmt::Display for ParseOidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` is not an object id (expected 32 hex digits)",
            self.input
        )
    }
}

impl std::error::Error for ParseOidError {}

impl FromStr for Oid {
    type Err = ParseOidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(ParseOidError { input: s.into() });
        }
        u128::from_str_radix(s, 16)
            .map(Oid)
            .map_err(|_| ParseOidError { input: s.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        for bytes in [&b""[..], b"a", b"hello store", &[0u8; 64]] {
            let oid = Oid::of(bytes);
            assert_eq!(oid.to_string().parse::<Oid>().unwrap(), oid);
        }
    }

    #[test]
    fn rendering_is_fixed_width() {
        // Small hash values must keep their leading zeros.
        let oid = Oid(0x2a);
        assert_eq!(oid.to_string(), "0000000000000000000000000000002a");
        assert_eq!(oid.to_string().parse::<Oid>().unwrap(), oid);
    }

    #[test]
    fn distinct_contents_distinct_ids() {
        assert_ne!(Oid::of(b"a"), Oid::of(b"b"));
        assert_ne!(Oid::of(b""), Oid::of(b"\0"));
    }

    #[test]
    fn prefix_matching() {
        let oid = Oid::of(b"prefix test");
        let hex = oid.to_string();
        assert!(oid.matches_prefix(""));
        assert!(oid.matches_prefix(&hex[..6]));
        assert!(oid.matches_prefix(&hex));
        // A prefix that differs in its last digit cannot match.
        let mut wrong = hex[..6].to_string();
        let last = wrong.pop().unwrap();
        wrong.push(if last == '0' { '1' } else { '0' });
        assert!(!oid.matches_prefix(&wrong));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("".parse::<Oid>().is_err());
        assert!("abc".parse::<Oid>().is_err());
        assert!("zz000000000000000000000000000000".parse::<Oid>().is_err());
        assert!("0000000000000000000000000000002a0".parse::<Oid>().is_err());
    }
}

//! The manifest: one self-checking text file that *is* the store's
//! committed state.
//!
//! Everything the store knows — the version log, the object table, the
//! reconstruction edges, the chain-depth cap — lives in one
//! line-oriented document, rewritten wholesale and swapped into place
//! atomically by every transaction ([`txn`](crate::txn)). There is no
//! mutable state outside it: an object file not named here is garbage,
//! and a crash can only ever leave the previous manifest or the next
//! one, never a blend.
//!
//! The format is deliberately human-readable (the same `key = value`
//! style as the fuzz corpus) and closed by a `crc` line sealing every
//! preceding byte, so torn or bit-flipped manifests are always detected:
//!
//! ```text
//! ipr-manifest/1
//! gen = 3
//! depth-cap = 8
//! version = 1 <oid> parent=- len=1024 crc=59bcb71c
//! version = 2 <oid> parent=<oid> len=1040 crc=11f9ad2a
//! object = <oid> kind=full len=1024 crc=59bcb71c
//! object = <oid> kind=delta len=184 crc=8f0c7713
//! edge = <to> from=<from> delta=<delta-oid>
//! crc = 5f9e0d21
//! ```

use crate::oid::Oid;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// First line of every manifest.
pub const MANIFEST_HEADER: &str = "ipr-manifest/1";

/// What an object file holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectKind {
    /// A complete version image, byte for byte.
    Full,
    /// An encoded [`DeltaScript`](ipr_delta::DeltaScript) delta file.
    Delta,
}

impl ObjectKind {
    /// The file extension under `objects/`.
    #[must_use]
    pub fn extension(self) -> &'static str {
        match self {
            ObjectKind::Full => "full",
            ObjectKind::Delta => "delta",
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.extension())
    }
}

/// One entry of the version log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VersionRecord {
    /// 1-based insertion order; the log is append-only.
    pub seq: u64,
    /// Content address of the version image.
    pub oid: Oid,
    /// The version this one was diffed against at `put` time (lineage,
    /// not necessarily the current reconstruction base).
    pub parent: Option<Oid>,
    /// Version length in bytes.
    pub len: u64,
    /// CRC-32 of the version image — every reconstruction is checked
    /// against it.
    pub crc: u32,
}

/// One entry of the object table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Full image or delta file.
    pub kind: ObjectKind,
    /// Exact file length in bytes.
    pub len: u64,
    /// CRC-32 of the file bytes.
    pub crc: u32,
}

/// One reconstruction edge: version `to` is rebuilt by applying the
/// delta object `delta` to version `from`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// The version the delta reads from.
    pub from: Oid,
    /// The delta object materializing `to` over `from`.
    pub delta: Oid,
}

/// A manifest that failed to parse or validate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line number, 0 for whole-document problems.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "manifest: {}", self.message)
        } else {
            write!(f, "manifest line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

/// The store's committed state: version log, object table,
/// reconstruction edges and configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Commit generation, bumped by every transaction.
    pub gen: u64,
    /// The chain-depth bound `compact` enforces.
    pub depth_cap: u32,
    /// The version log in insertion order.
    pub versions: Vec<VersionRecord>,
    /// Every object file the store owns.
    pub objects: BTreeMap<Oid, ObjectRecord>,
    /// Reconstruction edges, keyed by the version they produce.
    pub edges: BTreeMap<Oid, EdgeRecord>,
}

impl Manifest {
    /// An empty manifest at generation 0.
    #[must_use]
    pub fn new(depth_cap: u32) -> Self {
        Self {
            gen: 0,
            depth_cap,
            versions: Vec::new(),
            objects: BTreeMap::new(),
            edges: BTreeMap::new(),
        }
    }

    /// Looks up a version by content address.
    #[must_use]
    pub fn version(&self, oid: Oid) -> Option<&VersionRecord> {
        self.versions.iter().find(|v| v.oid == oid)
    }

    /// The most recently inserted version.
    #[must_use]
    pub fn head(&self) -> Option<&VersionRecord> {
        self.versions.last()
    }

    /// The reconstruction chain of `oid`: the base version holding a
    /// full object, then the delta object ids to apply in order.
    /// `None` when `oid` is not a version.
    #[must_use]
    pub fn chain(&self, oid: Oid) -> Option<Chain> {
        self.version(oid)?;
        let mut deltas = Vec::new();
        let mut at = oid;
        while let Some(edge) = self.edges.get(&at) {
            deltas.push(edge.delta);
            at = edge.from;
        }
        deltas.reverse();
        Some(Chain { base: at, deltas })
    }

    /// Chain depth of a version: 0 when it has a full object, else the
    /// number of deltas applied to reach it.
    #[must_use]
    pub fn depth(&self, oid: Oid) -> Option<u32> {
        self.chain(oid).map(|c| c.deltas.len() as u32)
    }

    /// The deepest chain over all versions.
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        self.versions
            .iter()
            .filter_map(|v| self.depth(v.oid))
            .max()
            .unwrap_or(0)
    }

    /// Object ids actually referenced by the version log and its edges:
    /// the reachable set. Anything in [`Manifest::objects`] outside this
    /// set is a dangling object `fsck` will flag.
    #[must_use]
    pub fn referenced_objects(&self) -> BTreeSet<Oid> {
        let mut live = BTreeSet::new();
        for v in &self.versions {
            if self.edges.contains_key(&v.oid) {
                continue; // rebuilt via its edge, not a full object
            }
            live.insert(v.oid);
        }
        for edge in self.edges.values() {
            live.insert(edge.delta);
        }
        live
    }

    /// Renders the manifest, sealed by its `crc` line.
    #[must_use]
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        out.push_str(&format!("gen = {}\n", self.gen));
        out.push_str(&format!("depth-cap = {}\n", self.depth_cap));
        for v in &self.versions {
            let parent = v.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
            out.push_str(&format!(
                "version = {} {} parent={} len={} crc={:08x}\n",
                v.seq, v.oid, parent, v.len, v.crc
            ));
        }
        for (oid, o) in &self.objects {
            out.push_str(&format!(
                "object = {} kind={} len={} crc={:08x}\n",
                oid, o.kind, o.len, o.crc
            ));
        }
        for (to, e) in &self.edges {
            out.push_str(&format!(
                "edge = {} from={} delta={}\n",
                to, e.from, e.delta
            ));
        }
        let crc = ipr_delta::checksum::crc32(out.as_bytes());
        out.push_str(&format!("crc = {crc:08x}\n"));
        out
    }

    /// Parses and fully validates a manifest document, including its
    /// sealing CRC.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] naming the offending line or invariant.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let err = |line: usize, message: String| ManifestError { line, message };
        // Split off and verify the sealing crc line first: it must be
        // the final line, covering every byte before it.
        let body_len = text
            .trim_end_matches('\n')
            .rfind('\n')
            .map(|i| i + 1)
            .ok_or_else(|| err(0, "document too short".into()))?;
        let (body, crc_line) = text.split_at(body_len);
        let crc_line = crc_line.trim_end_matches('\n');
        let declared = crc_line
            .strip_prefix("crc = ")
            .ok_or_else(|| err(0, "missing final `crc = <hex>` line".into()))?;
        let declared = u32::from_str_radix(declared, 16)
            .map_err(|_| err(0, format!("bad crc value `{declared}`")))?;
        let actual = ipr_delta::checksum::crc32(body.as_bytes());
        if actual != declared {
            return Err(err(
                0,
                format!("crc mismatch: computed {actual:08x}, sealed {declared:08x}"),
            ));
        }

        let mut lines = body.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| err(0, "empty document".into()))?;
        if header != MANIFEST_HEADER {
            return Err(err(1, format!("bad header `{header}`")));
        }
        let mut manifest = Manifest::new(0);
        let mut saw_gen = false;
        let mut saw_cap = false;
        for (i, raw) in lines {
            let line = i + 1;
            let (key, value) = raw
                .split_once(" = ")
                .ok_or_else(|| err(line, format!("expected `key = value`, got `{raw}`")))?;
            match key {
                "gen" => {
                    manifest.gen = value
                        .parse()
                        .map_err(|_| err(line, format!("bad gen `{value}`")))?;
                    saw_gen = true;
                }
                "depth-cap" => {
                    manifest.depth_cap = value
                        .parse()
                        .map_err(|_| err(line, format!("bad depth-cap `{value}`")))?;
                    saw_cap = true;
                }
                "version" => {
                    let v = parse_version(value).map_err(|m| err(line, m))?;
                    manifest.versions.push(v);
                }
                "object" => {
                    let (oid, o) = parse_object(value).map_err(|m| err(line, m))?;
                    if manifest.objects.insert(oid, o).is_some() {
                        return Err(err(line, format!("duplicate object {oid}")));
                    }
                }
                "edge" => {
                    let (to, e) = parse_edge(value).map_err(|m| err(line, m))?;
                    if manifest.edges.insert(to, e).is_some() {
                        return Err(err(line, format!("duplicate edge for {to}")));
                    }
                }
                other => return Err(err(line, format!("unknown key `{other}`"))),
            }
        }
        if !saw_gen || !saw_cap {
            return Err(err(0, "missing gen or depth-cap".into()));
        }
        manifest.validate()?;
        Ok(manifest)
    }

    /// Checks the structural invariants that make every version
    /// reconstructible:
    ///
    /// * sequence numbers are `1..=n` in order, version ids unique;
    /// * parents name earlier versions;
    /// * each version has exactly one of: a `full` object under its own
    ///   id, or one incoming edge;
    /// * edges read from strictly earlier versions (so chains terminate)
    ///   and apply `delta` objects that exist in the object table;
    /// * full objects under a version id match that version's length and
    ///   CRC.
    ///
    /// Dangling (unreferenced) objects are *not* an error here — they
    /// are exactly what a crashed compaction may leave behind and what
    /// `fsck` reports and repairs.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), ManifestError> {
        let err = |message: String| ManifestError { line: 0, message };
        let mut seq_of: BTreeMap<Oid, u64> = BTreeMap::new();
        for (i, v) in self.versions.iter().enumerate() {
            if v.seq != i as u64 + 1 {
                return Err(err(format!(
                    "version {} has seq {}, expected {}",
                    v.oid,
                    v.seq,
                    i + 1
                )));
            }
            if seq_of.insert(v.oid, v.seq).is_some() {
                return Err(err(format!("duplicate version {}", v.oid)));
            }
        }
        for v in &self.versions {
            if let Some(parent) = v.parent {
                match seq_of.get(&parent) {
                    Some(&p) if p < v.seq => {}
                    Some(_) => {
                        return Err(err(format!("version {} parents a later version", v.oid)))
                    }
                    None => {
                        return Err(err(format!(
                            "version {} parents unknown version {parent}",
                            v.oid
                        )))
                    }
                }
            }
            let full = self
                .objects
                .get(&v.oid)
                .filter(|o| o.kind == ObjectKind::Full);
            let edge = self.edges.get(&v.oid);
            match (full, edge) {
                (Some(o), None) => {
                    if o.len != v.len || o.crc != v.crc {
                        return Err(err(format!(
                            "full object of {} disagrees with its version record",
                            v.oid
                        )));
                    }
                }
                (None, Some(e)) => {
                    match seq_of.get(&e.from) {
                        Some(&p) if p < v.seq => {}
                        _ => {
                            return Err(err(format!(
                                "edge of {} reads from {} which is not an earlier version",
                                v.oid, e.from
                            )))
                        }
                    }
                    match self.objects.get(&e.delta) {
                        Some(o) if o.kind == ObjectKind::Delta => {}
                        _ => {
                            return Err(err(format!(
                                "edge of {} applies missing delta object {}",
                                v.oid, e.delta
                            )))
                        }
                    }
                }
                (Some(_), Some(_)) => {
                    return Err(err(format!(
                        "version {} has both a full object and an edge",
                        v.oid
                    )))
                }
                (None, None) => {
                    return Err(err(format!(
                        "version {} has neither a full object nor an edge",
                        v.oid
                    )))
                }
            }
        }
        for to in self.edges.keys() {
            if !seq_of.contains_key(to) {
                return Err(err(format!("edge produces unknown version {to}")));
            }
        }
        Ok(())
    }
}

/// A reconstruction chain: apply `deltas` in order to the full object of
/// `base`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// The version whose full object starts the chain.
    pub base: Oid,
    /// Delta object ids, in application order (base → target).
    pub deltas: Vec<Oid>,
}

fn parse_oid(s: &str) -> Result<Oid, String> {
    s.parse()
        .map_err(|e: crate::oid::ParseOidError| e.to_string())
}

fn parse_field<'a>(field: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let field = field.ok_or_else(|| format!("missing {key}"))?;
    field
        .strip_prefix(key)
        .and_then(|f| f.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=<value>, got `{field}`"))
}

fn parse_version(value: &str) -> Result<VersionRecord, String> {
    let mut fields = value.split(' ');
    let seq = fields
        .next()
        .ok_or("missing seq")?
        .parse()
        .map_err(|_| "bad seq".to_string())?;
    let oid = parse_oid(fields.next().ok_or("missing oid")?)?;
    let parent = parse_field(fields.next(), "parent")?;
    let parent = if parent == "-" {
        None
    } else {
        Some(parse_oid(parent)?)
    };
    let len = parse_field(fields.next(), "len")?
        .parse()
        .map_err(|_| "bad len".to_string())?;
    let crc = u32::from_str_radix(parse_field(fields.next(), "crc")?, 16)
        .map_err(|_| "bad crc".to_string())?;
    if fields.next().is_some() {
        return Err("trailing fields".into());
    }
    Ok(VersionRecord {
        seq,
        oid,
        parent,
        len,
        crc,
    })
}

fn parse_object(value: &str) -> Result<(Oid, ObjectRecord), String> {
    let mut fields = value.split(' ');
    let oid = parse_oid(fields.next().ok_or("missing oid")?)?;
    let kind = match parse_field(fields.next(), "kind")? {
        "full" => ObjectKind::Full,
        "delta" => ObjectKind::Delta,
        other => return Err(format!("unknown object kind `{other}`")),
    };
    let len = parse_field(fields.next(), "len")?
        .parse()
        .map_err(|_| "bad len".to_string())?;
    let crc = u32::from_str_radix(parse_field(fields.next(), "crc")?, 16)
        .map_err(|_| "bad crc".to_string())?;
    if fields.next().is_some() {
        return Err("trailing fields".into());
    }
    Ok((oid, ObjectRecord { kind, len, crc }))
}

fn parse_edge(value: &str) -> Result<(Oid, EdgeRecord), String> {
    let mut fields = value.split(' ');
    let to = parse_oid(fields.next().ok_or("missing to")?)?;
    let from = parse_oid(parse_field(fields.next(), "from")?)?;
    let delta = parse_oid(parse_field(fields.next(), "delta")?)?;
    if fields.next().is_some() {
        return Err("trailing fields".into());
    }
    Ok((to, EdgeRecord { from, delta }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u8) -> Oid {
        Oid::of(&[n])
    }

    /// A two-version manifest: v1 full, v2 via a delta edge.
    fn sample() -> Manifest {
        let mut m = Manifest::new(4);
        m.gen = 2;
        m.versions.push(VersionRecord {
            seq: 1,
            oid: oid(1),
            parent: None,
            len: 100,
            crc: 0xdead_beef,
        });
        m.versions.push(VersionRecord {
            seq: 2,
            oid: oid(2),
            parent: Some(oid(1)),
            len: 120,
            crc: 0x1234_5678,
        });
        m.objects.insert(
            oid(1),
            ObjectRecord {
                kind: ObjectKind::Full,
                len: 100,
                crc: 0xdead_beef,
            },
        );
        m.objects.insert(
            oid(9),
            ObjectRecord {
                kind: ObjectKind::Delta,
                len: 30,
                crc: 0x0bad_cafe,
            },
        );
        m.edges.insert(
            oid(2),
            EdgeRecord {
                from: oid(1),
                delta: oid(9),
            },
        );
        m
    }

    #[test]
    fn serialize_parse_round_trip() {
        let m = sample();
        let text = m.serialize();
        assert_eq!(Manifest::parse(&text).unwrap(), m);
        // Empty manifests round-trip too.
        let empty = Manifest::new(8);
        assert_eq!(Manifest::parse(&empty.serialize()).unwrap(), empty);
    }

    #[test]
    fn any_byte_flip_is_detected() {
        let text = sample().serialize();
        let bytes = text.as_bytes();
        for i in (0..bytes.len()).step_by(7) {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 0x01;
            let Ok(s) = String::from_utf8(flipped) else {
                continue; // non-UTF-8 cannot even be read as a manifest
            };
            assert!(
                Manifest::parse(&s).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn chain_and_depth() {
        let m = sample();
        assert_eq!(m.depth(oid(1)), Some(0));
        assert_eq!(m.depth(oid(2)), Some(1));
        assert_eq!(m.max_depth(), 1);
        let chain = m.chain(oid(2)).unwrap();
        assert_eq!(chain.base, oid(1));
        assert_eq!(chain.deltas, vec![oid(9)]);
        assert_eq!(m.chain(oid(77)), None);
    }

    #[test]
    fn referenced_objects_excludes_dangling() {
        let mut m = sample();
        m.objects.insert(
            oid(50),
            ObjectRecord {
                kind: ObjectKind::Delta,
                len: 10,
                crc: 0,
            },
        );
        let live = m.referenced_objects();
        assert!(live.contains(&oid(1)));
        assert!(live.contains(&oid(9)));
        assert!(!live.contains(&oid(50)));
        // Dangling objects are tolerated by validation (fsck's business).
        m.validate().unwrap();
    }

    #[test]
    fn validate_rejects_broken_structure() {
        // Version with neither full object nor edge.
        let mut m = sample();
        m.edges.clear();
        assert!(m.validate().is_err());

        // Edge reading from a later version.
        let mut m = sample();
        m.edges.get_mut(&oid(2)).unwrap().from = oid(2);
        assert!(m.validate().is_err());

        // Edge applying a full object as a delta.
        let mut m = sample();
        m.edges.get_mut(&oid(2)).unwrap().delta = oid(1);
        assert!(m.validate().is_err());

        // Out-of-order sequence numbers.
        let mut m = sample();
        m.versions[1].seq = 7;
        assert!(m.validate().is_err());

        // Parent pointing at an unknown version.
        let mut m = sample();
        m.versions[1].parent = Some(oid(99));
        assert!(m.validate().is_err());

        // Full object disagreeing with the version record.
        let mut m = sample();
        m.objects.get_mut(&oid(1)).unwrap().len = 1;
        assert!(m.validate().is_err());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("not a manifest\ncrc = 0\n").is_err());
        let good = sample().serialize();
        // Truncations lose the crc seal.
        for cut in [1, good.len() / 2, good.len() - 2] {
            assert!(Manifest::parse(&good[..cut]).is_err());
        }
    }
}

//! Durability boundaries with deterministic crash and fault injection.
//!
//! Every fsync and rename the transaction layer performs flows through
//! this module, and each one is bracketed by two numbered *boundaries*
//! (just before and just after the operation). A boundary is where a
//! crash is interesting: killing before an fsync models "the write never
//! reached the platter", killing after a rename models "the new name is
//! durable but nothing later is". Sweeping a kill over every boundary
//! therefore exercises every crash interleaving the on-disk format has
//! to survive — that sweep is `tests/store_crash.rs` and the CI
//! `store-smoke` job.
//!
//! Two injection modes share one counter:
//!
//! * **process kill** — when the environment variable
//!   [`KILL_ENV`]`=<n>` is set, the process exits with [`KILL_EXIT_CODE`]
//!   at the `n`-th boundary crossed on the calling thread. This is the
//!   mode the child-process crash sweep uses: a real `exit` mid-commit,
//!   observed by a fresh process reopening the store.
//! * **in-process fault** — [`fail_after`]`(n)` makes the `n`-th
//!   upcoming boundary on the calling thread return an injected
//!   [`std::io::Error`] instead of exiting, so property tests can
//!   interrupt a transaction, watch the typed error propagate, and
//!   reopen the store in the same process.
//!
//! Counters are thread-local: a store session is single-threaded
//! (`&mut self`), so the boundaries of one scripted operation are
//! numbered deterministically no matter what other test threads do.

use std::cell::Cell;
use std::io;
use std::sync::OnceLock;

/// Environment variable selecting the process-kill boundary (1-based).
pub const KILL_ENV: &str = "IPR_STORE_KILL";

/// Exit code of a process killed at a boundary, distinguishable from
/// both success and ordinary test failure.
pub const KILL_EXIT_CODE: i32 = 86;

thread_local! {
    static CROSSED: Cell<u64> = const { Cell::new(0) };
    static FAIL_AT: Cell<Option<u64>> = const { Cell::new(None) };
}

fn kill_at() -> Option<u64> {
    static KILL: OnceLock<Option<u64>> = OnceLock::new();
    *KILL.get_or_init(|| {
        std::env::var(KILL_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
    })
}

/// Crosses one durability boundary: increments the thread's counter and
/// fires whichever injection is armed for this crossing.
///
/// # Errors
///
/// The injected fault, when [`fail_after`] armed this boundary.
pub(crate) fn boundary(what: &str) -> io::Result<()> {
    let crossed = CROSSED.with(|c| {
        let n = c.get() + 1;
        c.set(n);
        n
    });
    if kill_at() == Some(crossed) {
        // A real crash for the sweep: no unwinding, no destructors that
        // could tidy up state a power cut would have left behind.
        std::process::exit(KILL_EXIT_CODE);
    }
    if FAIL_AT.with(Cell::get) == Some(crossed) {
        FAIL_AT.with(|f| f.set(None));
        return Err(io::Error::other(format!(
            "injected fault at boundary {crossed} ({what})"
        )));
    }
    Ok(())
}

/// Arms an injected failure at the `n`-th boundary (1-based) the calling
/// thread crosses from now on. The fault fires once, then disarms.
pub fn fail_after(n: u64) {
    assert!(n > 0, "boundaries are numbered from 1");
    let at = CROSSED.with(Cell::get) + n;
    FAIL_AT.with(|f| f.set(Some(at)));
}

/// Disarms any pending [`fail_after`] injection on the calling thread.
pub fn clear() {
    FAIL_AT.with(|f| f.set(None));
}

/// Boundaries the calling thread has crossed so far (monotonic; the
/// crash sweep uses the delta across one operation as its sweep width).
#[must_use]
pub fn crossed() -> u64 {
    CROSSED.with(Cell::get)
}

/// Fsyncs an open file, crossing a boundary on each side.
pub(crate) fn fsync_file(file: &std::fs::File, what: &str) -> io::Result<()> {
    boundary(&format!("before fsync {what}"))?;
    file.sync_all()?;
    boundary(&format!("after fsync {what}"))
}

/// Opens `path` and fsyncs it — used for directories, whose entries
/// (created by rename) need their own durability point on Linux.
pub(crate) fn fsync_dir(path: &std::path::Path) -> io::Result<()> {
    boundary(&format!("before fsync dir {}", path.display()))?;
    std::fs::File::open(path)?.sync_all()?;
    boundary(&format!("after fsync dir {}", path.display()))
}

/// Renames `from` to `to`, crossing a boundary on each side. The rename
/// itself is atomic (POSIX): a crash between the two boundaries leaves
/// exactly one of the names present.
pub(crate) fn rename(from: &std::path::Path, to: &std::path::Path) -> io::Result<()> {
    boundary(&format!("before rename {}", to.display()))?;
    std::fs::rename(from, to)?;
    boundary(&format!("after rename {}", to.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_count_and_injection_fires_once() {
        let start = crossed();
        boundary("a").unwrap();
        boundary("b").unwrap();
        assert_eq!(crossed(), start + 2);

        fail_after(2);
        boundary("c").unwrap();
        let err = boundary("d").unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        // Disarmed after firing.
        boundary("e").unwrap();
    }

    #[test]
    fn clear_disarms() {
        fail_after(1);
        clear();
        boundary("x").unwrap();
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn fail_after_zero_rejected() {
        fail_after(0);
    }
}

//! `fsck`: the store's integrity sweep and repair tool.
//!
//! The sweep runs a fixed sequence of checks over a store directory and
//! classifies everything it finds into two severities:
//!
//! * [`Severity::Repairable`] — the benign residue of a crash mid-
//!   transaction: a torn journal tail, an unresolved `begin`, a stale
//!   `manifest.tmp`, leftover `stage/` files, object files the manifest
//!   never adopted. The commit protocol guarantees this debris is
//!   disjoint from committed state, so `--repair` removes or resolves
//!   it without risk.
//! * [`Severity::Corrupt`] — damage no crash of a correct writer can
//!   produce: a bad marker, a manifest failing its CRC or invariants,
//!   interior journal damage, or a *referenced* object whose bytes no
//!   longer match their recorded length, CRC and content address. These
//!   are reported, never auto-repaired.
//!
//! After the structural checks, a clean store gets a full
//! reconstruction sweep: every version is rebuilt through
//! [`Engine::apply_chain`](ipr_pipeline::Engine::apply_chain) and
//! checked against its recorded length and CRC — the strongest
//! statement `fsck` can make, and the one the crash-injection CI gate
//! relies on.
//!
//! Findings render deterministically (fixed check order, sorted
//! directory listings), so two sweeps of the same store — or the same
//! crash replayed — produce byte-identical reports.

use crate::journal::Record;
use crate::manifest::{Manifest, ObjectKind};
use crate::oid::Oid;
use crate::store::Store;
use crate::txn;
use crate::StoreError;
use std::fmt;
use std::path::Path;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Crash debris; `--repair` clears it without touching committed
    /// data.
    Repairable,
    /// Real damage to committed state; reported, never auto-repaired.
    Corrupt,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Repairable => "repairable",
            Severity::Corrupt => "corrupt",
        })
    }
}

/// One thing the sweep found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Repairable debris or real corruption.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `journal-open-txn`).
    pub code: &'static str,
    /// Human-readable specifics.
    pub detail: String,
    /// Whether this run repaired it (always false without `--repair`).
    pub repaired: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.severity, self.code, self.detail)?;
        if self.repaired {
            write!(f, " [repaired]")?;
        }
        Ok(())
    }
}

/// The sweep's result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Everything found, in deterministic check order.
    pub findings: Vec<Finding>,
    /// Versions whose reconstruction was verified end to end.
    pub versions_checked: usize,
    /// Object files verified against length, CRC and content address.
    pub objects_checked: usize,
    /// Total bytes read and checksummed by the sweep.
    pub bytes_checked: u64,
}

impl FsckReport {
    /// No findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether any finding is real corruption.
    #[must_use]
    pub fn has_corruption(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity == Severity::Corrupt)
    }

    /// Whether every finding was repaired this run.
    #[must_use]
    pub fn fully_repaired(&self) -> bool {
        self.findings.iter().all(|f| f.repaired)
    }

    fn found(&mut self, severity: Severity, code: &'static str, detail: String) {
        self.findings.push(Finding {
            severity,
            code,
            detail,
            repaired: false,
        });
    }

    fn repairable(
        &mut self,
        code: &'static str,
        detail: String,
        repair: bool,
        fix: impl FnOnce() -> std::io::Result<()>,
    ) {
        let repaired = repair && fix().is_ok();
        self.findings.push(Finding {
            severity: Severity::Repairable,
            code,
            detail,
            repaired,
        });
    }
}

/// Sweeps the store at `root`. With `repair`, clears every
/// [`Severity::Repairable`] finding in place; corruption is only ever
/// reported.
///
/// # Errors
///
/// [`StoreError::Io`] when the directory itself cannot be read; damage
/// *inside* a readable store is a finding, not an error.
pub fn fsck(root: &Path, repair: bool) -> Result<FsckReport, StoreError> {
    let _span = ipr_trace::span("store.fsck");
    let mut report = FsckReport::default();

    // 1. Marker: is this a store at all?
    if let Err(e) = txn::check_marker(root) {
        report.found(Severity::Corrupt, "bad-marker", e.to_string());
        return Ok(report);
    }

    // 2. Manifest: the single source of truth must parse and validate.
    let manifest = match txn::read_manifest_text(root) {
        Ok(text) => {
            report.bytes_checked += text.len() as u64;
            match Manifest::parse(&text) {
                Ok(m) => Some(m),
                Err(e) => {
                    report.found(Severity::Corrupt, "bad-manifest", e.to_string());
                    None
                }
            }
        }
        Err(e) => {
            report.found(Severity::Corrupt, "missing-manifest", e.to_string());
            None
        }
    };

    // 3. Journal: interior damage is corruption; a torn tail and an
    // unresolved begin are the expected shapes of a crash.
    match txn::journal_scan(root) {
        Ok(scan) => {
            report.bytes_checked += scan.intact_len;
            if scan.torn_tail {
                report.repairable(
                    "journal-torn-tail",
                    format!("intact prefix ends at byte {}", scan.intact_len),
                    repair,
                    || txn::journal_truncate(root, scan.intact_len),
                );
            }
            if let (Some(gen), Some(m)) = (scan.open_transaction(), manifest.as_ref()) {
                // The manifest decides: if the swap reached this
                // generation the transaction committed, else it died
                // before the commit point.
                let committed = m.gen >= gen;
                let resolution = if committed {
                    Record::Commit(gen)
                } else {
                    Record::Abort(gen)
                };
                report.repairable(
                    "journal-open-txn",
                    format!(
                        "begin {gen} unresolved (manifest at gen {} → {})",
                        m.gen,
                        if committed { "commit" } else { "abort" }
                    ),
                    repair,
                    || txn::journal_resolve(root, resolution),
                );
            }
        }
        Err(e) => report.found(Severity::Corrupt, "bad-journal", e.to_string()),
    }

    // 4. A manifest.tmp can only be a crashed transaction's leftover:
    // the commit point renames it away.
    if txn::manifest_tmp_exists(root) {
        report.repairable(
            "stale-manifest-tmp",
            "leftover manifest.tmp from an interrupted commit".into(),
            repair,
            || txn::remove_manifest_tmp(root).map(|_| ()),
        );
    }

    // 5. Stage files are invisible to readers by construction.
    match txn::list_stage_files(root) {
        Ok(names) => {
            for name in names {
                report.repairable("stale-stage-file", format!("stage/{name}"), repair, || {
                    txn::remove_stage_file(root, &name)
                });
            }
        }
        Err(e) => report.found(Severity::Corrupt, "bad-stage-dir", e.to_string()),
    }
    if !txn::stage_dir(root).is_dir() {
        report.repairable(
            "missing-stage-dir",
            "stage/ directory absent".into(),
            repair,
            || txn::ensure_stage_dir(root),
        );
    }

    let Some(manifest) = manifest else {
        return Ok(report);
    };

    // 6. Object sweep: every recorded object must exist with matching
    // length, CRC and content address; every file on disk must be
    // recorded. The reverse direction catches objects a crashed
    // transaction renamed in before dying short of the commit point.
    let referenced = manifest.referenced_objects();
    for (oid, record) in &manifest.objects {
        match txn::read_object(root, *oid, record.kind, record.len, record.crc) {
            Ok(bytes) => {
                report.objects_checked += 1;
                report.bytes_checked += bytes.len() as u64;
            }
            Err(e) => {
                let code = if txn::object_path(root, *oid, record.kind).exists() {
                    "damaged-object"
                } else {
                    "missing-object"
                };
                let severity = if referenced.contains(oid) {
                    Severity::Corrupt
                } else {
                    // Unreachable from any version: losing it loses
                    // nothing.
                    Severity::Repairable
                };
                report.found(severity, code, e.to_string());
            }
        }
    }
    match txn::list_object_files(root) {
        Ok(names) => {
            for name in names {
                if parse_object_name(&name).is_some_and(|(oid, kind)| {
                    manifest.objects.get(&oid).is_some_and(|r| r.kind == kind)
                }) {
                    continue;
                }
                report.repairable(
                    "dangling-object",
                    format!("objects/{name} not referenced by the manifest"),
                    repair,
                    || txn::remove_object_file(root, &name),
                );
            }
        }
        Err(e) => report.found(Severity::Corrupt, "bad-objects-dir", e.to_string()),
    }

    // 7. Reconstruction sweep: only meaningful once the structure is
    // sound. Rebuild every version and check it against its record.
    if !report.has_corruption() {
        match Store::open(root) {
            Ok(mut store) => {
                let oids: Vec<Oid> = store.log().iter().map(|v| v.oid).collect();
                for oid in oids {
                    match store.get(oid) {
                        Ok(bytes) => {
                            report.versions_checked += 1;
                            report.bytes_checked += bytes.len() as u64;
                        }
                        Err(e) => report.found(
                            Severity::Corrupt,
                            "unreconstructable-version",
                            format!("{oid}: {e}"),
                        ),
                    }
                }
            }
            Err(e) => report.found(Severity::Corrupt, "bad-store", e.to_string()),
        }
    }
    ipr_trace::add("store.fsck_bytes", report.bytes_checked);
    ipr_trace::add("store.fsck_findings", report.findings.len() as u64);
    Ok(report)
}

/// Parses an `objects/` file name back into its id and kind.
fn parse_object_name(name: &str) -> Option<(Oid, ObjectKind)> {
    let (hex, ext) = name.split_once('.')?;
    let oid: Oid = hex.parse().ok()?;
    let kind = match ext {
        "full" => ObjectKind::Full,
        "delta" => ObjectKind::Delta,
        _ => return None,
    };
    Some((oid, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::scratch_dir;

    fn fresh_store(tag: &str) -> Store {
        let dir = scratch_dir(&std::env::temp_dir(), tag);
        let mut store = Store::init(&dir, 4).unwrap();
        store.put(b"version one of some document", None).unwrap();
        store
            .put(b"version two of some document, edited", None)
            .unwrap();
        store
    }

    fn destroy(root: &Path) {
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn clean_store_is_clean() {
        let store = fresh_store("fsck-clean");
        let report = fsck(store.root(), false).unwrap();
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings
        );
        assert_eq!(report.versions_checked, 2);
        assert!(report.objects_checked >= 2);
        assert!(report.bytes_checked > 0);
        destroy(store.root());
    }

    #[test]
    fn debris_is_repairable_and_repair_converges() {
        let store = fresh_store("fsck-debris");
        let root = store.root().to_path_buf();
        drop(store);
        // Simulate a crash's debris: stage file, manifest.tmp, torn
        // journal tail, dangling object.
        std::fs::write(
            txn::stage_dir(&root).join(format!("{}.full", Oid::of(b"x"))),
            b"x",
        )
        .unwrap();
        std::fs::write(txn::manifest_tmp_path(&root), b"half a manifest").unwrap();
        let dangling = Oid::of(b"dangling");
        std::fs::write(
            txn::object_path(&root, dangling, ObjectKind::Delta),
            b"dangling",
        )
        .unwrap();
        use std::io::Write;
        let mut j = std::fs::OpenOptions::new()
            .append(true)
            .open(txn::journal_path(&root))
            .unwrap();
        j.write_all(&[9, 0, 0]).unwrap(); // half a frame
        drop(j);

        let report = fsck(&root, false).unwrap();
        assert!(!report.is_clean());
        assert!(!report.has_corruption());
        // Reporting twice is deterministic.
        assert_eq!(fsck(&root, false).unwrap(), report);

        let repaired = fsck(&root, true).unwrap();
        assert!(
            repaired.fully_repaired(),
            "findings: {:?}",
            repaired.findings
        );
        assert!(fsck(&root, false).unwrap().is_clean());
        // Committed data survived the repair.
        let mut reopened = Store::open(&root).unwrap();
        let head = reopened.head().unwrap().oid;
        assert_eq!(
            reopened.get(head).unwrap(),
            b"version two of some document, edited"
        );
        destroy(&root);
    }

    #[test]
    fn bit_flip_in_referenced_object_is_corruption() {
        let store = fresh_store("fsck-flip");
        let root = store.root().to_path_buf();
        drop(store);
        // Damage the first (full) object file.
        let names = txn::list_object_files(&root).unwrap();
        let full = names.iter().find(|n| n.ends_with(".full")).unwrap();
        let path = txn::objects_dir(&root).join(full);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        let report = fsck(&root, false).unwrap();
        assert!(report.has_corruption());
        assert!(report
            .findings
            .iter()
            .any(|f| f.code == "damaged-object" && f.severity == Severity::Corrupt));
        // Repair refuses to touch corruption.
        let after = fsck(&root, true).unwrap();
        assert!(after.has_corruption());
        destroy(&root);
    }

    #[test]
    fn manifest_damage_is_corruption() {
        let store = fresh_store("fsck-manifest");
        let root = store.root().to_path_buf();
        drop(store);
        let path = txn::manifest_path(&root);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("gen = ", "gen =  ");
        std::fs::write(&path, text).unwrap();
        let report = fsck(&root, false).unwrap();
        assert!(report.has_corruption());
        assert!(report.findings.iter().any(|f| f.code == "bad-manifest"));
        destroy(&root);
    }

    #[test]
    fn not_a_store() {
        let dir = scratch_dir(&std::env::temp_dir(), "fsck-notastore");
        std::fs::create_dir_all(&dir).unwrap();
        let report = fsck(&dir, false).unwrap();
        assert!(report.has_corruption());
        assert_eq!(report.findings[0].code, "bad-marker");
        destroy(&dir);
    }
}

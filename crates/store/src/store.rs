//! The store itself: versions in, versions out, deltas in between.
//!
//! A [`Store`] is a directory holding a version history as
//! content-addressed objects: each version is either a **full** image
//! or a **delta** edge over an earlier version, reconstructed on read
//! by [`Engine::apply_chain`]. Writes go through the transaction
//! protocol in [`txn`]; [`Store::compact`] keeps every
//! reconstruction chain no deeper than the store's depth cap by
//! collapsing long chains with [`Engine::compose`] — delta composition,
//! the same algebra the paper's in-place conversion builds on.

use crate::manifest::{EdgeRecord, Manifest, ObjectKind, ObjectRecord, VersionRecord};
use crate::oid::Oid;
use crate::txn::{self, Transaction};
use crate::StoreError;
use ipr_delta::codec::{self, Format};
use ipr_pipeline::Engine;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Default chain-depth cap for new stores.
pub const DEFAULT_DEPTH_CAP: u32 = 8;

/// Wire format stored delta objects use. Write-ordered varint codewords:
/// the most compact of the repo's formats, converted to in-place form at
/// read time by the engine.
pub const STORE_FORMAT: Format = Format::Ordered;

/// An open store session. Holds the committed manifest in memory and an
/// [`Engine`] whose scratch is reused across every diff, composition and
/// reconstruction of the session.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    manifest: Manifest,
    engine: Engine,
}

/// What [`Store::put`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PutOutcome {
    /// Content address of the version.
    pub oid: Oid,
    /// False when the version already existed (the put was a no-op).
    pub created: bool,
    /// How the version is stored: its own full image, or a delta edge.
    pub kind: ObjectKind,
    /// Bytes the new object file occupies (0 for a deduplicated put).
    pub stored_bytes: u64,
    /// Reconstruction chain depth of the version after the put.
    pub depth: u32,
}

/// What [`Store::compact`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Versions whose chains were collapsed.
    pub collapsed: usize,
    /// Object files dropped because nothing references them anymore.
    pub dropped_objects: usize,
    /// Deepest chain before compaction.
    pub max_depth_before: u32,
    /// Deepest chain after compaction (≤ the store's depth cap).
    pub max_depth_after: u32,
    /// Total referenced object bytes before compaction.
    pub bytes_before: u64,
    /// Total referenced object bytes after compaction.
    pub bytes_after: u64,
}

impl Store {
    /// Creates a new store at `root` (an absent or empty directory) with
    /// the given chain-depth cap, and opens it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when `root` is non-empty or creation fails.
    pub fn init(root: &Path, depth_cap: u32) -> Result<Store, StoreError> {
        let _span = ipr_trace::span("store.init");
        if depth_cap == 0 {
            return Err(StoreError::Config("depth cap must be at least 1".into()));
        }
        txn::init(root, depth_cap)?;
        Self::open(root)
    }

    /// Opens the store at `root`, loading and validating its committed
    /// manifest. Benign crash debris (stage files, `manifest.tmp`, an
    /// open journal `begin`, a torn journal tail) does not prevent
    /// opening — the manifest is the single source of truth and `fsck
    /// --repair` clears the debris.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the marker or manifest is damaged,
    /// [`StoreError::Io`] on read failure.
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        let _span = ipr_trace::span("store.open");
        txn::check_marker(root)?;
        let text = txn::read_manifest_text(root)?;
        let manifest = Manifest::parse(&text).map_err(|e| StoreError::Corrupt(e.to_string()))?;
        ipr_trace::add("store.open_versions", manifest.versions.len() as u64);
        Ok(Store {
            root: root.to_path_buf(),
            manifest,
            engine: Engine::new(),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The committed manifest.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The version log, oldest first.
    #[must_use]
    pub fn log(&self) -> &[VersionRecord] {
        &self.manifest.versions
    }

    /// The most recent version.
    #[must_use]
    pub fn head(&self) -> Option<&VersionRecord> {
        self.manifest.head()
    }

    /// Resolves an id prefix to the unique version it abbreviates.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownVersion`] when nothing matches,
    /// [`StoreError::AmbiguousPrefix`] when more than one version does.
    pub fn resolve_prefix(&self, prefix: &str) -> Result<Oid, StoreError> {
        let mut matches = self
            .manifest
            .versions
            .iter()
            .filter(|v| v.oid.matches_prefix(prefix))
            .map(|v| v.oid);
        match (matches.next(), matches.next()) {
            (Some(oid), None) => Ok(oid),
            (Some(_), Some(_)) => Err(StoreError::AmbiguousPrefix(prefix.into())),
            (None, _) => Err(StoreError::UnknownVersion(prefix.into())),
        }
    }

    /// Stores `bytes` as a new version. With a parent (explicit, or
    /// defaulting to the current head) the version is stored as a delta
    /// edge when that is smaller than the full image; the first version,
    /// or one whose delta would not pay for itself, is stored full.
    /// Storing bytes that already exist as a version is a committed
    /// no-op.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownVersion`] for an unknown explicit parent;
    /// I/O, encoding or engine failures otherwise. On error the store
    /// on disk still holds its previous committed state.
    pub fn put(&mut self, bytes: &[u8], parent: Option<Oid>) -> Result<PutOutcome, StoreError> {
        let _span = ipr_trace::span("store.put");
        ipr_trace::add("store.put_bytes", bytes.len() as u64);
        let oid = Oid::of(bytes);
        if let Some(existing) = self.manifest.version(oid) {
            let depth = self.manifest.depth(existing.oid).unwrap_or(0);
            return Ok(PutOutcome {
                oid,
                created: false,
                kind: if self.manifest.edges.contains_key(&oid) {
                    ObjectKind::Delta
                } else {
                    ObjectKind::Full
                },
                stored_bytes: 0,
                depth,
            });
        }
        let parent = match parent {
            Some(p) => {
                if self.manifest.version(p).is_none() {
                    return Err(StoreError::UnknownVersion(p.to_string()));
                }
                Some(p)
            }
            None => self.head().map(|v| v.oid),
        };
        // Diff against the parent and keep the delta only if it is
        // smaller than storing the version outright.
        let delta = match parent {
            Some(p) => {
                let parent_bytes = self.get(p)?;
                let script = self.engine.diff(&parent_bytes, bytes);
                let encoded = codec::encode_checked(&script, STORE_FORMAT, bytes)?;
                self.engine.recycle_script(script);
                if encoded.len() < bytes.len() {
                    Some((p, encoded))
                } else {
                    None
                }
            }
            None => None,
        };

        let mut next = self.manifest.clone();
        next.gen += 1;
        let crc = ipr_delta::checksum::crc32(bytes);
        next.versions.push(VersionRecord {
            seq: next.versions.len() as u64 + 1,
            oid,
            parent,
            len: bytes.len() as u64,
            crc,
        });
        let mut txn = Transaction::begin(&self.root, next.gen)?;
        let staged = self.stage_put(&mut txn, &mut next, oid, delta.as_ref(), bytes);
        let (kind, stored_bytes) = match staged {
            Ok(v) => v,
            Err(e) => {
                // Best-effort unwind; anything it misses is fsck fodder.
                let _ = txn.abort();
                return Err(e);
            }
        };
        debug_assert!(next.validate().is_ok());
        self.commit(txn, next)?;
        let depth = self.manifest.depth(oid).unwrap_or(0);
        ipr_trace::add("store.delta_bytes", stored_bytes);
        Ok(PutOutcome {
            oid,
            created: true,
            kind,
            stored_bytes,
            depth,
        })
    }

    /// Reconstructs a version's bytes, walking its delta chain from the
    /// base full object through [`Engine::apply_chain`], and verifies
    /// length and CRC against the version record.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownVersion`] for an unknown id;
    /// [`StoreError::Corrupt`] when an object on disk or the
    /// reconstruction disagrees with the manifest.
    pub fn get(&mut self, oid: Oid) -> Result<Vec<u8>, StoreError> {
        let _span = ipr_trace::span("store.get");
        let version = *self
            .manifest
            .version(oid)
            .ok_or_else(|| StoreError::UnknownVersion(oid.to_string()))?;
        let chain = self.manifest.chain(oid).expect("version has a chain");
        ipr_trace::add("store.chain_depth", chain.deltas.len() as u64);
        let base = *self
            .manifest
            .version(chain.base)
            .expect("validated manifest: chain base is a version");
        let mut buf = txn::read_object(&self.root, base.oid, ObjectKind::Full, base.len, base.crc)?;
        if !chain.deltas.is_empty() {
            let mut scripts = Vec::with_capacity(chain.deltas.len());
            for delta_oid in &chain.deltas {
                let record = *self
                    .manifest
                    .objects
                    .get(delta_oid)
                    .expect("validated manifest: edge deltas are objects");
                let bytes = txn::read_object(
                    &self.root,
                    *delta_oid,
                    ObjectKind::Delta,
                    record.len,
                    record.crc,
                )?;
                scripts.push(codec::decode(&bytes)?.script);
            }
            self.engine.apply_chain(&scripts, &mut buf)?;
            for script in scripts {
                self.engine.recycle_script(script);
            }
        }
        if buf.len() as u64 != version.len || ipr_delta::checksum::crc32(&buf) != version.crc {
            return Err(StoreError::Corrupt(format!(
                "reconstruction of {oid} does not match its version record"
            )));
        }
        Ok(buf)
    }

    /// Collapses every reconstruction chain deeper than the store's
    /// depth cap into a single composed delta over its base
    /// ([`Engine::compose`]), then drops object files nothing references
    /// anymore. Reconstruction results are byte-identical before and
    /// after. Committing the new manifest and deleting old objects are
    /// separate steps: a crash between them leaves only dangling objects
    /// that `fsck --repair` removes.
    ///
    /// # Errors
    ///
    /// I/O, decoding or composition failures; the committed state is
    /// never left between generations.
    pub fn compact(&mut self) -> Result<CompactReport, StoreError> {
        let _span = ipr_trace::span("store.compact");
        let cap = self.manifest.depth_cap;
        let before_live = self.manifest.referenced_objects();
        let mut report = CompactReport {
            max_depth_before: self.manifest.max_depth(),
            bytes_before: live_bytes(&self.manifest, &before_live),
            ..CompactReport::default()
        };
        let mut next = self.manifest.clone();
        // Versions in seq order: edges point backward, so by the time a
        // version is visited its chain (in `next`) reflects every
        // collapse already decided, and a greedy "depth > cap → depth 1"
        // pass bounds all final depths by the cap.
        let mut staged: Vec<(Oid, Vec<u8>)> = Vec::new();
        let order: Vec<Oid> = next.versions.iter().map(|v| v.oid).collect();
        for oid in order {
            let chain = next.chain(oid).expect("version has a chain");
            if chain.deltas.len() as u32 <= cap {
                continue;
            }
            let version = *next.version(oid).expect("version exists");
            let mut scripts = Vec::with_capacity(chain.deltas.len());
            for delta_oid in &chain.deltas {
                let record = *next
                    .objects
                    .get(delta_oid)
                    .expect("validated manifest: edge deltas are objects");
                let bytes = match staged.iter().find(|(o, _)| o == delta_oid) {
                    Some((_, bytes)) => bytes.clone(),
                    None => txn::read_object(
                        &self.root,
                        *delta_oid,
                        ObjectKind::Delta,
                        record.len,
                        record.crc,
                    )?,
                };
                scripts.push(codec::decode(&bytes)?.script);
            }
            let composed = self.engine.compose(&scripts)?.into_write_ordered();
            for script in scripts {
                self.engine.recycle_script(script);
            }
            let encoded = codec::encode_with_crc(&composed, STORE_FORMAT, version.crc)?;
            self.engine.recycle_script(composed);
            let delta_oid = Oid::of(&encoded);
            next.objects.insert(
                delta_oid,
                ObjectRecord {
                    kind: ObjectKind::Delta,
                    len: encoded.len() as u64,
                    crc: ipr_delta::checksum::crc32(&encoded),
                },
            );
            next.edges.insert(
                oid,
                EdgeRecord {
                    from: chain.base,
                    delta: delta_oid,
                },
            );
            staged.push((delta_oid, encoded));
            report.collapsed += 1;
        }
        if report.collapsed == 0 {
            report.max_depth_after = report.max_depth_before;
            report.bytes_after = report.bytes_before;
            return Ok(report);
        }
        // Forget manifest entries for objects the collapsed chains no
        // longer reach, but keep their files until after commit.
        let after_live = next.referenced_objects();
        next.objects.retain(|oid, _| after_live.contains(oid));
        next.gen += 1;
        debug_assert!(next.validate().is_ok());

        let mut txn = Transaction::begin(&self.root, next.gen)?;
        let mut stage_err = None;
        for (oid, bytes) in &staged {
            if before_live.contains(oid) {
                continue; // composition reproduced an existing object
            }
            if let Err(e) = txn.stage_object(*oid, ObjectKind::Delta, bytes) {
                stage_err = Some(e);
                break;
            }
        }
        if let Some(e) = stage_err {
            let _ = txn.abort();
            return Err(e.into());
        }
        self.commit(txn, next)?;

        // Only now is it safe to delete: the committed manifest no
        // longer references the old chain objects.
        for oid in before_live.difference(&after_live) {
            let name = txn::object_file_name(*oid, ObjectKind::Delta);
            if txn::remove_object_file(&self.root, &name).is_ok() {
                report.dropped_objects += 1;
            } else {
                // A full object fell out of reach (its version gained an
                // edge? cannot happen in compaction) — or the file was
                // already gone. Either way fsck will account for it.
                let name = txn::object_file_name(*oid, ObjectKind::Full);
                if txn::remove_object_file(&self.root, &name).is_ok() {
                    report.dropped_objects += 1;
                }
            }
        }
        report.max_depth_after = self.manifest.max_depth();
        report.bytes_after = live_bytes(&self.manifest, &after_live);
        ipr_trace::add("store.compact_collapsed", report.collapsed as u64);
        ipr_trace::add("store.compact_dropped", report.dropped_objects as u64);
        Ok(report)
    }

    /// Stages whatever a put needs on disk — the encoded delta, or the
    /// full image — and records it (plus any edge) in `next`.
    fn stage_put(
        &self,
        txn: &mut Transaction,
        next: &mut Manifest,
        oid: Oid,
        delta: Option<&(Oid, Vec<u8>)>,
        bytes: &[u8],
    ) -> Result<(ObjectKind, u64), StoreError> {
        match delta {
            Some((from, encoded)) => {
                let delta_oid = Oid::of(encoded);
                let stored = self.stage_if_new(txn, next, delta_oid, ObjectKind::Delta, encoded)?;
                next.edges.insert(
                    oid,
                    EdgeRecord {
                        from: *from,
                        delta: delta_oid,
                    },
                );
                Ok((ObjectKind::Delta, stored))
            }
            None => {
                let stored = self.stage_if_new(txn, next, oid, ObjectKind::Full, bytes)?;
                Ok((ObjectKind::Full, stored))
            }
        }
    }

    /// Stages `bytes` under `oid` unless the manifest already records
    /// that object (content addressing deduplicates), recording it in
    /// `next` either way. Returns the bytes newly stored.
    fn stage_if_new(
        &self,
        txn: &mut Transaction,
        next: &mut Manifest,
        oid: Oid,
        kind: ObjectKind,
        bytes: &[u8],
    ) -> Result<u64, StoreError> {
        if let Some(existing) = next.objects.get(&oid) {
            if existing.kind == kind {
                return Ok(0);
            }
        }
        txn.stage_object(oid, kind, bytes)?;
        next.objects.insert(
            oid,
            ObjectRecord {
                kind,
                len: bytes.len() as u64,
                crc: ipr_delta::checksum::crc32(bytes),
            },
        );
        Ok(bytes.len() as u64)
    }

    /// Commits `txn` with `next` as the new manifest; on success the
    /// session adopts it. On failure the transaction is aborted
    /// (best-effort) and the session keeps the old committed state.
    fn commit(&mut self, txn: Transaction, next: Manifest) -> Result<(), StoreError> {
        debug_assert_eq!(txn.gen(), next.gen);
        match txn.commit(&next) {
            Ok(()) => {
                self.manifest = next;
                Ok(())
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }
}

/// Total object bytes of the `live` set per the manifest's records.
fn live_bytes(manifest: &Manifest, live: &BTreeSet<Oid>) -> u64 {
    live.iter()
        .filter_map(|oid| manifest.objects.get(oid))
        .map(|o| o.len)
        .sum()
}

/// Convenience for tests and benches: a throwaway store directory name
/// under `base`, unique per process and call.
#[doc(hidden)]
pub fn scratch_dir(base: &Path, tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    base.join(format!("ipr-store-{tag}-{}-{n}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn versions(n: usize) -> Vec<Vec<u8>> {
        // A drifting document: each version edits the previous.
        let mut v = b"the quick brown fox jumps over the lazy dog. ".repeat(40);
        let mut out = vec![v.clone()];
        for i in 1..n {
            let at = (i * 97) % (v.len() - 8);
            v[at..at + 5].copy_from_slice(b"EDIT!");
            v.extend_from_slice(format!("tail {i}\n").as_bytes());
            out.push(v.clone());
        }
        out
    }

    fn temp_store(tag: &str, depth_cap: u32) -> Store {
        let dir = scratch_dir(&std::env::temp_dir(), tag);
        Store::init(&dir, depth_cap).unwrap()
    }

    fn destroy(store: Store) {
        let root = store.root().to_path_buf();
        drop(store);
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn put_get_round_trip_with_chains() {
        let mut store = temp_store("roundtrip", 8);
        let history = versions(6);
        let mut oids = Vec::new();
        for v in &history {
            let out = store.put(v, None).unwrap();
            assert!(out.created);
            oids.push(out.oid);
        }
        assert_eq!(store.log().len(), 6);
        // First version full, the rest deltas in a chain.
        assert_eq!(store.manifest().depth(oids[0]), Some(0));
        assert_eq!(store.manifest().depth(oids[5]), Some(5));
        for (oid, want) in oids.iter().zip(&history) {
            assert_eq!(&store.get(*oid).unwrap(), want);
        }
        // Reopen sees the same state.
        let mut reopened = Store::open(store.root()).unwrap();
        for (oid, want) in oids.iter().zip(&history) {
            assert_eq!(&reopened.get(*oid).unwrap(), want);
        }
        destroy(store);
    }

    #[test]
    fn duplicate_put_is_a_noop() {
        let mut store = temp_store("dedupe", 8);
        let v = versions(1).remove(0);
        let first = store.put(&v, None).unwrap();
        let gen = store.manifest().gen;
        let second = store.put(&v, None).unwrap();
        assert!(first.created);
        assert!(!second.created);
        assert_eq!(second.stored_bytes, 0);
        assert_eq!(first.oid, second.oid);
        assert_eq!(store.manifest().gen, gen, "no-op put commits nothing");
        destroy(store);
    }

    #[test]
    fn incompressible_version_stored_full() {
        let mut store = temp_store("full", 8);
        let a = versions(1).remove(0);
        store.put(&a, None).unwrap();
        // A second version sharing nothing with the first: the delta
        // cannot beat the full image.
        let mut rng_state = 0x1234_5678_u64;
        let b: Vec<u8> = (0..a.len())
            .map(|_| {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (rng_state >> 56) as u8
            })
            .collect();
        let out = store.put(&b, None).unwrap();
        assert_eq!(out.kind, ObjectKind::Full);
        assert_eq!(out.depth, 0);
        assert_eq!(&store.get(out.oid).unwrap(), &b);
        destroy(store);
    }

    #[test]
    fn explicit_parent_branches_history() {
        let mut store = temp_store("branch", 8);
        let history = versions(3);
        let base = store.put(&history[0], None).unwrap().oid;
        store.put(&history[1], None).unwrap();
        // Branch the third version off the first, not the head.
        let out = store.put(&history[2], Some(base)).unwrap();
        assert_eq!(store.manifest().edges[&out.oid].from, base);
        assert_eq!(&store.get(out.oid).unwrap(), &history[2]);
        // Unknown parent is rejected.
        let bogus = Oid::of(b"nope");
        assert!(matches!(
            store.put(b"data", Some(bogus)),
            Err(StoreError::UnknownVersion(_))
        ));
        destroy(store);
    }

    #[test]
    fn compact_caps_depth_and_preserves_bytes() {
        let mut store = temp_store("compact", 2);
        let history = versions(9);
        let mut oids = Vec::new();
        for v in &history {
            oids.push(store.put(v, None).unwrap().oid);
        }
        assert_eq!(store.manifest().max_depth(), 8);
        let report = store.compact().unwrap();
        assert!(report.collapsed > 0);
        assert!(report.dropped_objects > 0);
        assert_eq!(report.max_depth_before, 8);
        assert!(report.max_depth_after <= 2);
        assert_eq!(store.manifest().max_depth(), report.max_depth_after);
        for (oid, want) in oids.iter().zip(&history) {
            assert_eq!(&store.get(*oid).unwrap(), want, "post-compaction bytes");
        }
        // Idempotent: a second pass finds nothing to do.
        let again = store.compact().unwrap();
        assert_eq!(again.collapsed, 0);
        assert_eq!(again.max_depth_after, report.max_depth_after);
        // Reopen and verify on-disk state (no dangling manifest refs).
        let mut reopened = Store::open(store.root()).unwrap();
        for (oid, want) in oids.iter().zip(&history) {
            assert_eq!(&reopened.get(*oid).unwrap(), want);
        }
        destroy(store);
    }

    #[test]
    fn prefix_resolution() {
        let mut store = temp_store("prefix", 8);
        let oid = store.put(b"some version", None).unwrap().oid;
        let hex = oid.to_string();
        assert_eq!(store.resolve_prefix(&hex[..8]).unwrap(), oid);
        assert_eq!(store.resolve_prefix(&hex).unwrap(), oid);
        assert!(matches!(
            store.resolve_prefix("ffffffff"),
            Err(StoreError::UnknownVersion(_)) | Err(StoreError::AmbiguousPrefix(_))
        ));
        destroy(store);
    }

    #[test]
    fn init_rejects_nonempty_dir_and_zero_cap() {
        let dir = scratch_dir(&std::env::temp_dir(), "init");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("junk"), b"x").unwrap();
        assert!(Store::init(&dir, 8).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
        let dir2 = scratch_dir(&std::env::temp_dir(), "cap0");
        assert!(matches!(Store::init(&dir2, 0), Err(StoreError::Config(_))));
    }
}

//! # ipr-store — a versioned, crash-safe delta object store
//!
//! The paper's delta algebra (diff, in-place conversion, composition)
//! makes a version history cheap to *store*: keep one full image and a
//! chain of deltas, rebuild any version by applying the chain. This
//! crate turns that into a durable on-disk artifact:
//!
//! * **Content addressing** — every object (full version or encoded
//!   delta) is named by the 128-bit strong hash of its bytes
//!   ([`Oid`]), so identical content deduplicates and damage is
//!   detectable by rehashing.
//! * **Crash-safe transactions** — all mutations stage into temp files
//!   and become visible through one atomic manifest rename, bracketed
//!   by a CRC-framed journal. A crash at *any* instruction leaves the
//!   previous or the next committed state, never a blend; the CI
//!   `store-smoke` job proves this by killing a child process at every
//!   fsync/rename boundary and checking the reopened store.
//! * **Bounded chains** — [`Store::compact`] collapses reconstruction
//!   chains deeper than the configured cap into single composed deltas
//!   ([`ipr_pipeline::Engine::compose`]), trading bytes for bounded
//!   read cost, with byte-identical reconstruction before and after.
//! * **fsck** — [`fsck`](fsck()) sweeps marker, manifest, journal,
//!   staging area and every object, classifies findings as repairable
//!   crash debris vs. real corruption, optionally repairs the former,
//!   and finishes with a full reconstruction check of every version.
//!
//! ```
//! use ipr_store::Store;
//!
//! let dir = ipr_store::scratch_dir(&std::env::temp_dir(), "doc");
//! let mut store = Store::init(&dir, 8)?;
//! let v1 = store.put(b"the first version of a file", None)?;
//! let v2 = store.put(b"the second version of a file", None)?;
//! assert_eq!(store.get(v2.oid)?, b"the second version of a file");
//! assert_eq!(store.get(v1.oid)?, b"the first version of a file");
//!
//! let report = ipr_store::fsck(store.root(), false)?;
//! assert!(report.is_clean());
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The on-disk format, the crash-safety argument and a worked `fsck`
//! example are documented in `docs/STORE.md`.

pub mod fault;
pub mod fsck;
pub mod journal;
pub mod manifest;
pub mod oid;
pub mod store;
#[doc(hidden)]
pub mod txn;

pub use fsck::{fsck, Finding, FsckReport, Severity};
pub use manifest::{Chain, EdgeRecord, Manifest, ObjectKind, ObjectRecord, VersionRecord};
pub use oid::{Oid, ParseOidError};
pub use store::{scratch_dir, CompactReport, PutOutcome, Store, DEFAULT_DEPTH_CAP, STORE_FORMAT};

use std::fmt;
use std::io;

/// Any failure of a store operation.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (including injected faults).
    Io(io::Error),
    /// Committed state on disk is damaged.
    Corrupt(String),
    /// No version matches the given id or prefix.
    UnknownVersion(String),
    /// An id prefix matches more than one version.
    AmbiguousPrefix(String),
    /// Invalid store configuration (e.g. a zero depth cap).
    Config(String),
    /// A delta failed to encode.
    Encode(ipr_delta::codec::EncodeError),
    /// A stored delta failed to decode.
    Decode(ipr_delta::codec::DecodeError),
    /// The engine failed to compose, convert or apply a chain.
    Engine(ipr_pipeline::EngineError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::UnknownVersion(id) => write!(f, "no version matches `{id}`"),
            StoreError::AmbiguousPrefix(p) => write!(f, "prefix `{p}` is ambiguous"),
            StoreError::Config(m) => write!(f, "store config: {m}"),
            StoreError::Encode(e) => write!(f, "delta encode: {e}"),
            StoreError::Decode(e) => write!(f, "delta decode: {e}"),
            StoreError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Encode(e) => Some(e),
            StoreError::Decode(e) => Some(e),
            StoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ipr_delta::codec::EncodeError> for StoreError {
    fn from(e: ipr_delta::codec::EncodeError) -> Self {
        StoreError::Encode(e)
    }
}

impl From<ipr_delta::codec::DecodeError> for StoreError {
    fn from(e: ipr_delta::codec::DecodeError) -> Self {
        StoreError::Decode(e)
    }
}

impl From<ipr_pipeline::EngineError> for StoreError {
    fn from(e: ipr_pipeline::EngineError) -> Self {
        StoreError::Engine(e)
    }
}

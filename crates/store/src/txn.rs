//! Crash-safe transactions: stage, swap, journal.
//!
//! Every mutation of the store — `put`, `compact`, `init` itself —
//! funnels through one protocol whose single atomic step is a rename:
//!
//! 1. journal `begin <gen>` (fsynced) — declares intent;
//! 2. write each new object to `stage/` and fsync it — content exists
//!    but is invisible;
//! 3. rename staged objects into `objects/` — content-addressed names,
//!    so a half-finished batch only adds files the old manifest never
//!    references;
//! 4. fsync `objects/` so the new names are durable;
//! 5. write the new manifest to `manifest.tmp`, fsync it;
//! 6. **rename `manifest.tmp` → `manifest` — the commit point.** Before
//!    this instant a reopen sees the old state; after it, the new one;
//! 7. fsync the store root so the swap itself is durable;
//! 8. journal `commit <gen>` (fsynced).
//!
//! A crash strictly before step 6 leaves the old manifest authoritative
//! and at worst some stage files, a `manifest.tmp`, unreferenced
//! objects, and an open `begin` in the journal — all of which `fsck
//! --repair` sweeps away without touching committed data. A crash at or
//! after step 6 leaves the new manifest fully in force, missing only
//! its journal `commit`, which repair appends. There is no interleaving
//! in which a reader observes a blend, because the only mutation of a
//! *referenced* name is the one atomic rename.
//!
//! All fsyncs and renames go through [`fault`], so the crash sweep in
//! `tests/store_crash.rs` can kill the process at every numbered
//! boundary of this protocol and CI can prove the claim above.

use crate::fault;
use crate::journal::{self, Record};
use crate::manifest::{Manifest, ObjectKind};
use crate::oid::Oid;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Store marker file name.
pub(crate) const MARKER_FILE: &str = "STORE";

/// Store marker contents, versioning the on-disk format.
pub(crate) const MARKER: &str = "ipr-store/1\n";

pub(crate) fn marker_path(root: &Path) -> PathBuf {
    root.join(MARKER_FILE)
}

pub(crate) fn manifest_path(root: &Path) -> PathBuf {
    root.join("manifest")
}

pub(crate) fn manifest_tmp_path(root: &Path) -> PathBuf {
    root.join("manifest.tmp")
}

pub(crate) fn journal_path(root: &Path) -> PathBuf {
    root.join("journal")
}

pub(crate) fn objects_dir(root: &Path) -> PathBuf {
    root.join("objects")
}

pub(crate) fn stage_dir(root: &Path) -> PathBuf {
    root.join("stage")
}

pub(crate) fn object_file_name(oid: Oid, kind: ObjectKind) -> String {
    format!("{oid}.{}", kind.extension())
}

pub(crate) fn object_path(root: &Path, oid: Oid, kind: ObjectKind) -> PathBuf {
    objects_dir(root).join(object_file_name(oid, kind))
}

pub(crate) fn stage_path(root: &Path, oid: Oid, kind: ObjectKind) -> PathBuf {
    stage_dir(root).join(object_file_name(oid, kind))
}

/// One open transaction. Created by [`Transaction::begin`]; must end in
/// [`Transaction::commit`] or [`Transaction::abort`]. Dropping an
/// unresolved transaction leaves its staging debris for `fsck --repair`
/// — exactly what a crash would do.
pub(crate) struct Transaction {
    root: PathBuf,
    gen: u64,
    staged: Vec<(Oid, ObjectKind)>,
}

impl Transaction {
    /// Opens a transaction targeting generation `gen`: journals `begin`
    /// durably before anything else may touch disk.
    pub(crate) fn begin(root: &Path, gen: u64) -> io::Result<Transaction> {
        journal::append(&journal_path(root), Record::Begin(gen))?;
        Ok(Transaction {
            root: root.to_path_buf(),
            gen,
            staged: Vec::new(),
        })
    }

    /// The generation this transaction will commit.
    pub(crate) fn gen(&self) -> u64 {
        self.gen
    }

    /// Writes one object's bytes into `stage/` and fsyncs them. The
    /// object stays invisible until commit renames it into `objects/`.
    pub(crate) fn stage_object(
        &mut self,
        oid: Oid,
        kind: ObjectKind,
        bytes: &[u8],
    ) -> io::Result<()> {
        let path = stage_path(&self.root, oid, kind);
        let mut file = File::create(&path)?;
        file.write_all(bytes)?;
        fault::fsync_file(&file, &format!("stage {}", object_file_name(oid, kind)))?;
        self.staged.push((oid, kind));
        Ok(())
    }

    /// Runs the commit protocol for `manifest` (which must already carry
    /// this transaction's generation). On return the new state is
    /// durable and journaled.
    pub(crate) fn commit(self, manifest: &Manifest) -> io::Result<()> {
        assert_eq!(manifest.gen, self.gen, "manifest generation mismatch");
        let objects = objects_dir(&self.root);
        for &(oid, kind) in &self.staged {
            fault::rename(
                &stage_path(&self.root, oid, kind),
                &object_path(&self.root, oid, kind),
            )?;
        }
        if !self.staged.is_empty() {
            fault::fsync_dir(&objects)?;
        }
        let tmp = manifest_tmp_path(&self.root);
        let mut file = File::create(&tmp)?;
        file.write_all(manifest.serialize().as_bytes())?;
        fault::fsync_file(&file, "manifest.tmp")?;
        drop(file);
        // The commit point: atomically replace the manifest.
        fault::rename(&tmp, &manifest_path(&self.root))?;
        fault::fsync_dir(&self.root)?;
        journal::append(&journal_path(&self.root), Record::Commit(self.gen))
    }

    /// Unwinds the transaction: deletes its staged files and journals
    /// `abort`. Cleanup is best-effort — anything left behind is the
    /// same debris a crash leaves, and `fsck --repair` removes it.
    pub(crate) fn abort(self) -> io::Result<()> {
        for &(oid, kind) in &self.staged {
            let _ = std::fs::remove_file(stage_path(&self.root, oid, kind));
        }
        journal::append(&journal_path(&self.root), Record::Abort(self.gen))
    }
}

/// Creates the store skeleton at `root` and commits generation 1 with an
/// empty manifest. `root` may exist but must be an empty or absent
/// directory.
pub(crate) fn init(root: &Path, depth_cap: u32) -> io::Result<()> {
    match std::fs::read_dir(root) {
        Ok(mut entries) => {
            if entries.next().is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("{} exists and is not empty", root.display()),
                ));
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => std::fs::create_dir_all(root)?,
        Err(e) => return Err(e),
    }
    std::fs::create_dir(objects_dir(root))?;
    std::fs::create_dir(stage_dir(root))?;
    let mut marker = File::create(marker_path(root))?;
    marker.write_all(MARKER.as_bytes())?;
    fault::fsync_file(&marker, MARKER_FILE)?;
    let mut manifest = Manifest::new(depth_cap);
    manifest.gen = 1;
    let txn = Transaction::begin(root, 1)?;
    txn.commit(&manifest)
}

/// Reads and verifies the marker file.
pub(crate) fn check_marker(root: &Path) -> io::Result<()> {
    let read = std::fs::read_to_string(marker_path(root))
        .map_err(|e| io::Error::new(e.kind(), format!("{} is not a store: {e}", root.display())))?;
    if read != MARKER {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} has an unrecognized store marker", root.display()),
        ));
    }
    Ok(())
}

/// Reads one object file, verifying its content address and recorded
/// length/CRC before returning the bytes.
pub(crate) fn read_object(
    root: &Path,
    oid: Oid,
    kind: ObjectKind,
    len: u64,
    crc: u32,
) -> io::Result<Vec<u8>> {
    let path = object_path(root, oid, kind);
    let bytes = std::fs::read(&path)?;
    if bytes.len() as u64 != len
        || ipr_delta::checksum::crc32(&bytes) != crc
        || Oid::of(&bytes) != oid
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("object {} is damaged on disk", path.display()),
        ));
    }
    Ok(bytes)
}

/// Appends a journal record without a surrounding transaction — used by
/// `fsck --repair` to resolve an open `begin`.
pub(crate) fn journal_resolve(root: &Path, record: Record) -> io::Result<()> {
    journal::append(&journal_path(root), record)
}

/// Truncates a torn journal tail — used by `fsck --repair`.
pub(crate) fn journal_truncate(root: &Path, intact_len: u64) -> io::Result<()> {
    journal::truncate_to(&journal_path(root), intact_len)
}

/// Opens the journal for reading. Missing file reads as empty.
pub(crate) fn journal_scan(root: &Path) -> io::Result<journal::Scan> {
    journal::scan_file(&journal_path(root))
}

/// Reads the committed manifest text.
pub(crate) fn read_manifest_text(root: &Path) -> io::Result<String> {
    std::fs::read_to_string(manifest_path(root))
}

/// Lists the file names currently present in `objects/`.
pub(crate) fn list_object_files(root: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(objects_dir(root))? {
        names.push(entry?.file_name().to_string_lossy().into_owned());
    }
    names.sort();
    Ok(names)
}

/// Lists the file names currently present in `stage/`.
pub(crate) fn list_stage_files(root: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    match std::fs::read_dir(stage_dir(root)) {
        Ok(entries) => {
            for entry in entries {
                names.push(entry?.file_name().to_string_lossy().into_owned());
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    names.sort();
    Ok(names)
}

/// Deletes an object file; used by compaction (after commit) and by
/// `fsck --repair` for dangling objects.
pub(crate) fn remove_object_file(root: &Path, name: &str) -> io::Result<()> {
    std::fs::remove_file(objects_dir(root).join(name))
}

/// Deletes a staged file; used by `fsck --repair`.
pub(crate) fn remove_stage_file(root: &Path, name: &str) -> io::Result<()> {
    std::fs::remove_file(stage_dir(root).join(name))
}

/// Deletes a leftover `manifest.tmp`; used by `fsck --repair`.
pub(crate) fn remove_manifest_tmp(root: &Path) -> io::Result<bool> {
    match std::fs::remove_file(manifest_tmp_path(root)) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

/// Whether a leftover `manifest.tmp` exists.
pub(crate) fn manifest_tmp_exists(root: &Path) -> bool {
    manifest_tmp_path(root).exists()
}

/// Ensures `stage/` exists (repair after a crash that removed it, or an
/// older copy of the store).
pub(crate) fn ensure_stage_dir(root: &Path) -> io::Result<()> {
    match std::fs::create_dir(stage_dir(root)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(()),
        Err(e) => Err(e),
    }
}

/// Writes arbitrary bytes through an [`OpenOptions`] truncating write —
/// only used by tests to simulate external damage.
#[doc(hidden)]
pub fn overwrite_for_tests(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = OpenOptions::new().write(true).truncate(true).open(path)?;
    file.write_all(bytes)
}

//! The transaction journal: a framed, append-only intent log.
//!
//! The manifest swap is what makes a commit *real*; the journal records
//! what the store was *trying* to do around it, so a reopen after a
//! crash can tell "mid-transaction debris" from "corruption". Each
//! record is a CRC-framed text payload:
//!
//! ```text
//! [u32 le payload length][payload bytes][u32 le crc32(payload)]
//! ```
//!
//! with payloads `begin <gen>`, `commit <gen>` and `abort <gen>`. A
//! transaction appends `begin` (fsynced) before touching anything,
//! `commit` after the manifest swap is durable, and `abort` when it
//! unwinds cleanly. A crash can therefore leave exactly two benign
//! shapes the scanner recognises:
//!
//! * a **torn tail** — the final frame is truncated or fails its CRC
//!   because the crash landed mid-append. Everything before it is
//!   intact; repair truncates the tail.
//! * an **open transaction** — a trailing `begin <g>` without its
//!   `commit`/`abort`. Whether generation `g` actually committed is
//!   decided by the manifest (the single source of truth), not the
//!   journal; repair appends the missing resolution record.
//!
//! Anything else (a bad CRC *before* the last frame, garbage payloads)
//! is real corruption and is reported as such by `fsck`.

use crate::fault;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

/// One journal record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Record {
    /// A transaction targeting `gen` has started.
    Begin(u64),
    /// The manifest swap to `gen` is durable.
    Commit(u64),
    /// The transaction targeting `gen` unwound without committing.
    Abort(u64),
}

impl Record {
    /// The generation this record refers to.
    #[must_use]
    pub fn gen(self) -> u64 {
        match self {
            Record::Begin(g) | Record::Commit(g) | Record::Abort(g) => g,
        }
    }

    fn payload(self) -> String {
        match self {
            Record::Begin(g) => format!("begin {g}"),
            Record::Commit(g) => format!("commit {g}"),
            Record::Abort(g) => format!("abort {g}"),
        }
    }

    fn parse(payload: &[u8]) -> Option<Record> {
        let text = std::str::from_utf8(payload).ok()?;
        let (verb, gen) = text.split_once(' ')?;
        let gen = gen.parse().ok()?;
        match verb {
            "begin" => Some(Record::Begin(gen)),
            "commit" => Some(Record::Commit(gen)),
            "abort" => Some(Record::Abort(gen)),
            _ => None,
        }
    }

    /// The framed wire bytes of this record.
    #[must_use]
    pub fn frame(self) -> Vec<u8> {
        let payload = self.payload().into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&ipr_delta::checksum::crc32(&payload).to_le_bytes());
        out
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.payload())
    }
}

/// What a journal scan found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scan {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// Byte offset where the intact prefix ends. Equal to the file
    /// length for a clean journal; shorter when the tail is torn.
    pub intact_len: u64,
    /// Whether bytes past `intact_len` exist (a torn final frame — the
    /// expected residue of a crash mid-append).
    pub torn_tail: bool,
}

impl Scan {
    /// The trailing `begin` left open by a crash, if any: the last
    /// record is a `Begin` with no resolution after it.
    #[must_use]
    pub fn open_transaction(&self) -> Option<u64> {
        match self.records.last() {
            Some(Record::Begin(g)) => Some(*g),
            _ => None,
        }
    }
}

/// A journal whose intact prefix is itself inconsistent — damage no
/// crash of a correct writer can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalError {
    /// Byte offset of the offending frame.
    pub offset: u64,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "journal offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JournalError {}

/// Largest payload the scanner will accept; real payloads are tens of
/// bytes, so a huge declared length means the length word itself is
/// damaged.
const MAX_PAYLOAD: u32 = 4096;

/// Scans raw journal bytes into records, stopping cleanly at a torn
/// final frame.
///
/// # Errors
///
/// [`JournalError`] when an *interior* frame is damaged or a payload is
/// unparseable — states a crashed-but-correct writer cannot produce.
pub fn scan(bytes: &[u8]) -> Result<Scan, JournalError> {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.is_empty() {
            return Ok(Scan {
                records,
                intact_len: at as u64,
                torn_tail: false,
            });
        }
        let torn = |records: Vec<Record>| {
            Ok(Scan {
                records,
                intact_len: at as u64,
                torn_tail: true,
            })
        };
        if rest.len() < 4 {
            return torn(records);
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if len > MAX_PAYLOAD {
            // An absurd length word in the *final* frame is a torn tail;
            // anywhere it is followed by further intact data it would
            // already have desynchronized the stream, so treating it as
            // tail damage is the only consistent reading.
            return torn(records);
        }
        let frame_len = 4 + len as usize + 4;
        if rest.len() < frame_len {
            return torn(records);
        }
        let payload = &rest[4..4 + len as usize];
        let declared = u32::from_le_bytes(rest[4 + len as usize..frame_len].try_into().unwrap());
        if ipr_delta::checksum::crc32(payload) != declared {
            if rest.len() == frame_len {
                return torn(records); // crash mid-append of the last frame
            }
            return Err(JournalError {
                offset: at as u64,
                message: "interior frame fails its crc".into(),
            });
        }
        let record = Record::parse(payload).ok_or_else(|| JournalError {
            offset: at as u64,
            message: format!(
                "unrecognized payload `{}`",
                String::from_utf8_lossy(payload)
            ),
        })?;
        records.push(record);
        at += frame_len;
    }
}

/// Reads and scans the journal at `path`; a missing file is an empty
/// journal.
///
/// # Errors
///
/// I/O failure, or [`JournalError`] (as [`io::Error`]) for interior
/// damage.
pub fn scan_file(path: &Path) -> io::Result<Scan> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    scan(&bytes).map_err(io::Error::other)
}

/// Appends one record to the journal and fsyncs it, crossing durability
/// boundaries on the fsync.
///
/// # Errors
///
/// I/O failure or an injected fault at a boundary.
pub fn append(path: &Path, record: Record) -> io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    file.write_all(&record.frame())?;
    fault::fsync_file(&file, &format!("journal ({record})"))
}

/// Truncates the journal to its intact prefix, discarding a torn tail.
///
/// # Errors
///
/// I/O failure.
pub fn truncate_to(path: &Path, intact_len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(intact_len)?;
    fault::fsync_file(&file, "journal (truncate)")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_of(records: &[Record]) -> Vec<u8> {
        records.iter().flat_map(|r| r.frame()).collect()
    }

    #[test]
    fn round_trip() {
        let records = vec![
            Record::Begin(1),
            Record::Commit(1),
            Record::Begin(2),
            Record::Abort(2),
        ];
        let scan = scan(&bytes_of(&records)).unwrap();
        assert_eq!(scan.records, records);
        assert!(!scan.torn_tail);
        assert_eq!(scan.intact_len, bytes_of(&records).len() as u64);
        assert_eq!(scan.open_transaction(), None);
    }

    #[test]
    fn empty_journal() {
        let scan = scan(&[]).unwrap();
        assert!(scan.records.is_empty());
        assert!(!scan.torn_tail);
    }

    #[test]
    fn trailing_begin_is_open() {
        let scan = scan(&bytes_of(&[Record::Commit(3), Record::Begin(4)])).unwrap();
        assert_eq!(scan.open_transaction(), Some(4));
    }

    #[test]
    fn every_truncation_of_the_tail_is_recognised() {
        let records = vec![Record::Begin(1), Record::Commit(1), Record::Begin(2)];
        let full = bytes_of(&records);
        let last_frame = Record::Begin(2).frame().len();
        let intact = full.len() - last_frame;
        for cut in intact + 1..full.len() {
            let scan = scan(&full[..cut]).unwrap();
            assert!(scan.torn_tail, "cut at {cut} not seen as torn");
            assert_eq!(scan.intact_len, intact as u64);
            assert_eq!(scan.records.len(), 2);
        }
    }

    #[test]
    fn corrupt_final_frame_is_torn_not_fatal() {
        let mut bytes = bytes_of(&[Record::Begin(1), Record::Commit(1)]);
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // damage the last frame's crc
        let scan = scan(&bytes).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records, vec![Record::Begin(1)]);
    }

    #[test]
    fn interior_damage_is_fatal() {
        let mut bytes = bytes_of(&[Record::Begin(1), Record::Commit(1)]);
        bytes[5] ^= 0xff; // damage the first payload
        assert!(scan(&bytes).is_err());
    }

    #[test]
    fn absurd_length_word_is_torn_tail() {
        let mut bytes = bytes_of(&[Record::Begin(1)]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let scan = scan(&bytes).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records, vec![Record::Begin(1)]);
    }

    #[test]
    fn append_and_scan_file() {
        let dir = std::env::temp_dir().join(format!("ipr-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal");
        let _ = std::fs::remove_file(&path);
        assert_eq!(scan_file(&path).unwrap().records, vec![]);
        append(&path, Record::Begin(7)).unwrap();
        append(&path, Record::Commit(7)).unwrap();
        let scan = scan_file(&path).unwrap();
        assert_eq!(scan.records, vec![Record::Begin(7), Record::Commit(7)]);
        // Torn tail on disk: write half a frame, then repair by truncation.
        let half = &Record::Begin(8).frame()[..3];
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(half).unwrap();
        drop(f);
        let scan2 = scan_file(&path).unwrap();
        assert!(scan2.torn_tail);
        truncate_to(&path, scan2.intact_len).unwrap();
        assert_eq!(scan_file(&path).unwrap(), scan);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

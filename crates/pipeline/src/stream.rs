//! Server side of a resumable streaming install: a prepared delta
//! exposed as a randomly-addressable chunk stream.
//!
//! A device pulling an update over a lossy link re-requests from its
//! last durable checkpoint after a power cut — *not* from byte 0 — so
//! the server's job is to serve `chunk_len`-byte windows at arbitrary
//! wire offsets. [`DeltaStream`] is that server: build one with
//! [`Engine::stream_update`](crate::Engine::stream_update) (or wrap
//! stored wire bytes with [`DeltaStream::from_wire`]) and hand it to
//! the device simulator's `stream_install`.

/// A prepared in-place delta served as a chunked, seekable stream.
#[derive(Clone, Debug)]
pub struct DeltaStream {
    payload: Vec<u8>,
    chunk_len: usize,
    version_len: u64,
}

impl DeltaStream {
    /// Wraps already-encoded wire bytes (e.g. a delta re-served from a
    /// store after the client lost power mid-download).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    #[must_use]
    pub fn from_wire(payload: Vec<u8>, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        Self {
            payload,
            chunk_len,
            version_len: 0,
        }
    }

    pub(crate) fn new(payload: Vec<u8>, chunk_len: usize, version_len: u64) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        Self {
            payload,
            chunk_len,
            version_len,
        }
    }

    /// Total wire bytes of the delta.
    #[must_use]
    pub fn wire_len(&self) -> u64 {
        self.payload.len() as u64
    }

    /// Serving chunk size in bytes (the last chunk may be shorter).
    #[must_use]
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Length of the version image this delta reconstructs, when known
    /// (zero for [`from_wire`](Self::from_wire) streams).
    #[must_use]
    pub fn version_len(&self) -> u64 {
        self.version_len
    }

    /// Serves the chunk starting at wire offset `offset`, or `None` at
    /// or past end of stream. Any offset is valid — a resuming client
    /// asks from its checkpoint, which rarely lands on a chunk-multiple.
    #[must_use]
    pub fn chunk_at(&self, offset: u64) -> Option<&[u8]> {
        let start = usize::try_from(offset).ok()?;
        if start >= self.payload.len() {
            return None;
        }
        let end = (start + self.chunk_len).min(self.payload.len());
        Some(&self.payload[start..end])
    }

    /// The full wire bytes (for offline download-then-apply paths).
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the stream, returning the wire bytes.
    #[must_use]
    pub fn into_payload(self) -> Vec<u8> {
        self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_at_serves_windows_from_any_offset() {
        let s = DeltaStream::from_wire((0u8..100).collect(), 32);
        assert_eq!(s.wire_len(), 100);
        assert_eq!(s.chunk_len(), 32);
        assert_eq!(s.chunk_at(0).unwrap().len(), 32);
        assert_eq!(s.chunk_at(0).unwrap()[0], 0);
        // Arbitrary (non-multiple) resume offset.
        let c = s.chunk_at(33).unwrap();
        assert_eq!(c.len(), 32);
        assert_eq!(c[0], 33);
        // Short tail and EOF.
        assert_eq!(s.chunk_at(96).unwrap(), &[96, 97, 98, 99]);
        assert_eq!(s.chunk_at(100), None);
        assert_eq!(s.chunk_at(u64::MAX), None);
    }

    #[test]
    #[should_panic(expected = "chunk length")]
    fn zero_chunk_rejected() {
        let _ = DeltaStream::from_wire(vec![1], 0);
    }
}

//! The reusable pipeline session layer: one [`Engine`] owning every
//! scratch arena of the diff → convert → schedule → apply pipeline.
//!
//! The lower crates expose each stage as a free function plus an optional
//! scratch-based core (`ParallelDiffer::diff_with`,
//! [`convert_in_place_pooled`](ipr_core::convert_in_place_pooled),
//! [`ScheduleScratch::plan`](ipr_core::ScheduleScratch::plan),
//! [`apply_schedule_parallel`](ipr_core::apply_schedule_parallel)). The
//! engine composes those cores around long-lived storage — the
//! [`DiffScratch`](ipr_delta::diff::DiffScratch) arena with its
//! [`ScriptPool`](ipr_delta::ScriptPool), the CRWI/toposort buffers of
//! [`ConvertScratch`](ipr_core::ConvertScratch), the wave buffers of
//! [`ScheduleScratch`](ipr_core::ScheduleScratch) — so a
//! server preparing many updates (or a patch tool applying a chain of
//! them) touches the allocator only while the arenas warm up, and not at
//! all in steady state.
//!
//! Stage outputs are byte-identical to the legacy free-function pipeline:
//! the free functions *are* thin wrappers over the same cores with
//! throwaway scratch (validated continuously by the `engine` fuzz
//! oracle).
//!
//! ```
//! use ipr_pipeline::Engine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let v1: Vec<u8> = (0..=255).cycle().take(8192).collect();
//! let mut v2 = v1.clone();
//! v2.rotate_left(1024);
//!
//! let mut engine = Engine::new();
//! let delta = engine.update(&v1, &v2)?; // diff + convert + encode
//!
//! let mut buf = v1.clone(); // the device's only storage
//! engine.apply_in_place(&delta.script, &mut buf)?;
//! assert_eq!(buf, v2);
//! engine.recycle(delta); // storage feeds the next update
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod stream;

pub use engine::{ApplyOutcome, Engine, EngineConfig, InPlaceDelta};
pub use error::EngineError;
pub use stream::DeltaStream;

//! The [`Engine`]: owned scratch state plus composable stage methods.

use crate::error::EngineError;
use ipr_core::{
    apply_schedule_parallel, convert_in_place_pooled, required_capacity, ConversionConfig,
    ConversionReport, ConvertError, ConvertScratch, InPlaceOutcome, ParallelApplyError,
    ParallelApplyReport, ParallelConfig, ParallelSchedule, ReadMode, ScheduleScratch,
};
use ipr_delta::codec::{self, Format};
use ipr_delta::compose_chain;
use ipr_delta::diff::{
    DiffScratch, GreedyDiffer, IndexedDiffer, ParallelDiffer, DEFAULT_CHUNK_BYTES,
};
use ipr_delta::remote::{self, BlockSize, Chunking, Signature, SignatureError};
use ipr_delta::DeltaScript;

/// Configuration shared by every stage of an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// In-place conversion settings (cycle policy + cost format).
    pub conversion: ConversionConfig,
    /// Wire format updates are encoded in.
    pub format: Format,
    /// Worker count for the parallel diff scan and the wave applier;
    /// `0` means [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Version-chunk size for the parallel diff scan (must be positive;
    /// chunking depends only on the version length, never on `threads`,
    /// so output is thread-count invariant).
    pub chunk_bytes: usize,
    /// Read strategy of the wave applier.
    pub read_mode: ReadMode,
    /// Waves moving fewer payload bytes than this run inline on the
    /// calling thread.
    pub serial_wave_bytes: usize,
    /// Block chunking for [`Engine::sign`] — the remote-differencing
    /// signature path (docs/REMOTE.md).
    pub chunking: Chunking,
    /// When set, overrides [`chunking`](EngineConfig::chunking) for
    /// [`Engine::sign`] with a fixed block length resolved per
    /// reference — [`BlockSize::Auto`] picks the smallest block whose
    /// wire signature fits the configured byte budget.
    pub block_size: Option<BlockSize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let parallel = ParallelConfig::default();
        Self {
            conversion: ConversionConfig::default(),
            format: Format::InPlace,
            threads: 0,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            read_mode: parallel.read_mode,
            serial_wave_bytes: parallel.serial_wave_bytes,
            chunking: Chunking::default(),
            block_size: None,
        }
    }
}

impl EngineConfig {
    /// A config pinned to `threads` workers, other knobs at defaults.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// The applier-side view of this config.
    #[must_use]
    pub fn parallel(&self) -> ParallelConfig {
        ParallelConfig {
            threads: self.threads,
            read_mode: self.read_mode,
            serial_wave_bytes: self.serial_wave_bytes,
        }
    }
}

/// A prepared in-place update: the converted script, its wire encoding,
/// and the conversion measurements.
///
/// Hand finished deltas back to [`Engine::recycle`] so their storage
/// feeds later updates instead of the allocator.
#[derive(Clone, Debug)]
pub struct InPlaceDelta {
    /// The converted script; satisfies Equation 2 and is safe for
    /// [`apply_in_place`](ipr_core::apply_in_place) and
    /// [`Engine::apply_in_place`].
    pub script: DeltaScript,
    /// The encoded delta file (wire bytes, target CRC embedded).
    pub payload: Vec<u8>,
    /// Conversion measurements.
    pub report: ConversionReport,
    /// Size of the full new image, for speedup accounting.
    pub version_len: u64,
}

impl InPlaceDelta {
    /// Compression ratio: payload bytes over full-image bytes.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.version_len == 0 {
            0.0
        } else {
            self.payload.len() as f64 / self.version_len as f64
        }
    }
}

/// Result of [`Engine::apply_chain`]: the per-stage reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Measurements from converting the (composed) script.
    pub conversion: ConversionReport,
    /// Measurements from the wave-parallel application.
    pub apply: ParallelApplyReport,
}

/// A reusable pipeline session: owns every scratch arena of the
/// diff → convert → schedule → apply pipeline and exposes the stages as
/// methods (see the [crate docs](crate) for the storage inventory).
///
/// One engine is single-threaded state (`&mut self` methods) — the
/// *stages* fan out across worker threads internally per
/// [`EngineConfig::threads`]. Create one engine per pipeline thread.
#[derive(Debug)]
pub struct Engine<D: IndexedDiffer = GreedyDiffer> {
    differ: ParallelDiffer<D>,
    config: EngineConfig,
    diff_scratch: DiffScratch,
    convert_scratch: ConvertScratch,
    schedule_scratch: ScheduleScratch,
}

impl Default for Engine<GreedyDiffer> {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine<GreedyDiffer> {
    /// An engine with the default differ and configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// An engine with the default (greedy) differ and `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.chunk_bytes == 0`.
    #[must_use]
    pub fn with_config(config: EngineConfig) -> Self {
        Self::with_differ(GreedyDiffer::default(), config)
    }
}

impl<D: IndexedDiffer> Engine<D> {
    /// An engine differencing with `differ` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.chunk_bytes == 0`.
    #[must_use]
    pub fn with_differ(differ: D, config: EngineConfig) -> Self {
        let differ = ParallelDiffer::new(differ)
            .with_threads(config.threads)
            .with_chunk_bytes(config.chunk_bytes);
        Self {
            differ,
            config,
            diff_scratch: DiffScratch::new(),
            convert_scratch: ConvertScratch::new(),
            schedule_scratch: ScheduleScratch::new(),
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Stage 1: differences `version` against `reference` through the
    /// engine's arena. Output is identical to the wrapped differ's
    /// free-standing `diff` for every thread count.
    pub fn diff(&mut self, reference: &[u8], version: &[u8]) -> DeltaScript {
        self.differ
            .diff_with(&mut self.diff_scratch, reference, version)
    }

    /// Builds the remote-differencing [`Signature`] of `reference` under
    /// the engine's [`chunking`](EngineConfig::chunking) — the device
    /// side of the signature/streaming flow (docs/REMOTE.md). A
    /// configured [`block_size`](EngineConfig::block_size) takes
    /// precedence, resolving [`BlockSize::Auto`] against this
    /// reference's length.
    ///
    /// # Errors
    ///
    /// [`SignatureError::BadChunking`] when the configured chunking
    /// parameters are invalid.
    pub fn sign(&mut self, reference: &[u8]) -> Result<Signature, SignatureError> {
        let chunking = match self.config.block_size {
            Some(block_size) => block_size.chunking(reference.len() as u64),
            None => self.config.chunking,
        };
        Signature::build(reference, chunking)
    }

    /// Stage 1, remote flavour: differences a *streamed* version against
    /// a reference known only by its [`Signature`]. Resident memory is
    /// the signature plus one block-sized window — neither file — so
    /// this is the diff stage for references that live on a device.
    ///
    /// The output is an ordinary write-ordered [`DeltaScript`]: feed it
    /// to [`Engine::convert`] / [`Engine::apply_in_place`] exactly like
    /// a local diff.
    ///
    /// # Errors
    ///
    /// Propagates reader errors.
    pub fn remote_diff<R: std::io::Read>(
        &mut self,
        signature: &Signature,
        version: R,
    ) -> std::io::Result<DeltaScript> {
        remote::generate_delta(signature, version)
    }

    /// Stage 2: converts `script` for in-place reconstruction, consuming
    /// it (its storage is recycled into the engine's pool).
    ///
    /// # Errors
    ///
    /// As [`ipr_core::convert_to_in_place`].
    pub fn convert(
        &mut self,
        script: DeltaScript,
        reference: &[u8],
    ) -> Result<InPlaceOutcome, ConvertError> {
        convert_in_place_pooled(
            script,
            reference,
            &self.config.conversion,
            &mut self.convert_scratch,
            self.diff_scratch.pool_mut(),
        )
    }

    /// Stage 3: plans wave-parallel application of a converted script.
    /// Returns `None` when `script` violates Equation 2. The borrow is
    /// valid until the engine's next scheduling call; clone to keep it.
    pub fn plan(&mut self, script: &DeltaScript) -> Option<&ParallelSchedule> {
        self.schedule_scratch.plan(script)
    }

    /// Encodes a script into a pool-drawn wire buffer, verifying it
    /// rebuilds `version`. The stage-method twin of the encode inside
    /// [`Engine::update`]: return the buffer through
    /// [`Engine::recycle`] and a warm engine re-serves it, so
    /// steady-state encoding performs no heap allocation.
    ///
    /// # Errors
    ///
    /// [`EngineError::Encode`] as [`ipr_delta::codec::encode_checked`].
    pub fn encode(&mut self, script: &DeltaScript, version: &[u8]) -> Result<Vec<u8>, EngineError> {
        let mut payload = self.diff_scratch.pool_mut().take_bytes();
        codec::encode_checked_into(script, self.config.format, version, &mut payload)?;
        Ok(payload)
    }

    /// Stage 4: applies a converted script to `buf` in place with
    /// wave-parallel execution (schedule planned through the engine's
    /// scratch and discarded).
    ///
    /// # Errors
    ///
    /// As [`ipr_core::apply_in_place_parallel`].
    pub fn apply_in_place(
        &mut self,
        script: &DeltaScript,
        buf: &mut [u8],
    ) -> Result<ParallelApplyReport, ParallelApplyError> {
        let _span = ipr_trace::span("engine.apply");
        let parallel = self.config.parallel();
        let plan = self
            .schedule_scratch
            .plan(script)
            .ok_or(ParallelApplyError::UnsafeScript)?;
        apply_schedule_parallel(script, plan, buf, &parallel)
    }

    /// One-call server path: diff, convert and encode — everything a
    /// device needs to rebuild `version` over `reference` in place.
    ///
    /// Byte-identical to the free-function pipeline
    /// (`diff` → [`ipr_core::convert_to_in_place`] →
    /// [`ipr_delta::codec::encode_checked`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Convert`] or [`EngineError::Encode`].
    pub fn update(
        &mut self,
        reference: &[u8],
        version: &[u8],
    ) -> Result<InPlaceDelta, EngineError> {
        let _span = ipr_trace::span("engine.update");
        let script = self.diff(reference, version);
        let outcome = self.convert(script, reference)?;
        // Encode into a pooled buffer: a warm engine's whole update is
        // then allocation-free (the buffer returns via `recycle`).
        let payload = self.encode(&outcome.script, version)?;
        if ipr_trace::enabled() {
            ipr_trace::with(|r| {
                r.add("engine.updates", 1);
                r.add("engine.payload_bytes", payload.len() as u64);
            });
        }
        Ok(InPlaceDelta {
            script: outcome.script,
            payload,
            report: outcome.report,
            version_len: version.len() as u64,
        })
    }

    /// Prepares `version` as a resumable chunk stream: the server side
    /// of a streaming install. The delta is produced exactly as by
    /// [`Engine::update`] (same bytes), then exposed through
    /// [`DeltaStream::chunk_at`](crate::DeltaStream::chunk_at) so a
    /// device can pull it window by window and — after a power cut —
    /// re-request from its checkpointed wire offset instead of byte 0.
    ///
    /// # Errors
    ///
    /// As [`Engine::update`].
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`.
    pub fn stream_update(
        &mut self,
        reference: &[u8],
        version: &[u8],
        chunk_len: usize,
    ) -> Result<crate::DeltaStream, EngineError> {
        let _span = ipr_trace::span("stream.prepare");
        let delta = self.update(reference, version)?;
        let stream = crate::DeltaStream::new(delta.payload, chunk_len, delta.version_len);
        // The script is not part of the stream; return it to the pool.
        self.recycle_script(delta.script);
        Ok(stream)
    }

    /// Batched [`Engine::update`]: one delta per version, each hop diffed
    /// against the previous image (`reference` for the first). All hops
    /// share the engine's arenas.
    ///
    /// # Errors
    ///
    /// As [`Engine::update`]; already-produced deltas are dropped on
    /// error.
    pub fn update_many<'a, I>(
        &mut self,
        reference: &'a [u8],
        versions: I,
    ) -> Result<Vec<InPlaceDelta>, EngineError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let _span = ipr_trace::span("engine.update_many");
        let mut prev = reference;
        let mut deltas = Vec::new();
        for version in versions {
            deltas.push(self.update(prev, version)?);
            prev = version;
        }
        Ok(deltas)
    }

    /// Applies a chain of consecutive deltas to `buf` in place,
    /// composing them first ([`ipr_delta::compose_chain`]) so the buffer
    /// is rewritten once instead of once per hop. The composed script is
    /// converted against the current buffer contents, applied
    /// wave-parallel, and `buf` is resized to the final version.
    ///
    /// An empty chain is a no-op returning default reports.
    ///
    /// # Errors
    ///
    /// [`EngineError::Compose`] when the chain is not consecutive,
    /// [`EngineError::Convert`] when the first hop does not start from
    /// `buf`'s length, [`EngineError::Apply`] from the final stage. `buf`
    /// is unmodified on composition and conversion errors.
    pub fn apply_chain(
        &mut self,
        scripts: &[DeltaScript],
        buf: &mut Vec<u8>,
    ) -> Result<ApplyOutcome, EngineError> {
        let _span = ipr_trace::span("engine.chain");
        if scripts.is_empty() {
            return Ok(ApplyOutcome::default());
        }
        let composed = if scripts.len() == 1 {
            scripts[0].clone()
        } else {
            compose_chain(scripts)?
        };
        let outcome = convert_in_place_pooled(
            composed,
            buf,
            &self.config.conversion,
            &mut self.convert_scratch,
            self.diff_scratch.pool_mut(),
        )?;
        let conversion = outcome.report;
        let target_len = usize::try_from(outcome.script.target_len()).expect("length fits usize");
        let needed = usize::try_from(required_capacity(&outcome.script)).expect("fits usize");
        buf.resize(needed, 0);
        let parallel = self.config.parallel();
        let plan = self
            .schedule_scratch
            .plan_trusted(&outcome.script)
            .ok_or(ParallelApplyError::UnsafeScript)?;
        let apply = apply_schedule_parallel(&outcome.script, plan, buf, &parallel)?;
        buf.truncate(target_len);
        self.diff_scratch.pool_mut().recycle(outcome.script);
        Ok(ApplyOutcome { conversion, apply })
    }

    /// Composes a chain of consecutive deltas into one equivalent
    /// script ([`ipr_delta::compose_chain`]) without applying it. This
    /// is the storage-side dual of [`Engine::apply_chain`]: the object
    /// store's compaction uses it to collapse a deep reconstruction
    /// chain into a single delta while readers keep using
    /// `apply_chain`.
    ///
    /// # Panics
    ///
    /// On an empty chain — there is no identity delta without a length.
    ///
    /// # Errors
    ///
    /// [`EngineError::Compose`] when the chain is not consecutive.
    pub fn compose(&mut self, scripts: &[DeltaScript]) -> Result<DeltaScript, EngineError> {
        let _span = ipr_trace::span("engine.compose");
        assert!(!scripts.is_empty(), "cannot compose an empty chain");
        ipr_trace::add("engine.compose_hops", scripts.len() as u64);
        Ok(compose_chain(scripts)?)
    }

    /// Returns a finished delta's storage to the engine's pool, so later
    /// updates build their scripts and payloads out of it instead of
    /// allocating.
    pub fn recycle(&mut self, delta: InPlaceDelta) {
        let pool = self.diff_scratch.pool_mut();
        pool.recycle(delta.script);
        pool.give_bytes(delta.payload);
    }

    /// Returns a finished script's storage to the engine's pool (the
    /// script-only half of [`Engine::recycle`], for callers that keep the
    /// payload).
    pub fn recycle_script(&mut self, script: DeltaScript) {
        self.diff_scratch.pool_mut().recycle(script);
    }
}

//! The engine's single error type.

use ipr_core::{ConvertError, ParallelApplyError};
use ipr_delta::codec::EncodeError;
use ipr_delta::ComposeError;
use std::fmt;

/// Any failure of an [`Engine`](crate::Engine) entry point, tagged with
/// the stage that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// In-place conversion failed.
    Convert(ConvertError),
    /// Encoding the converted script failed.
    Encode(EncodeError),
    /// A delta chain was not consecutive.
    Compose(ComposeError),
    /// Wave-parallel application failed.
    Apply(ParallelApplyError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Convert(e) => write!(f, "conversion failed: {e}"),
            EngineError::Encode(e) => write!(f, "encoding failed: {e}"),
            EngineError::Compose(e) => write!(f, "composition failed: {e}"),
            EngineError::Apply(e) => write!(f, "application failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Convert(e) => Some(e),
            EngineError::Encode(e) => Some(e),
            EngineError::Compose(e) => Some(e),
            EngineError::Apply(e) => Some(e),
        }
    }
}

impl From<ConvertError> for EngineError {
    fn from(e: ConvertError) -> Self {
        EngineError::Convert(e)
    }
}

impl From<EncodeError> for EngineError {
    fn from(e: EncodeError) -> Self {
        EngineError::Encode(e)
    }
}

impl From<ComposeError> for EngineError {
    fn from(e: ComposeError) -> Self {
        EngineError::Compose(e)
    }
}

impl From<ParallelApplyError> for EngineError {
    fn from(e: ParallelApplyError) -> Self {
        EngineError::Apply(e)
    }
}

//! Engine stage equivalence and session-reuse behaviour.

use ipr_core::{apply_in_place, convert_to_in_place, CyclePolicy};
use ipr_delta::codec::{self, Format};
use ipr_delta::diff::{Differ, GreedyDiffer, OnePassDiffer, ParallelDiffer};
use ipr_delta::{apply, compose_chain};
use ipr_pipeline::{Engine, EngineConfig, EngineError};

fn corpus_pair(len: usize, rot: usize) -> (Vec<u8>, Vec<u8>) {
    let reference: Vec<u8> = (0..len as u32).map(|i| (i * 31 % 251) as u8).collect();
    let mut version = reference.clone();
    version.rotate_left(rot.min(len));
    if len > 64 {
        version[len / 2] ^= 0x5A;
        version.extend_from_slice(&[7u8; 33]);
    }
    (reference, version)
}

/// The engine's one-call path must match the legacy free-function
/// pipeline byte for byte: same commands, same wire bytes.
#[test]
fn update_matches_legacy_pipeline() {
    let (reference, version) = corpus_pair(40_000, 5_000);
    for policy in [
        CyclePolicy::ConstantTime,
        CyclePolicy::LocallyMinimum,
        CyclePolicy::Exhaustive { limit: 24 },
    ] {
        for threads in [1, 2, 4] {
            let mut config = EngineConfig::with_threads(threads);
            config.conversion.policy = policy;
            let mut engine = Engine::with_config(config);

            let legacy_script = ParallelDiffer::new(GreedyDiffer::default())
                .with_threads(threads)
                .diff(&reference, &version);
            let legacy =
                convert_to_in_place(&legacy_script, &reference, &config.conversion).unwrap();
            let legacy_payload =
                codec::encode_checked(&legacy.script, Format::InPlace, &version).unwrap();

            // Two updates through the same engine: the second runs on a
            // warm, recycled arena and must still be identical.
            for round in 0..2 {
                let delta = engine.update(&reference, &version).unwrap();
                assert_eq!(
                    delta.script.commands(),
                    legacy.script.commands(),
                    "{policy} threads={threads} round={round}"
                );
                assert_eq!(delta.payload, legacy_payload);
                assert_eq!(delta.report.cycles_broken, legacy.report.cycles_broken);
                assert_eq!(delta.version_len, version.len() as u64);

                let mut buf = reference.clone();
                buf.resize(buf.len().max(version.len()), 0);
                engine.apply_in_place(&delta.script, &mut buf).unwrap();
                buf.truncate(version.len());
                assert_eq!(buf, version);
                engine.recycle(delta);
            }
        }
    }
}

#[test]
fn stage_methods_compose_like_the_one_call_path() {
    let (reference, version) = corpus_pair(20_000, 1_234);
    let mut engine = Engine::new();
    let one_call = engine.update(&reference, &version).unwrap();

    let script = engine.diff(&reference, &version);
    let outcome = engine.convert(script, &reference).unwrap();
    assert_eq!(outcome.script, one_call.script);
    let plan = engine
        .plan(&outcome.script)
        .expect("converted script is safe");
    assert!(plan.wave_count() > 0);

    let mut buf = reference.clone();
    buf.resize(buf.len().max(version.len()), 0);
    apply_in_place(&outcome.script, &mut buf).unwrap();
    buf.truncate(version.len());
    assert_eq!(buf, version);
}

#[test]
fn update_many_walks_the_chain_hop_by_hop() {
    let v0: Vec<u8> = (0..9_000u32).map(|i| (i * 17 % 249) as u8).collect();
    let mut v1 = v0.clone();
    v1.rotate_left(700);
    let mut v2 = v1.clone();
    v2.truncate(8_000);
    let mut v3 = v2.clone();
    v3.extend_from_slice(&[0xAB; 444]);
    let versions: [&[u8]; 3] = [&v1, &v2, &v3];

    let mut engine = Engine::new();
    let deltas = engine.update_many(&v0, versions).unwrap();
    assert_eq!(deltas.len(), 3);

    // Each hop applies in place over the previous image.
    let images: [&[u8]; 4] = [&v0, &v1, &v2, &v3];
    for (i, delta) in deltas.iter().enumerate() {
        let mut buf = images[i].to_vec();
        buf.resize(buf.len().max(images[i + 1].len()), 0);
        engine.apply_in_place(&delta.script, &mut buf).unwrap();
        buf.truncate(images[i + 1].len());
        assert_eq!(buf, images[i + 1], "hop {i}");
    }
}

#[test]
fn apply_chain_matches_sequential_application() {
    let v0: Vec<u8> = (0..12_000u32).map(|i| (i * 29 % 253) as u8).collect();
    let mut v1 = v0.clone();
    v1.rotate_left(900);
    let mut v2 = v1.clone();
    v2.extend_from_slice(&[3u8; 100]);
    v2[40] = 0xFF;

    let differ = GreedyDiffer::default();
    let d01 = differ.diff(&v0, &v1);
    let d12 = differ.diff(&v1, &v2);

    // Ground truth through scratch-space composition.
    let composed = compose_chain(&[d01.clone(), d12.clone()]).unwrap();
    assert_eq!(apply(&composed, &v0).unwrap(), v2);

    let mut engine = Engine::new();
    let mut buf = v0.clone();
    let outcome = engine.apply_chain(&[d01, d12], &mut buf).unwrap();
    assert_eq!(buf, v2);
    assert!(outcome.apply.waves > 0);

    // Empty chain: no-op.
    let before = buf.clone();
    engine.apply_chain(&[], &mut buf).unwrap();
    assert_eq!(buf, before);
}

#[test]
fn apply_chain_rejects_non_consecutive_deltas() {
    let (a, b) = corpus_pair(2_000, 100);
    let differ = GreedyDiffer::default();
    let d = differ.diff(&a, &b);
    let unrelated = differ.diff(&b, &a);
    let mut engine = Engine::new();
    let mut buf = a.clone();
    let err = engine.apply_chain(&[d.clone(), d], &mut buf).unwrap_err();
    assert!(matches!(err, EngineError::Compose(_)), "{err}");
    assert_eq!(buf, a, "buffer untouched on error");
    // Wrong starting image → conversion-stage mismatch.
    let err = engine.apply_chain(&[unrelated], &mut buf).unwrap_err();
    assert!(matches!(err, EngineError::Convert(_)), "{err}");
    assert!(!err.to_string().is_empty());
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn custom_differ_sessions_work() {
    let (reference, version) = corpus_pair(30_000, 2_222);
    let mut engine = Engine::with_differ(OnePassDiffer::default(), EngineConfig::default());
    let delta = engine.update(&reference, &version).unwrap();
    let legacy_script = ParallelDiffer::new(OnePassDiffer::default()).diff(&reference, &version);
    let legacy = convert_to_in_place(
        &legacy_script,
        &reference,
        &EngineConfig::default().conversion,
    )
    .unwrap();
    assert_eq!(delta.script, legacy.script);
}

#[test]
fn degenerate_inputs_round_trip() {
    let mut engine = Engine::new();
    for (r, v) in [
        (&b""[..], &b""[..]),
        (&b""[..], &b"brand new"[..]),
        (&b"all gone"[..], &b""[..]),
        (&b"same"[..], &b"same"[..]),
    ] {
        let delta = engine.update(r, v).unwrap();
        let mut buf = r.to_vec();
        buf.resize(r.len().max(v.len()), 0);
        engine.apply_in_place(&delta.script, &mut buf).unwrap();
        buf.truncate(v.len());
        assert_eq!(buf, v);
        engine.recycle(delta);
    }
}

//! Offline drop-in subset of the `criterion` 0.5 bench API.
//!
//! The build environment has no crate registry, so this workspace vendors
//! the benchmarking surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model (simpler than upstream, same shape): each benchmark
//! warms up briefly, estimates the per-iteration time, then collects
//! batched wall-clock samples for a fixed budget and reports the median
//! per-iteration time plus derived throughput. No plots, no statistical
//! regression; numbers print to stdout in a stable, greppable format:
//!
//! ```text
//! group/name              time: [  1.234 ms]  thrpt: [  405.1 MiB/s]
//! ```
//!
//! Environment knobs: `IPR_BENCH_WARMUP_MS` (default 100) and
//! `IPR_BENCH_MEASURE_MS` (default 400) bound the time spent per
//! benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in binary MiB/s).
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group, e.g. `buffered/4096`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Median nanoseconds per iteration of the last `iter` call.
    sampled_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its median wall-clock time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Batch so each sample costs roughly a tenth of the budget, then
        // sample until the measurement budget is spent.
        let batch =
            ((self.measure.as_nanos() as f64 / 10.0 / est_ns).ceil() as u64).clamp(1, 1 << 20);
        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.sampled_ns = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s ", ns / 1_000_000_000.0)
    }
}

fn format_throughput(throughput: Throughput, ns: f64) -> String {
    let per_sec = |units: u64| units as f64 / (ns / 1_000_000_000.0);
    match throughput {
        Throughput::Bytes(bytes) => {
            let mib = per_sec(bytes) / (1024.0 * 1024.0);
            if mib >= 1024.0 {
                format!("{:8.3} GiB/s", mib / 1024.0)
            } else {
                format!("{mib:8.2} MiB/s")
            }
        }
        Throughput::Elements(n) => format!("{:10.0} elem/s", per_sec(n)),
    }
}

fn run_one(
    full_id: &str,
    throughput: Option<Throughput>,
    warmup: Duration,
    measure: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        warmup,
        measure,
        sampled_ns: f64::NAN,
    };
    f(&mut bencher);
    let mut line = format!("{full_id:<40} time: [{}]", format_ns(bencher.sampled_ns));
    if let Some(t) = throughput {
        line.push_str(&format!(
            "  thrpt: [{}]",
            format_throughput(t, bencher.sampled_ns)
        ));
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Upstream-compatible no-op: sample count is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            self.criterion.warmup,
            self.criterion.measure,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            self.criterion.warmup,
            self.criterion.measure,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream renders summaries here; we already
    /// printed per-benchmark lines).
    pub fn finish(self) {}
}

/// Benchmark driver; entry point of `criterion_group!` targets.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: env_ms("IPR_BENCH_WARMUP_MS", 100),
            measure: env_ms("IPR_BENCH_MEASURE_MS", 400),
        }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (CLI args are ignored by this shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks `f` as a stand-alone (group-less) benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, None, self.warmup, self.measure, &mut f);
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("unit");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn time_formatting_spans_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_500.0).contains("µs"));
        assert!(format_ns(12_500_000.0).contains("ms"));
        assert!(format_ns(2_500_000_000.0).contains('s'));
    }

    #[test]
    fn throughput_formatting() {
        // 2 MiB per 1 ms = 2000 MiB/s, reported in GiB/s.
        let s = format_throughput(Throughput::Bytes(2 * 1024 * 1024), 1_000_000.0);
        assert!(s.contains("GiB/s"), "{s}");
        let s = format_throughput(Throughput::Bytes(1024), 1_000_000.0);
        assert!(s.contains("MiB/s"), "{s}");
        let s = format_throughput(Throughput::Elements(10), 1_000_000.0);
        assert!(s.contains("elem/s"), "{s}");
    }
}

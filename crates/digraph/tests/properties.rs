#![allow(clippy::needless_range_loop)] // boolean-matrix index loops read better as indices

//! Model-based property tests for the graph/interval substrate.

use ipr_digraph::{fvs, scc, topo, Digraph, Interval, IntervalIndex, IntervalSet};
use proptest::prelude::*;

/// A random digraph as (node count, edge list).
fn digraph_strategy(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Digraph> {
    (1..=max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges)
            .prop_map(move |edges| Digraph::from_edges(n, edges))
    })
}

/// Naive transitive reachability by repeated squaring of a boolean matrix.
fn reachable(g: &Digraph) -> Vec<Vec<bool>> {
    let n = g.node_count();
    let mut m = vec![vec![false; n]; n];
    for (u, v) in g.edges() {
        m[u as usize][v as usize] = true;
    }
    for k in 0..n {
        for i in 0..n {
            if m[i][k] {
                for j in 0..n {
                    if m[k][j] {
                        m[i][j] = true;
                    }
                }
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Kahn and DFS agree on acyclicity, and their orders are valid.
    #[test]
    fn topo_sorts_agree(g in digraph_strategy(16, 40)) {
        let kahn = topo::kahn(&g);
        let dfs = topo::dfs(&g);
        prop_assert_eq!(kahn.is_ok(), dfs.is_ok());
        if let Ok(order) = &kahn {
            prop_assert!(topo::is_topological_order(&g, order));
        }
        if let Ok(order) = &dfs {
            prop_assert!(topo::is_topological_order(&g, order));
        }
        // A DFS-reported cycle really is one.
        if let Err(e) = dfs {
            let c = &e.cycle;
            prop_assert!(!c.is_empty());
            for w in c.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            prop_assert!(g.has_edge(*c.last().unwrap(), c[0]));
        }
    }

    /// Tarjan components match naive mutual reachability.
    #[test]
    fn tarjan_matches_reachability(g in digraph_strategy(14, 36)) {
        let sccs = scc::tarjan(&g);
        let m = reachable(&g);
        let n = g.node_count();
        for u in 0..n {
            for v in 0..n {
                let same = sccs.component_of(u as u32) == sccs.component_of(v as u32);
                let mutual = u == v || (m[u][v] && m[v][u]);
                prop_assert_eq!(same, mutual, "nodes {} and {}", u, v);
            }
        }
    }

    /// The exact FVS result is a feedback vertex set and no single vertex
    /// can be dropped from it (local minimality).
    #[test]
    fn fvs_is_minimal_feedback_set(
        g in digraph_strategy(8, 20),
        costs in proptest::collection::vec(1u64..50, 8),
    ) {
        let cost = &costs[..g.node_count()];
        let set = fvs::minimum_feedback_vertex_set(&g, cost, 10).unwrap();
        prop_assert!(fvs::is_feedback_vertex_set(&g, &set));
        for skip in 0..set.len() {
            let smaller: Vec<u32> = set
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &v)| v)
                .collect();
            prop_assert!(
                !fvs::is_feedback_vertex_set(&g, &smaller),
                "dropping {} still breaks all cycles",
                set[skip]
            );
        }
    }

    /// IntervalIndex range queries match a naive scan.
    #[test]
    fn interval_index_matches_naive(
        gaps in proptest::collection::vec((0u64..20, 1u64..30), 1..12),
        query in (0u64..500, 0u64..80),
    ) {
        // Build sorted disjoint intervals from gap/length pairs.
        let mut intervals = Vec::new();
        let mut cursor = 0u64;
        for (gap, len) in gaps {
            cursor += gap;
            intervals.push(Interval::from_offset_len(cursor, len));
            cursor += len;
        }
        let idx = IntervalIndex::new(intervals.clone()).unwrap();
        let q = Interval::from_offset_len(query.0, query.1);
        let expected: Vec<usize> = intervals
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.intersects(q))
            .map(|(i, _)| i)
            .collect();
        let got: Vec<usize> = idx.overlapping(q).collect();
        prop_assert_eq!(got, expected);
    }

    /// IntervalSet::covered_bytes equals the measure of the union.
    #[test]
    fn interval_set_measure(
        ivs in proptest::collection::vec((0u64..300, 0u64..50), 0..25),
    ) {
        let mut set = IntervalSet::new();
        let mut model = vec![false; 400];
        for (start, len) in ivs {
            set.insert(Interval::from_offset_len(start, len));
            for i in start..start + len {
                model[i as usize] = true;
            }
        }
        let expected = model.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(set.covered_bytes(), expected);
        // Span count equals the number of maximal runs in the model.
        let mut runs = 0;
        let mut inside = false;
        for &b in &model {
            if b && !inside {
                runs += 1;
            }
            inside = b;
        }
        prop_assert_eq!(set.span_count(), runs);
    }

    /// Reversing a graph preserves SCC structure.
    #[test]
    fn reversal_preserves_sccs(g in digraph_strategy(12, 30)) {
        let a = scc::tarjan(&g);
        let b = scc::tarjan(&g.reversed());
        prop_assert_eq!(a.count(), b.count());
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                prop_assert_eq!(
                    a.component_of(u) == a.component_of(v),
                    b.component_of(u) == b.component_of(v)
                );
            }
        }
    }
}

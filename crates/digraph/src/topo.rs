//! Topological sorting with cycle witnesses.
//!
//! Two classic algorithms are provided: Kahn's queue-based sort ([`kahn`])
//! and an iterative depth-first sort ([`dfs`]). Both run in `O(V + E)`.
//! On cyclic input both fail with a [`CycleError`]; the DFS variant
//! additionally reports a concrete witness cycle, which is what the
//! in-place conversion algorithm's cycle-breaking policies need.

use crate::{Digraph, NodeId};
use std::collections::VecDeque;
use std::fmt;

/// Error returned when a topological sort encounters a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A witness cycle `c0 -> c1 -> ... -> ck -> c0`, listed without
    /// repeating the first node. Empty when the algorithm proves a cycle
    /// exists but does not materialize one (Kahn's algorithm).
    pub cycle: Vec<NodeId>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cycle.is_empty() {
            write!(f, "digraph contains a cycle")
        } else {
            write!(
                f,
                "digraph contains a cycle through {} nodes",
                self.cycle.len()
            )
        }
    }
}

impl std::error::Error for CycleError {}

/// Kahn's algorithm: repeatedly emit a node of in-degree zero.
///
/// Ties are broken by smallest node id, so the output is deterministic.
/// Returns the nodes in a topological order (every edge `u -> v` has `u`
/// before `v`).
///
/// # Errors
///
/// Returns [`CycleError`] (without a witness) if the graph is cyclic.
///
/// # Example
///
/// ```
/// use ipr_digraph::{Digraph, topo};
///
/// let g = Digraph::from_edges(3, [(2, 1), (1, 0)]);
/// assert_eq!(topo::kahn(&g).unwrap(), vec![2, 1, 0]);
/// ```
pub fn kahn(g: &Digraph) -> Result<Vec<NodeId>, CycleError> {
    let mut scratch = KahnScratch::new();
    let mut order = Vec::with_capacity(g.node_count());
    kahn_into(g, &mut scratch, &mut order)?;
    Ok(order)
}

/// Reusable working storage for [`kahn_into`].
#[derive(Debug, Default)]
pub struct KahnScratch {
    indeg: Vec<usize>,
    queue: VecDeque<NodeId>,
}

impl KahnScratch {
    /// Creates an empty scratch; storage is grown on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Allocation-free variant of [`kahn`]: the sort order is written into
/// `order` (cleared first) and all working storage lives in `scratch`.
///
/// Output is identical to [`kahn`] (which is a thin wrapper over this
/// function).
///
/// # Errors
///
/// Returns [`CycleError`] (without a witness) if the graph is cyclic;
/// `order` then holds the partial acyclic prefix.
pub fn kahn_into(
    g: &Digraph,
    scratch: &mut KahnScratch,
    order: &mut Vec<NodeId>,
) -> Result<(), CycleError> {
    let n = g.node_count();
    let KahnScratch { indeg, queue } = scratch;
    indeg.clear();
    indeg.resize(n, 0);
    for u in 0..n as NodeId {
        for &v in g.successors(u) {
            indeg[v as usize] += 1;
        }
    }
    // A binary heap would give strict smallest-first order; a sorted seed
    // plus FIFO suffices for determinism and keeps this O(V + E).
    queue.clear();
    queue.extend((0..n as NodeId).filter(|&v| indeg[v as usize] == 0));
    order.clear();
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.successors(u) {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == n {
        Ok(())
    } else {
        Err(CycleError { cycle: Vec::new() })
    }
}

/// Whether the digraph is acyclic.
#[must_use]
pub fn is_acyclic(g: &Digraph) -> bool {
    kahn(g).is_ok()
}

/// Iterative depth-first topological sort that reports a witness cycle.
///
/// Returns the nodes in a topological order. On cyclic input, the returned
/// [`CycleError::cycle`] holds the nodes of one directed cycle in order.
///
/// # Errors
///
/// Returns [`CycleError`] with a non-empty witness if the graph is cyclic.
///
/// # Example
///
/// ```
/// use ipr_digraph::{Digraph, topo};
///
/// let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// let err = topo::dfs(&g).unwrap_err();
/// assert_eq!(err.cycle.len(), 3);
/// ```
pub fn dfs(g: &Digraph) -> Result<Vec<NodeId>, CycleError> {
    let n = g.node_count();
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    // Finish-time order; reversed at the end.
    let mut finished = Vec::with_capacity(n);
    // Explicit stack of (node, next-successor-index).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n as NodeId {
        if color[root as usize] != Color::White {
            continue;
        }
        color[root as usize] = Color::Gray;
        stack.push((root, 0));
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let succs = g.successors(u);
            if *next < succs.len() {
                let v = succs[*next];
                *next += 1;
                match color[v as usize] {
                    Color::White => {
                        color[v as usize] = Color::Gray;
                        stack.push((v, 0));
                    }
                    Color::Gray => {
                        // Back edge u -> v: the cycle is v ..stack.. u.
                        let start = stack
                            .iter()
                            .position(|&(w, _)| w == v)
                            .expect("gray node must be on the DFS stack");
                        let cycle = stack[start..].iter().map(|&(w, _)| w).collect();
                        return Err(CycleError { cycle });
                    }
                    Color::Black => {}
                }
            } else {
                color[u as usize] = Color::Black;
                finished.push(u);
                stack.pop();
            }
        }
    }
    finished.reverse();
    Ok(finished)
}

/// Finds one directed cycle if the graph has any.
///
/// Convenience wrapper over [`dfs`].
#[must_use]
pub fn find_cycle(g: &Digraph) -> Option<Vec<NodeId>> {
    match dfs(g) {
        Ok(_) => None,
        Err(e) => Some(e.cycle),
    }
}

/// Checks that `order` is a topological order of `g`: it contains every
/// node exactly once and no edge points backwards.
#[must_use]
pub fn is_topological_order(g: &Digraph, order: &[NodeId]) -> bool {
    let n = g.node_count();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        if (u as usize) >= n || pos[u as usize] != usize::MAX {
            return false;
        }
        pos[u as usize] = i;
    }
    g.edges().all(|(u, v)| pos[u as usize] < pos[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Digraph {
        Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn kahn_sorts_diamond() {
        let g = diamond();
        let order = kahn(&g).unwrap();
        assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn dfs_sorts_diamond() {
        let g = diamond();
        let order = dfs(&g).unwrap();
        assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn kahn_detects_cycle() {
        let g = Digraph::from_edges(2, [(0, 1), (1, 0)]);
        assert!(kahn(&g).is_err());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn dfs_reports_witness_cycle() {
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)]);
        let err = dfs(&g).unwrap_err();
        assert_eq!(err.cycle, vec![1, 2, 3]);
        // The witness really is a cycle.
        for w in err.cycle.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(g.has_edge(*err.cycle.last().unwrap(), err.cycle[0]));
    }

    #[test]
    fn self_loop_is_a_cycle_of_one() {
        let g = Digraph::from_edges(2, [(0, 0), (0, 1)]);
        let err = dfs(&g).unwrap_err();
        assert_eq!(err.cycle, vec![0]);
        assert!(kahn(&g).is_err());
    }

    #[test]
    fn empty_and_edgeless_graphs_sort() {
        assert_eq!(kahn(&Digraph::new(0)).unwrap(), Vec::<NodeId>::new());
        let g = Digraph::new(3);
        assert_eq!(kahn(&g).unwrap(), vec![0, 1, 2]);
        assert_eq!(dfs(&g).unwrap().len(), 3);
    }

    #[test]
    fn order_validator_rejects_bad_orders() {
        let g = diamond();
        assert!(!is_topological_order(&g, &[3, 1, 2, 0]));
        assert!(!is_topological_order(&g, &[0, 1, 2])); // missing node
        assert!(!is_topological_order(&g, &[0, 0, 1, 3])); // duplicate
    }

    #[test]
    fn find_cycle_none_on_dag() {
        assert!(find_cycle(&diamond()).is_none());
    }

    #[test]
    fn kahn_scratch_reuse_matches_fresh() {
        let graphs = [
            diamond(),
            Digraph::from_edges(3, [(2, 1), (1, 0)]),
            Digraph::new(5),
            Digraph::from_edges(2, [(0, 1), (1, 0)]),
            Digraph::new(0),
        ];
        let mut scratch = KahnScratch::new();
        let mut order = Vec::new();
        for g in &graphs {
            let fresh = kahn(g);
            let reused = kahn_into(g, &mut scratch, &mut order);
            match fresh {
                Ok(o) => {
                    assert!(reused.is_ok());
                    assert_eq!(o, order);
                }
                Err(_) => assert!(reused.is_err()),
            }
        }
    }
}

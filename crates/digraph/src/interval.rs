//! Half-open byte intervals and interval query structures.
//!
//! The paper reasons about inclusive intervals `[f, f + l - 1]`; we use the
//! equivalent half-open form `[start, end)` which avoids `- 1` underflow for
//! empty intervals and composes cleanly with Rust range conventions.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// A half-open byte interval `[start, end)`.
///
/// The paper's inclusive interval `[f, f + l - 1]` corresponds to
/// `Interval::from_offset_len(f, l)`.
///
/// # Example
///
/// ```
/// use ipr_digraph::Interval;
///
/// let read = Interval::from_offset_len(10, 4); // bytes 10..14
/// let write = Interval::from_offset_len(12, 8); // bytes 12..20
/// assert!(read.intersects(write));
/// assert_eq!(read.intersection(write), Some(Interval::new(12, 14)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    start: u64,
    end: u64,
}

impl Interval {
    /// Creates the interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "interval start {start} exceeds end {end}");
        Self { start, end }
    }

    /// Creates the interval `[offset, offset + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` overflows `u64`.
    #[must_use]
    pub fn from_offset_len(offset: u64, len: u64) -> Self {
        let end = offset.checked_add(len).expect("interval end overflows u64");
        Self { start: offset, end }
    }

    /// The empty interval `[0, 0)`.
    #[must_use]
    pub fn empty() -> Self {
        Self { start: 0, end: 0 }
    }

    /// Inclusive lower bound.
    #[must_use]
    pub fn start(self) -> u64 {
        self.start
    }

    /// Exclusive upper bound.
    #[must_use]
    pub fn end(self) -> u64 {
        self.end
    }

    /// Number of bytes covered.
    #[must_use]
    pub fn len(self) -> u64 {
        self.end - self.start
    }

    /// Whether the interval covers no bytes.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `byte` lies inside the interval.
    #[must_use]
    pub fn contains(self, byte: u64) -> bool {
        self.start <= byte && byte < self.end
    }

    /// Whether `other` is entirely inside `self`.
    #[must_use]
    pub fn contains_interval(self, other: Interval) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// Whether the two intervals share at least one byte.
    ///
    /// Empty intervals intersect nothing, matching the paper's convention
    /// that zero-length commands cannot conflict.
    #[must_use]
    pub fn intersects(self, other: Interval) -> bool {
        self.start.max(other.start) < self.end.min(other.end)
    }

    /// The common bytes of both intervals, if any.
    #[must_use]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// The interval translated by `delta` bytes.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow.
    #[must_use]
    pub fn shifted(self, delta: u64) -> Self {
        Interval::new(
            self.start
                .checked_add(delta)
                .expect("interval shift overflows"),
            self.end
                .checked_add(delta)
                .expect("interval shift overflows"),
        )
    }

    /// Converts to a `Range<u64>`.
    #[must_use]
    pub fn as_range(self) -> Range<u64> {
        self.start..self.end
    }

    /// Converts to a `Range<usize>` for slice indexing.
    ///
    /// # Panics
    ///
    /// Panics if either bound does not fit in `usize`.
    #[must_use]
    pub fn as_usize_range(self) -> Range<usize> {
        let start = usize::try_from(self.start).expect("interval start exceeds usize");
        let end = usize::try_from(self.end).expect("interval end exceeds usize");
        start..end
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl From<Range<u64>> for Interval {
    fn from(r: Range<u64>) -> Self {
        Interval::new(r.start, r.end)
    }
}

/// Intersection queries against a *sorted, pairwise-disjoint* sequence of
/// intervals.
///
/// This is the data structure behind CRWI edge construction: the write
/// intervals of the copy commands in a well-formed delta file are disjoint,
/// so once sorted, the set of write intervals intersecting any query read
/// interval is a *contiguous index range*, found with two binary searches in
/// `O(log n)`.
///
/// # Example
///
/// ```
/// use ipr_digraph::{Interval, IntervalIndex};
///
/// let idx = IntervalIndex::new(vec![
///     Interval::new(0, 10),
///     Interval::new(10, 20),
///     Interval::new(25, 30),
/// ]).unwrap();
/// assert_eq!(idx.overlapping(Interval::new(5, 26)), 0..3);
/// assert_eq!(idx.overlapping(Interval::new(20, 25)), 2..2); // gap
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalIndex {
    intervals: Vec<Interval>,
}

/// Error returned by [`IntervalIndex::new`] when the input intervals are not
/// sorted and pairwise disjoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverlapError {
    /// Index of the first interval that starts before its predecessor ends.
    pub index: usize,
}

impl fmt::Display for OverlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interval at index {} overlaps or precedes its predecessor",
            self.index
        )
    }
}

impl std::error::Error for OverlapError {}

impl IntervalIndex {
    /// Builds an index over intervals that must already be sorted by start
    /// and pairwise disjoint. Empty intervals are rejected as they can never
    /// participate in an intersection.
    ///
    /// # Errors
    ///
    /// Returns [`OverlapError`] if any interval is empty, starts before its
    /// predecessor ends, or the sequence is unsorted.
    pub fn new(intervals: Vec<Interval>) -> Result<Self, OverlapError> {
        for i in 0..intervals.len() {
            if intervals[i].is_empty() {
                return Err(OverlapError { index: i });
            }
            if i > 0 && intervals[i].start() < intervals[i - 1].end() {
                return Err(OverlapError { index: i });
            }
        }
        Ok(Self { intervals })
    }

    /// Number of indexed intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the index holds no intervals.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The interval stored at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn interval(&self, i: usize) -> Interval {
        self.intervals[i]
    }

    /// Index range of all stored intervals intersecting `query`.
    ///
    /// Because the stored intervals are sorted and disjoint, the result is a
    /// contiguous (possibly empty) range of indices. Runs in `O(log n)`.
    #[must_use]
    pub fn overlapping(&self, query: Interval) -> Range<usize> {
        if query.is_empty() {
            return 0..0;
        }
        // First interval whose end is strictly greater than query.start.
        let lo = self
            .intervals
            .partition_point(|iv| iv.end() <= query.start());
        // First interval whose start is at or past query.end.
        let hi = self
            .intervals
            .partition_point(|iv| iv.start() < query.end());
        if lo >= hi {
            lo..lo
        } else {
            lo..hi
        }
    }
}

/// A coalescing set of byte intervals: the union of everything inserted.
///
/// Used by the write-before-read verifier, which incrementally unions the
/// write intervals of applied commands and asks whether any later read
/// interval touches the union (Equation 2 of the paper).
///
/// # Example
///
/// ```
/// use ipr_digraph::{Interval, IntervalSet};
///
/// let mut set = IntervalSet::new();
/// set.insert(Interval::new(0, 10));
/// set.insert(Interval::new(10, 20)); // coalesces with the first
/// assert_eq!(set.span_count(), 1);
/// assert!(set.intersects(Interval::new(5, 6)));
/// assert!(!set.intersects(Interval::new(20, 30)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Maps span start to span end; spans are disjoint and non-adjacent.
    spans: BTreeMap<u64, u64>,
    /// Total bytes covered.
    covered: u64,
}

impl IntervalSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of maximal disjoint spans currently stored.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Total number of bytes covered by the union.
    #[must_use]
    pub fn covered_bytes(&self) -> u64 {
        self.covered
    }

    /// Whether nothing has been inserted (or only empty intervals).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Inserts `iv` into the union, coalescing with abutting or overlapping
    /// spans. Empty intervals are ignored.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        let mut start = iv.start();
        let mut end = iv.end();
        // Absorb a span beginning at or before `start` that reaches it.
        if let Some((&s, &e)) = self.spans.range(..=start).next_back() {
            if e >= start {
                start = s;
                end = end.max(e);
                self.covered -= e - s;
                self.spans.remove(&s);
            }
        }
        // Absorb every span starting inside (or abutting) the new one.
        loop {
            let next = self.spans.range(start..=end).next().map(|(&s, &e)| (s, e));
            match next {
                Some((s, e)) => {
                    end = end.max(e);
                    self.covered -= e - s;
                    self.spans.remove(&s);
                }
                None => break,
            }
        }
        self.covered += end - start;
        self.spans.insert(start, end);
    }

    /// Whether `iv` shares at least one byte with the union.
    #[must_use]
    pub fn intersects(&self, iv: Interval) -> bool {
        if iv.is_empty() {
            return false;
        }
        if let Some((_, &e)) = self.spans.range(..=iv.start()).next_back() {
            if e > iv.start() {
                return true;
            }
        }
        self.spans.range(iv.start()..iv.end()).next().is_some()
    }

    /// Total bytes of `iv` covered by the union.
    #[must_use]
    pub fn intersection_len(&self, iv: Interval) -> u64 {
        if iv.is_empty() {
            return 0;
        }
        let mut total = 0;
        if let Some((&s, &e)) = self.spans.range(..=iv.start()).next_back() {
            if let Some(x) = Interval::new(s, e).intersection(iv) {
                total += x.len();
            }
        }
        for (&s, &e) in self.spans.range(iv.start() + 1..iv.end()) {
            if let Some(x) = Interval::new(s, e).intersection(iv) {
                total += x.len();
            }
        }
        total
    }

    /// Iterates the maximal disjoint spans in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.spans.iter().map(|(&s, &e)| Interval::new(s, e))
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut set = IntervalSet::new();
        for iv in iter {
            set.insert(iv);
        }
        set
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<I: IntoIterator<Item = Interval>>(&mut self, iter: I) {
        for iv in iter {
            self.insert(iv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::from_offset_len(10, 5);
        assert_eq!(iv.start(), 10);
        assert_eq!(iv.end(), 15);
        assert_eq!(iv.len(), 5);
        assert!(!iv.is_empty());
        assert!(iv.contains(10));
        assert!(iv.contains(14));
        assert!(!iv.contains(15));
    }

    #[test]
    fn empty_interval_has_no_bytes() {
        let iv = Interval::empty();
        assert!(iv.is_empty());
        assert_eq!(iv.len(), 0);
        assert!(!iv.contains(0));
    }

    #[test]
    #[should_panic(expected = "exceeds end")]
    fn inverted_interval_panics() {
        let _ = Interval::new(5, 4);
    }

    #[test]
    fn intersection_cases() {
        let a = Interval::new(0, 10);
        assert!(a.intersects(Interval::new(9, 20)));
        assert!(!a.intersects(Interval::new(10, 20)));
        assert!(!a.intersects(Interval::new(10, 10)));
        assert_eq!(
            a.intersection(Interval::new(5, 30)),
            Some(Interval::new(5, 10))
        );
        assert_eq!(a.intersection(Interval::new(10, 30)), None);
    }

    #[test]
    fn empty_intersects_nothing() {
        let e = Interval::new(5, 5);
        assert!(!e.intersects(Interval::new(0, 10)));
        assert!(!Interval::new(0, 10).intersects(e));
    }

    #[test]
    fn contains_interval_cases() {
        let a = Interval::new(10, 20);
        assert!(a.contains_interval(Interval::new(10, 20)));
        assert!(a.contains_interval(Interval::new(12, 18)));
        assert!(a.contains_interval(Interval::new(0, 0))); // empty fits anywhere
        assert!(!a.contains_interval(Interval::new(9, 12)));
        assert!(!a.contains_interval(Interval::new(18, 21)));
    }

    #[test]
    fn shifted_moves_both_bounds() {
        assert_eq!(Interval::new(1, 4).shifted(10), Interval::new(11, 14));
    }

    #[test]
    fn index_rejects_overlap_and_disorder() {
        assert!(IntervalIndex::new(vec![Interval::new(0, 5), Interval::new(4, 8)]).is_err());
        assert!(IntervalIndex::new(vec![Interval::new(5, 8), Interval::new(0, 2)]).is_err());
        assert!(IntervalIndex::new(vec![Interval::new(3, 3)]).is_err());
        assert!(IntervalIndex::new(vec![]).is_ok());
    }

    #[test]
    fn index_overlapping_ranges() {
        let idx = IntervalIndex::new(vec![
            Interval::new(0, 10),
            Interval::new(10, 20),
            Interval::new(25, 30),
            Interval::new(40, 41),
        ])
        .unwrap();
        assert_eq!(idx.overlapping(Interval::new(0, 1)), 0..1);
        assert_eq!(idx.overlapping(Interval::new(9, 11)), 0..2);
        assert_eq!(idx.overlapping(Interval::new(20, 25)), 2..2);
        assert_eq!(idx.overlapping(Interval::new(5, 41)), 0..4);
        assert_eq!(idx.overlapping(Interval::new(41, 50)), 4..4);
        assert_eq!(idx.overlapping(Interval::new(3, 3)), 0..0);
    }

    #[test]
    fn index_overlapping_on_empty_index() {
        let idx = IntervalIndex::default();
        assert_eq!(idx.overlapping(Interval::new(0, 100)), 0..0);
    }

    #[test]
    fn set_coalesces_adjacent_spans() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(0, 10));
        s.insert(Interval::new(20, 30));
        assert_eq!(s.span_count(), 2);
        s.insert(Interval::new(10, 20));
        assert_eq!(s.span_count(), 1);
        assert_eq!(s.covered_bytes(), 30);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Interval::new(0, 30)]);
    }

    #[test]
    fn set_overlapping_inserts_count_once() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(0, 10));
        s.insert(Interval::new(5, 15));
        s.insert(Interval::new(0, 3));
        assert_eq!(s.covered_bytes(), 15);
        assert_eq!(s.span_count(), 1);
    }

    #[test]
    fn set_insert_bridging_many_spans() {
        let mut s = IntervalSet::new();
        for i in 0..5u64 {
            s.insert(Interval::new(i * 10, i * 10 + 2));
        }
        assert_eq!(s.span_count(), 5);
        s.insert(Interval::new(1, 45));
        assert_eq!(s.span_count(), 1);
        assert_eq!(s.covered_bytes(), 45);
    }

    #[test]
    fn set_intersects_and_length() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(10, 20));
        s.insert(Interval::new(30, 40));
        assert!(s.intersects(Interval::new(19, 31)));
        assert!(!s.intersects(Interval::new(20, 30)));
        assert!(!s.intersects(Interval::new(0, 10)));
        assert_eq!(s.intersection_len(Interval::new(15, 35)), 10);
        assert_eq!(s.intersection_len(Interval::new(0, 100)), 20);
        assert_eq!(s.intersection_len(Interval::new(20, 30)), 0);
    }

    #[test]
    fn set_ignores_empty_inserts() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(7, 7));
        assert!(s.is_empty());
        assert_eq!(s.covered_bytes(), 0);
    }

    #[test]
    fn set_from_iterator() {
        let s: IntervalSet = [Interval::new(0, 5), Interval::new(5, 9)]
            .into_iter()
            .collect();
        assert_eq!(s.covered_bytes(), 9);
        assert_eq!(s.span_count(), 1);
    }
}

//! Exact minimum-cost feedback vertex set for small digraphs.
//!
//! The paper shows that choosing the minimum-compression-cost set of copy
//! commands to convert (so the CRWI digraph becomes acyclic) is NP-hard by
//! reduction from Karp's feedback vertex set. This module provides an exact
//! exponential-time solver usable on small graphs, so the heuristic
//! cycle-breaking policies (constant-time, locally-minimum) can be compared
//! against the true optimum in ablation experiments.
//!
//! The search decomposes the graph into strongly connected components
//! (cycles never cross components) and enumerates removal subsets per
//! cyclic component, so the cost is `O(sum over cyclic SCCs of 2^|scc|)`
//! rather than `2^|V|`.

use crate::{scc, topo, Digraph, NodeId};
use std::fmt;

/// Error returned when a cyclic strongly connected component exceeds the
/// caller's exhaustive-search limit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentTooLarge {
    /// Size of the offending component.
    pub size: usize,
    /// The caller-supplied limit.
    pub limit: usize,
}

impl fmt::Display for ComponentTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "strongly connected component of {} nodes exceeds exhaustive FVS limit {}",
            self.size, self.limit
        )
    }
}

impl std::error::Error for ComponentTooLarge {}

/// Computes an exact minimum-cost feedback vertex set.
///
/// Returns a set of nodes (ascending id order) of minimum total `cost`
/// whose removal leaves `g` acyclic. `cost[v]` is the price of removing
/// node `v`; for the in-place problem it is the compression lost by
/// converting copy command `v` to an add command.
///
/// Ties between equal-cost optima are broken deterministically (the
/// lexicographically smallest removal bitmask per component wins).
///
/// # Errors
///
/// Returns [`ComponentTooLarge`] if any cyclic strongly connected component
/// has more than `limit` nodes (the per-component search enumerates up to
/// `2^|scc|` subsets; limits above ~25 are impractical).
///
/// # Panics
///
/// Panics if `cost.len() != g.node_count()`.
///
/// # Example
///
/// ```
/// use ipr_digraph::{Digraph, fvs};
///
/// // Two 2-cycles sharing no nodes; cheapest vertex of each must go.
/// let g = Digraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]);
/// let set = fvs::minimum_feedback_vertex_set(&g, &[5, 1, 1, 5], 16).unwrap();
/// assert_eq!(set, vec![1, 2]);
/// ```
pub fn minimum_feedback_vertex_set(
    g: &Digraph,
    cost: &[u64],
    limit: usize,
) -> Result<Vec<NodeId>, ComponentTooLarge> {
    assert_eq!(
        cost.len(),
        g.node_count(),
        "cost vector length must equal node count"
    );
    let limit = limit.min(63); // bitmask search space
    let sccs = scc::tarjan(g);
    let mut removed: Vec<NodeId> = Vec::new();
    for comp in sccs.cyclic_components(g) {
        if comp.len() > limit {
            return Err(ComponentTooLarge {
                size: comp.len(),
                limit,
            });
        }
        removed.extend(solve_component(g, cost, comp));
    }
    removed.sort_unstable();
    Ok(removed)
}

/// Exhaustively solves one cyclic strongly connected component.
fn solve_component(g: &Digraph, cost: &[u64], comp: &[NodeId]) -> Vec<NodeId> {
    // Sort members so tie-breaking is in ascending node-id order rather than
    // Tarjan discovery order.
    let mut comp = comp.to_vec();
    comp.sort_unstable();
    let comp = &comp[..];
    let k = comp.len();
    debug_assert!(k <= 64, "component too large for bitmask search");
    // Local adjacency restricted to the component.
    let mut local_pos = std::collections::HashMap::with_capacity(k);
    for (i, &v) in comp.iter().enumerate() {
        local_pos.insert(v, i);
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &v) in comp.iter().enumerate() {
        for &w in g.successors(v) {
            if let Some(&j) = local_pos.get(&w) {
                adj[i].push(j);
            }
        }
    }

    let total: u128 = 1u128 << k;
    let mut best_mask: u64 = (1u64 << (k - 1)) | ((1u64 << (k - 1)) - 1); // all nodes
    let mut best_cost: u64 = comp.iter().map(|&v| cost[v as usize]).sum();

    let mut mask: u128 = 0;
    while mask < total {
        let m = mask as u64;
        let c: u64 = (0..k)
            .filter(|&i| m & (1 << i) != 0)
            .map(|i| cost[comp[i] as usize])
            .sum();
        if (c < best_cost || (c == best_cost && m < best_mask))
            && is_acyclic_after_removal(&adj, k, m)
        {
            best_cost = c;
            best_mask = m;
        }
        mask += 1;
    }

    (0..k)
        .filter(|&i| best_mask & (1 << i) != 0)
        .map(|i| comp[i])
        .collect()
}

/// Kahn's algorithm on the component with `removed` nodes masked out.
fn is_acyclic_after_removal(adj: &[Vec<usize>], k: usize, removed: u64) -> bool {
    let mut indeg = vec![0usize; k];
    for (i, succs) in adj.iter().enumerate() {
        if removed & (1 << i) != 0 {
            continue;
        }
        for &j in succs {
            if removed & (1 << j) == 0 {
                indeg[j] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..k)
        .filter(|&i| removed & (1 << i) == 0 && indeg[i] == 0)
        .collect();
    let mut seen = queue.len();
    while let Some(i) = queue.pop() {
        for &j in &adj[i] {
            if removed & (1 << j) != 0 {
                continue;
            }
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
                seen += 1;
            }
        }
    }
    let kept = k - removed.count_ones() as usize;
    seen == kept
}

/// Total cost of a node set under `cost`.
///
/// # Example
///
/// ```
/// assert_eq!(ipr_digraph::fvs::set_cost(&[0, 2], &[5, 6, 7]), 12);
/// ```
#[must_use]
pub fn set_cost(set: &[NodeId], cost: &[u64]) -> u64 {
    set.iter().map(|&v| cost[v as usize]).sum()
}

/// Verifies that removing `set` from `g` leaves an acyclic graph.
///
/// # Example
///
/// ```
/// use ipr_digraph::{Digraph, fvs};
///
/// let g = Digraph::from_edges(2, [(0, 1), (1, 0)]);
/// assert!(fvs::is_feedback_vertex_set(&g, &[0]));
/// assert!(!fvs::is_feedback_vertex_set(&g, &[]));
/// ```
#[must_use]
pub fn is_feedback_vertex_set(g: &Digraph, set: &[NodeId]) -> bool {
    let mut keep = vec![true; g.node_count()];
    for &v in set {
        if (v as usize) < keep.len() {
            keep[v as usize] = false;
        }
    }
    topo::is_acyclic(&g.induced(&keep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_on_dag() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let set = minimum_feedback_vertex_set(&g, &[1, 1, 1], 10).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn single_cycle_removes_cheapest() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let set = minimum_feedback_vertex_set(&g, &[10, 3, 7], 10).unwrap();
        assert_eq!(set, vec![1]);
        assert!(is_feedback_vertex_set(&g, &set));
    }

    #[test]
    fn self_loop_must_remove_that_node() {
        let g = Digraph::from_edges(2, [(0, 0), (0, 1)]);
        let set = minimum_feedback_vertex_set(&g, &[100, 1], 10).unwrap();
        assert_eq!(set, vec![0]);
    }

    #[test]
    fn figure2_tree_optimum_is_root() {
        // Paper Fig. 2: cycles (v0, ..., vi, v0) for each leaf vi; the root v0
        // participates in every cycle. Model: root -> internal nodes -> leaves,
        // leaf -> root. Local-minimum would delete every leaf; the optimum
        // deletes the root.
        // Nodes: 0 = root; 1,2 internal; 3..7 leaves.
        let g = Digraph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (2, 5),
                (2, 6),
                (3, 0),
                (4, 0),
                (5, 0),
                (6, 0),
            ],
        );
        // Root slightly more expensive than a single leaf but cheaper than all.
        let cost = [3, 2, 2, 2, 2, 2, 2];
        let set = minimum_feedback_vertex_set(&g, &cost, 16).unwrap();
        assert_eq!(set, vec![0]);
        assert!(is_feedback_vertex_set(&g, &set));
    }

    #[test]
    fn two_disjoint_cycles() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]);
        let set = minimum_feedback_vertex_set(&g, &[2, 9, 9, 2], 10).unwrap();
        assert_eq!(set, vec![0, 3]);
    }

    #[test]
    fn overlapping_cycles_single_removal_suffices() {
        // Two triangles sharing node 0: removing 0 kills both.
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let set = minimum_feedback_vertex_set(&g, &[5, 4, 4, 4, 4], 16).unwrap();
        assert_eq!(set, vec![0]);
    }

    #[test]
    fn limit_enforced() {
        let n = 20;
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Digraph::from_edges(n as usize, edges);
        let err = minimum_feedback_vertex_set(&g, &vec![1; n as usize], 8).unwrap_err();
        assert_eq!(err.size, 20);
        assert_eq!(err.limit, 8);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let g = Digraph::from_edges(2, [(0, 1), (1, 0)]);
        let set = minimum_feedback_vertex_set(&g, &[1, 1], 10).unwrap();
        assert_eq!(set, vec![0]); // smallest mask wins ties
    }

    #[test]
    fn set_cost_sums() {
        assert_eq!(set_cost(&[0, 2], &[5, 6, 7]), 12);
    }
}

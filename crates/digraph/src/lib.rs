//! Graph and interval substrate for in-place reconstruction of delta
//! compressed files.
//!
//! This crate provides the combinatorial building blocks used by
//! [`ipr-core`](https://example.invalid/ipr) to implement the Burns & Long
//! (PODC '98) algorithm:
//!
//! * [`Interval`] — half-open byte intervals with intersection arithmetic,
//!   plus [`IntervalIndex`] (contiguous-range intersection queries against a
//!   sorted, disjoint interval sequence — the core of CRWI edge construction)
//!   and [`IntervalSet`] (a coalescing union of intervals — the core of the
//!   write-before-read verifier).
//! * [`Digraph`] — a compact adjacency-list digraph.
//! * [`topo`] — Kahn and DFS topological sorts; the DFS variant reports a
//!   witness cycle on failure, which the in-place conversion algorithm uses
//!   to drive its cycle-breaking policies.
//! * [`scc`] — Tarjan's strongly connected components.
//! * [`fvs`] — exact (exponential) minimum feedback vertex set for small
//!   digraphs, used as an ablation baseline against the paper's heuristic
//!   cycle-breaking policies.
//!
//! # Example
//!
//! ```
//! use ipr_digraph::{Digraph, topo};
//!
//! let mut g = Digraph::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! let order = topo::kahn(&g).expect("acyclic");
//! assert_eq!(order, vec![0, 1, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod interval;

pub mod fvs;
pub mod scc;
pub mod topo;

pub use graph::{Digraph, EdgeIter, NodeId};
pub use interval::{Interval, IntervalIndex, IntervalSet, OverlapError};
pub use topo::CycleError;

//! A compact adjacency-list digraph.

use std::fmt;

/// Identifier of a node in a [`Digraph`]; nodes are numbered `0..n`.
pub type NodeId = u32;

/// A directed graph stored as per-node adjacency lists.
///
/// Nodes are dense integers `0..node_count()`. Parallel edges are permitted
/// by `add_edge` (the CRWI construction never produces them, but the
/// substrate does not forbid them); self-loops are permitted as well and are
/// relevant to cycle analysis.
///
/// # Example
///
/// ```
/// use ipr_digraph::Digraph;
///
/// let mut g = Digraph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.successors(1), &[2]);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Digraph {
    adj: Vec<Vec<NodeId>>,
    edges: usize,
}

impl Digraph {
    /// Creates a digraph with `nodes` nodes and no edges.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds `u32::MAX` node identifiers.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        assert!(
            u32::try_from(nodes).is_ok(),
            "digraph node count {nodes} exceeds u32 id space"
        );
        Self {
            adj: vec![Vec::new(); nodes],
            edges: 0,
        }
    }

    /// Builds a digraph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= nodes`.
    #[must_use]
    pub fn from_edges(nodes: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = Self::new(nodes);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is not a node of the graph.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        let n = self.adj.len();
        assert!(
            (u as usize) < n,
            "edge source {u} out of bounds ({n} nodes)"
        );
        assert!(
            (v as usize) < n,
            "edge target {v} out of bounds ({n} nodes)"
        );
        self.adj[u as usize].push(v);
        self.edges += 1;
    }

    /// Resets the graph to `nodes` nodes and no edges, recycling adjacency
    /// storage through `spare` instead of freeing it.
    ///
    /// Shrinking pushes surplus (cleared) adjacency lists into `spare`;
    /// growing pops them back. Once `spare` and the graph have reached the
    /// high-water node count of a workload, repeated resets perform no heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds `u32::MAX` node identifiers.
    pub fn reset_with_spare(&mut self, nodes: usize, spare: &mut Vec<Vec<NodeId>>) {
        assert!(
            u32::try_from(nodes).is_ok(),
            "digraph node count {nodes} exceeds u32 id space"
        );
        for list in &mut self.adj {
            list.clear();
        }
        while self.adj.len() > nodes {
            let list = self.adj.pop().expect("len checked above");
            spare.push(list);
        }
        while self.adj.len() < nodes {
            self.adj.push(spare.pop().unwrap_or_default());
        }
        self.edges = 0;
    }

    /// The successors of `u` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a node of the graph.
    #[must_use]
    pub fn successors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a node of the graph.
    #[must_use]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// In-degrees of every node, computed in `O(V + E)`.
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_digraph::Digraph;
    ///
    /// let g = Digraph::from_edges(3, [(0, 2), (1, 2)]);
    /// assert_eq!(g.in_degrees(), vec![0, 0, 2]);
    /// ```
    #[must_use]
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.adj.len()];
        for succs in &self.adj {
            for &v in succs {
                deg[v as usize] += 1;
            }
        }
        deg
    }

    /// Whether the edge `u -> v` exists (linear in `out_degree(u)`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a node of the graph.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].contains(&v)
    }

    /// The graph with every edge reversed.
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_digraph::Digraph;
    ///
    /// let g = Digraph::from_edges(2, [(0, 1)]);
    /// assert!(g.reversed().has_edge(1, 0));
    /// ```
    #[must_use]
    pub fn reversed(&self) -> Digraph {
        let mut rev = Digraph::new(self.adj.len());
        for (u, succs) in self.adj.iter().enumerate() {
            for &v in succs {
                rev.add_edge(v, u as NodeId);
            }
        }
        rev
    }

    /// The subgraph induced by keeping exactly the nodes where
    /// `keep[node]` is true. Node ids are preserved; edges touching removed
    /// nodes are dropped.
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_digraph::Digraph;
    ///
    /// let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
    /// let sub = g.induced(&[true, false, true]);
    /// assert_eq!(sub.edge_count(), 0); // both edges touched node 1
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != node_count()`.
    #[must_use]
    pub fn induced(&self, keep: &[bool]) -> Digraph {
        assert_eq!(
            keep.len(),
            self.adj.len(),
            "keep mask length must equal node count"
        );
        let mut g = Digraph::new(self.adj.len());
        for (u, succs) in self.adj.iter().enumerate() {
            if !keep[u] {
                continue;
            }
            for &v in succs {
                if keep[v as usize] {
                    g.add_edge(u as NodeId, v);
                }
            }
        }
        g
    }

    /// Renders the graph in Graphviz DOT syntax, labelling each node with
    /// `label(id)`.
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_digraph::Digraph;
    ///
    /// let g = Digraph::from_edges(2, [(0, 1)]);
    /// let dot = g.to_dot(|v| format!("n{v}"));
    /// assert!(dot.contains("0 -> 1;"));
    /// assert!(dot.contains("label=\"n1\""));
    /// ```
    pub fn to_dot<F: Fn(NodeId) -> String>(&self, label: F) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph crwi {\n");
        for v in 0..self.adj.len() as NodeId {
            let text = label(v).replace('"', "\\\"");
            writeln!(out, "  {v} [label=\"{text}\"];").expect("writing to String");
        }
        for (u, v) in self.edges() {
            writeln!(out, "  {u} -> {v};").expect("writing to String");
        }
        out.push_str("}\n");
        out
    }

    /// Iterates all edges as `(source, target)` pairs.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            node: 0,
            pos: 0,
        }
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Digraph")
            .field("nodes", &self.adj.len())
            .field("edges", &self.edges)
            .finish()
    }
}

/// Iterator over the edges of a [`Digraph`], produced by [`Digraph::edges`].
#[derive(Clone, Debug)]
pub struct EdgeIter<'a> {
    graph: &'a Digraph,
    node: usize,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        while self.node < self.graph.adj.len() {
            let succs = &self.graph.adj[self.node];
            if self.pos < succs.len() {
                let edge = (self.node as NodeId, succs[self.pos]);
                self.pos += 1;
                return Some(edge);
            }
            self.node += 1;
            self.pos = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.graph.edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Digraph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 0);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(1), 0);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_degrees(), vec![1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_target_out_of_bounds_panics() {
        let mut g = Digraph::new(1);
        g.add_edge(0, 1);
    }

    #[test]
    fn from_edges_collects() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (2, 3), (3, 0)]
        );
    }

    #[test]
    fn reversed_flips_all_edges() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn induced_subgraph_drops_edges() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sub = g.induced(&[true, true, false, true]);
        assert_eq!(sub.edge_count(), 2); // 0 -> 1 and 3 -> 0 survive
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(3, 0));
        assert!(!sub.has_edge(1, 2));
        assert!(!sub.has_edge(2, 3));
    }

    #[test]
    fn self_loops_allowed() {
        let mut g = Digraph::new(1);
        g.add_edge(0, 0);
        assert!(g.has_edge(0, 0));
        assert_eq!(g.in_degrees(), vec![1]);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Digraph::new(2);
        assert!(!format!("{g:?}").is_empty());
    }

    #[test]
    fn dot_output_escapes_and_lists_everything() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let dot = g.to_dot(|v| format!("say \"{v}\""));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"say \\\"1\\\"\""));
        assert_eq!(dot.matches(" -> ").count(), 3);
    }
}

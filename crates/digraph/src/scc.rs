//! Tarjan's strongly connected components.
//!
//! Used to localize cycle-breaking work: every directed cycle lies entirely
//! inside one strongly connected component, so exact feedback-vertex-set
//! search ([`crate::fvs`]) and cycle statistics can be computed per
//! component.

use crate::{Digraph, NodeId};

/// The strongly connected components of a digraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sccs {
    /// `component[v]` is the id of the SCC containing node `v`.
    component: Vec<u32>,
    /// Members of each component, in discovery order.
    members: Vec<Vec<NodeId>>,
}

impl Sccs {
    /// Number of components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The component id of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.component[v as usize]
    }

    /// The members of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn members(&self, c: u32) -> &[NodeId] {
        &self.members[c as usize]
    }

    /// Iterates the components, largest first.
    #[must_use]
    pub fn by_size_desc(&self) -> Vec<&[NodeId]> {
        let mut v: Vec<&[NodeId]> = self.members.iter().map(Vec::as_slice).collect();
        v.sort_by_key(|m| std::cmp::Reverse(m.len()));
        v
    }

    /// Components that can contain a cycle: size > 1, or a single node with a
    /// self-loop in `g`.
    #[must_use]
    pub fn cyclic_components<'a>(&'a self, g: &'a Digraph) -> Vec<&'a [NodeId]> {
        self.members
            .iter()
            .map(Vec::as_slice)
            .filter(|m| m.len() > 1 || (m.len() == 1 && g.has_edge(m[0], m[0])))
            .collect()
    }
}

/// Computes the strongly connected components with an iterative Tarjan
/// algorithm in `O(V + E)`.
///
/// Component ids are assigned in reverse topological order of the
/// condensation (a Tarjan property): if component `a` has an edge into
/// component `b` (`a != b`), then `a`'s id is greater than `b`'s.
///
/// # Example
///
/// ```
/// use ipr_digraph::{Digraph, scc};
///
/// let g = Digraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3)]);
/// let sccs = scc::tarjan(&g);
/// assert_eq!(sccs.count(), 3);
/// assert_eq!(sccs.component_of(0), sccs.component_of(1));
/// ```
#[must_use]
pub fn tarjan(g: &Digraph) -> Sccs {
    let n = g.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut component = vec![UNVISITED; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0u32;

    // Iterative DFS frame: (node, next successor position).
    let mut call: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n as NodeId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (u, ref mut pos)) = call.last_mut() {
            let succs = g.successors(u);
            if *pos < succs.len() {
                let v = succs[*pos];
                *pos += 1;
                if index[v as usize] == UNVISITED {
                    index[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    call.push((v, 0));
                } else if on_stack[v as usize] {
                    lowlink[u as usize] = lowlink[u as usize].min(index[v as usize]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[u as usize]);
                }
                if lowlink[u as usize] == index[u as usize] {
                    let id = members.len() as u32;
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = id;
                        comp.push(w);
                        if w == u {
                            break;
                        }
                    }
                    members.push(comp);
                }
            }
        }
    }

    Sccs { component, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_on_dag() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let s = tarjan(&g);
        assert_eq!(s.count(), 3);
        assert_ne!(s.component_of(0), s.component_of(1));
    }

    #[test]
    fn one_big_cycle() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = tarjan(&g);
        assert_eq!(s.count(), 1);
        assert_eq!(s.members(0).len(), 4);
    }

    #[test]
    fn two_cycles_and_bridge() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 3), (4, 5)]);
        let s = tarjan(&g);
        assert_eq!(s.count(), 4);
        assert_eq!(s.component_of(0), s.component_of(1));
        assert_eq!(s.component_of(3), s.component_of(4));
        assert_ne!(s.component_of(0), s.component_of(3));
        let cyclic = s.cyclic_components(&g);
        assert_eq!(cyclic.len(), 2);
    }

    #[test]
    fn self_loop_counts_as_cyclic() {
        let g = Digraph::from_edges(2, [(0, 0)]);
        let s = tarjan(&g);
        assert_eq!(s.count(), 2);
        let cyclic = s.cyclic_components(&g);
        assert_eq!(cyclic.len(), 1);
        assert_eq!(cyclic[0], &[0]);
    }

    #[test]
    fn condensation_order_property() {
        // Edge between different components implies source id > target id.
        let g = Digraph::from_edges(5, [(0, 1), (1, 0), (1, 2), (3, 2), (3, 4), (4, 3)]);
        let s = tarjan(&g);
        for (u, v) in g.edges() {
            let (cu, cv) = (s.component_of(u), s.component_of(v));
            if cu != cv {
                assert!(cu > cv, "edge {u}->{v} violates condensation order");
            }
        }
    }

    #[test]
    fn by_size_desc_sorted() {
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]);
        let s = tarjan(&g);
        let sizes: Vec<usize> = s.by_size_desc().iter().map(|m| m.len()).collect();
        assert_eq!(sizes, vec![3, 2]);
    }

    #[test]
    fn empty_graph() {
        let s = tarjan(&Digraph::new(0));
        assert_eq!(s.count(), 0);
    }
}

//! Tarjan's strongly connected components.
//!
//! Used to localize cycle-breaking work: every directed cycle lies entirely
//! inside one strongly connected component, so exact feedback-vertex-set
//! search ([`crate::fvs`]) and cycle statistics can be computed per
//! component.

use crate::{Digraph, NodeId};

/// The strongly connected components of a digraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sccs {
    /// `component[v]` is the id of the SCC containing node `v`.
    component: Vec<u32>,
    /// Members of each component, in discovery order.
    members: Vec<Vec<NodeId>>,
}

impl Sccs {
    /// Number of components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The component id of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.component[v as usize]
    }

    /// The members of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn members(&self, c: u32) -> &[NodeId] {
        &self.members[c as usize]
    }

    /// Iterates the components, largest first.
    #[must_use]
    pub fn by_size_desc(&self) -> Vec<&[NodeId]> {
        let mut v: Vec<&[NodeId]> = self.members.iter().map(Vec::as_slice).collect();
        v.sort_by_key(|m| std::cmp::Reverse(m.len()));
        v
    }

    /// Components that can contain a cycle: size > 1, or a single node with a
    /// self-loop in `g`.
    #[must_use]
    pub fn cyclic_components<'a>(&'a self, g: &'a Digraph) -> Vec<&'a [NodeId]> {
        self.members
            .iter()
            .map(Vec::as_slice)
            .filter(|m| m.len() > 1 || (m.len() == 1 && g.has_edge(m[0], m[0])))
            .collect()
    }
}

/// Reusable working storage for [`tarjan_into`].
///
/// Holds the DFS bookkeeping plus the result in compressed (CSR) form:
/// members of every component live back-to-back in one flat array. A
/// scratch reused across runs grows to the high-water graph size and then
/// performs no heap allocation at all.
#[derive(Debug, Default)]
pub struct SccScratch {
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<NodeId>,
    call: Vec<(NodeId, usize)>,
    component: Vec<u32>,
    /// Flat member storage; component `c` occupies
    /// `offsets[c]..offsets[c + 1]`, in Tarjan stack pop order.
    members: Vec<NodeId>,
    offsets: Vec<u32>,
}

impl SccScratch {
    /// Creates an empty scratch; storage is grown on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of components found by the last [`tarjan_into`] run.
    #[must_use]
    pub fn count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The component id of node `v` (from the last run).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn component_of(&self, v: NodeId) -> u32 {
        self.component[v as usize]
    }

    /// The members of component `c` (from the last run), in discovery
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn members_of(&self, c: u32) -> &[NodeId] {
        let lo = self.offsets[c as usize] as usize;
        let hi = self.offsets[c as usize + 1] as usize;
        &self.members[lo..hi]
    }
}

/// Computes the strongly connected components with an iterative Tarjan
/// algorithm in `O(V + E)`.
///
/// Component ids are assigned in reverse topological order of the
/// condensation (a Tarjan property): if component `a` has an edge into
/// component `b` (`a != b`), then `a`'s id is greater than `b`'s.
///
/// # Example
///
/// ```
/// use ipr_digraph::{Digraph, scc};
///
/// let g = Digraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3)]);
/// let sccs = scc::tarjan(&g);
/// assert_eq!(sccs.count(), 3);
/// assert_eq!(sccs.component_of(0), sccs.component_of(1));
/// ```
#[must_use]
pub fn tarjan(g: &Digraph) -> Sccs {
    let mut scratch = SccScratch::new();
    tarjan_into(g, &mut scratch);
    let members = (0..scratch.count() as u32)
        .map(|c| scratch.members_of(c).to_vec())
        .collect();
    Sccs {
        component: scratch.component,
        members,
    }
}

/// Allocation-free variant of [`tarjan`]: runs the same algorithm with all
/// working storage and results held in `scratch`.
///
/// Component ids and per-component member order are identical to
/// [`tarjan`] (which is a thin wrapper over this function).
pub fn tarjan_into(g: &Digraph, scratch: &mut SccScratch) {
    let n = g.node_count();
    const UNVISITED: u32 = u32::MAX;
    let SccScratch {
        index,
        lowlink,
        on_stack,
        stack,
        call,
        component,
        members,
        offsets,
    } = scratch;
    index.clear();
    index.resize(n, UNVISITED);
    lowlink.clear();
    lowlink.resize(n, 0);
    on_stack.clear();
    on_stack.resize(n, false);
    stack.clear();
    call.clear();
    component.clear();
    component.resize(n, UNVISITED);
    members.clear();
    offsets.clear();
    offsets.push(0);
    let mut next_index = 0u32;
    let mut next_component = 0u32;

    for root in 0..n as NodeId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (u, ref mut pos)) = call.last_mut() {
            let succs = g.successors(u);
            if *pos < succs.len() {
                let v = succs[*pos];
                *pos += 1;
                if index[v as usize] == UNVISITED {
                    index[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    call.push((v, 0));
                } else if on_stack[v as usize] {
                    lowlink[u as usize] = lowlink[u as usize].min(index[v as usize]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[u as usize]);
                }
                if lowlink[u as usize] == index[u as usize] {
                    // A whole SCC sits on top of the stack; pop it into the
                    // flat member array (members of one component are
                    // therefore contiguous).
                    let id = next_component;
                    next_component += 1;
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = id;
                        members.push(w);
                        if w == u {
                            break;
                        }
                    }
                    offsets.push(members.len() as u32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_on_dag() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let s = tarjan(&g);
        assert_eq!(s.count(), 3);
        assert_ne!(s.component_of(0), s.component_of(1));
    }

    #[test]
    fn one_big_cycle() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = tarjan(&g);
        assert_eq!(s.count(), 1);
        assert_eq!(s.members(0).len(), 4);
    }

    #[test]
    fn two_cycles_and_bridge() {
        let g = Digraph::from_edges(6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 3), (4, 5)]);
        let s = tarjan(&g);
        assert_eq!(s.count(), 4);
        assert_eq!(s.component_of(0), s.component_of(1));
        assert_eq!(s.component_of(3), s.component_of(4));
        assert_ne!(s.component_of(0), s.component_of(3));
        let cyclic = s.cyclic_components(&g);
        assert_eq!(cyclic.len(), 2);
    }

    #[test]
    fn self_loop_counts_as_cyclic() {
        let g = Digraph::from_edges(2, [(0, 0)]);
        let s = tarjan(&g);
        assert_eq!(s.count(), 2);
        let cyclic = s.cyclic_components(&g);
        assert_eq!(cyclic.len(), 1);
        assert_eq!(cyclic[0], &[0]);
    }

    #[test]
    fn condensation_order_property() {
        // Edge between different components implies source id > target id.
        let g = Digraph::from_edges(5, [(0, 1), (1, 0), (1, 2), (3, 2), (3, 4), (4, 3)]);
        let s = tarjan(&g);
        for (u, v) in g.edges() {
            let (cu, cv) = (s.component_of(u), s.component_of(v));
            if cu != cv {
                assert!(cu > cv, "edge {u}->{v} violates condensation order");
            }
        }
    }

    #[test]
    fn by_size_desc_sorted() {
        let g = Digraph::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]);
        let s = tarjan(&g);
        let sizes: Vec<usize> = s.by_size_desc().iter().map(|m| m.len()).collect();
        assert_eq!(sizes, vec![3, 2]);
    }

    #[test]
    fn empty_graph() {
        let s = tarjan(&Digraph::new(0));
        assert_eq!(s.count(), 0);
    }

    /// SplitMix64, for deterministic pseudo-random graphs without an RNG
    /// dependency.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn scratch_reuse_matches_fresh_on_random_graphs() {
        let mut scratch = SccScratch::new();
        let mut state = 0x1234_5678u64;
        for case in 0..50 {
            let n = (splitmix64(&mut state) % 40) as usize;
            let edges = (splitmix64(&mut state) % 120) as usize;
            let mut g = Digraph::new(n);
            if n > 0 {
                for _ in 0..edges {
                    let u = (splitmix64(&mut state) % n as u64) as NodeId;
                    let v = (splitmix64(&mut state) % n as u64) as NodeId;
                    g.add_edge(u, v);
                }
            }
            let fresh = tarjan(&g);
            tarjan_into(&g, &mut scratch);
            assert_eq!(fresh.count(), scratch.count(), "case {case}");
            for v in 0..n as NodeId {
                assert_eq!(fresh.component_of(v), scratch.component_of(v));
            }
            for c in 0..fresh.count() as u32 {
                assert_eq!(fresh.members(c), scratch.members_of(c));
            }
        }
    }
}

//! Fast non-cryptographic hashing for hot-path hash maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per key. Hot-path maps whose
//! keys are already high-entropy don't need that protection and
//! shouldn't pay for it.
//!
//! Note the greedy differencing index, this crate's original customer,
//! no longer hashes generically at all: its chain heads live in a flat
//! open-addressed table keyed directly by the already-mixed Karp-Rabin
//! seed hash (`ipr-delta`'s `diff/scratch.rs`), which beats even the Fx
//! hash by skipping the hasher and SwissTable probe sequence entirely.
//! `FxHashMap` remains the right default for other non-adversarial maps
//! (caches, interning tables, server-side bookkeeping).
//!
//! [`FxHasher`] is the multiply-xor hash used by rustc (firefox's "Fx"
//! hash): one 64-bit multiply per word of input. It is *not* collision
//! resistant against adversarial keys; use it only where keys are already
//! high-entropy (e.g. rolling hashes) or where an attacker controlling
//! keys could at worst slow down their own request.
//!
//! # Example
//!
//! ```
//! use ipr_hash::FxHashMap;
//!
//! let mut index: FxHashMap<u64, u32> = FxHashMap::default();
//! index.insert(0xdead_beef, 7);
//! assert_eq!(index[&0xdead_beef], 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio multiplier (2^64 / φ), the classic Fibonacci-hashing
/// constant; odd, so multiplication permutes the 2^64 residues.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The rustc-style multiply-xor hasher: `state = (state ^ word) * SEED`
/// per input word, with a final bit mix so low output bits depend on high
/// input bits (HashMap uses the low bits for bucket selection).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: without it, keys differing only in high bits
        // collide in the low bits HashMap buckets by.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(hash_of(b"hello"), hash_of(b"world"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
        // Length is mixed into the tail word, so zero-padding differs.
        assert_ne!(hash_of(b"\0\0"), hash_of(b"\0\0\0"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(b"stable"), hash_of(b"stable"));
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(12345u64), b.hash_one(12345u64));
    }

    #[test]
    fn low_bits_depend_on_high_input_bits() {
        // Bucket masks use low bits: consecutive high-bit-differing keys
        // must not collide there.
        let b = FxBuildHasher::default();
        let mut low = std::collections::HashSet::new();
        for i in 0..64u64 {
            low.insert(b.hash_one(i << 58) & 0xff);
        }
        assert!(low.len() > 32, "only {} distinct low bytes", low.len());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m[&1], "one");
        assert_eq!(m.len(), 2);
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn word_spread_is_reasonable() {
        // 10k sequential u64 keys into 1k buckets: expect near-uniform.
        let b = FxBuildHasher::default();
        let mut buckets = vec![0u32; 1024];
        for i in 0..10_240u64 {
            buckets[(b.hash_one(i) & 1023) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 40, "worst bucket holds {max} of 10240");
    }
}

//! Edge-case coverage for the streaming update session, the flash
//! updater's eviction paths and channel arithmetic.

use ipr_core::{convert_to_in_place, ConversionConfig};
use ipr_delta::diff::{Differ, GreedyDiffer};
use ipr_delta::{Command, DeltaScript};
use ipr_device::flash::{FlashStorage, FlashUpdater};
use ipr_device::{Channel, Device, DeviceError};
use std::time::Duration;

#[test]
fn session_rejects_overlapping_writes() {
    let mut dev = Device::new(16);
    dev.flash(&[7u8; 16]).unwrap();
    let mut s = dev.begin_update(16, 16).unwrap();
    s.apply_command(&Command::copy(0, 0, 8)).unwrap();
    let err = s.apply_command(&Command::copy(8, 4, 8)).unwrap_err();
    assert!(matches!(err, DeviceError::InvalidCommand { command: 1 }));
}

#[test]
fn session_rejects_out_of_bounds_reads_and_writes() {
    let mut dev = Device::new(32);
    dev.flash(&[1u8; 16]).unwrap();
    let mut s = dev.begin_update(16, 20).unwrap();
    // Write past the declared target.
    assert!(matches!(
        s.apply_command(&Command::copy(0, 16, 8)),
        Err(DeviceError::InvalidCommand { .. })
    ));
    // Read past the installed image.
    assert!(matches!(
        s.apply_command(&Command::copy(10, 0, 8)),
        Err(DeviceError::InvalidCommand { .. })
    ));
    // Offset overflow must not panic.
    assert!(matches!(
        s.apply_command(&Command::copy(0, u64::MAX - 2, 8)),
        Err(DeviceError::InvalidCommand { .. })
    ));
}

#[test]
fn session_commit_requires_full_coverage() {
    let mut dev = Device::new(16);
    dev.flash(&[2u8; 16]).unwrap();
    let mut s = dev.begin_update(16, 16).unwrap();
    s.apply_command(&Command::copy(0, 0, 8)).unwrap();
    let err = s.commit().unwrap_err();
    assert_eq!(
        err,
        DeviceError::IncompleteUpdate {
            covered: 8,
            target_len: 16
        }
    );
    // The image length must be unchanged after the failed commit.
    assert_eq!(dev.image().len(), 16);
}

#[test]
fn session_counts_commands() {
    let mut dev = Device::new(8);
    dev.flash(&[3u8; 8]).unwrap();
    let mut s = dev.begin_update(8, 8).unwrap();
    assert_eq!(s.commands_applied(), 0);
    s.apply_command(&Command::copy(0, 0, 8)).unwrap();
    assert_eq!(s.commands_applied(), 1);
    let stats = s.commit().unwrap();
    assert_eq!(stats.commands, 1);
    assert_eq!(stats.bytes_read, 8);
}

#[test]
fn session_wrong_dimensions_rejected_up_front() {
    let mut dev = Device::new(16);
    dev.flash(&[4u8; 8]).unwrap();
    assert!(matches!(
        dev.begin_update(9, 8),
        Err(DeviceError::CapacityExceeded { .. })
    ));
    assert!(matches!(
        dev.begin_update(8, 17),
        Err(DeviceError::CapacityExceeded { .. })
    ));
    let mut fresh = Device::new(16);
    assert!(matches!(
        fresh.begin_update(0, 0),
        Err(DeviceError::NotFlashed)
    ));
}

#[test]
fn flash_single_ram_block_still_correct() {
    // The tightest RAM budget forces an eviction on every block change;
    // correctness must be unaffected.
    let reference: Vec<u8> = (0..20_000u32).map(|i| (i * 23 % 251) as u8).collect();
    let mut version = reference.clone();
    version.rotate_left(6_000);
    let script = GreedyDiffer::default().diff(&reference, &version);
    let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();

    let mut flash = FlashStorage::new(6, 4096);
    let mut updater = FlashUpdater::new(&mut flash, 0).with_ram_blocks(1);
    updater.reflash(&reference).unwrap();
    let tight = updater.apply_update(&out.script).unwrap();
    assert_eq!(updater.image(), &version[..]);

    let mut flash2 = FlashStorage::new(6, 4096);
    let mut updater2 = FlashUpdater::new(&mut flash2, 0).with_ram_blocks(1024);
    updater2.reflash(&reference).unwrap();
    let roomy = updater2.apply_update(&out.script).unwrap();
    assert_eq!(updater2.image(), &version[..]);
    assert!(tight.erases >= roomy.erases, "less RAM cannot erase less");
}

#[test]
fn flash_block_boundary_straddling_commands() {
    // A copy crossing several erase blocks, written backwards.
    let block = 16usize;
    let script = DeltaScript::new(
        60,
        64,
        vec![
            Command::copy(0, 4, 60), // shifts right across 4 block boundaries
            Command::add(0, vec![0xCC; 4]),
        ],
    )
    .unwrap();
    assert!(ipr_core::is_in_place_safe(&script));
    let reference: Vec<u8> = (0u8..60).collect();
    let expected = ipr_delta::apply(&script, &reference).unwrap();
    let mut flash = FlashStorage::new(4, block);
    let mut updater = FlashUpdater::new(&mut flash, 0);
    updater.reflash(&reference).unwrap();
    updater.apply_update(&script).unwrap();
    assert_eq!(updater.image(), &expected[..]);
}

#[test]
fn channel_saturating_on_huge_transfers() {
    let c = Channel::new(1, Duration::ZERO); // 1 bit/s
                                             // Must not overflow; just become enormous.
    let t = c.transfer_time(u64::MAX / 16);
    assert!(t > Duration::from_secs(1_000_000));
}

#[test]
fn device_clone_is_independent() {
    let mut a = Device::new(8);
    a.flash(b"aaaa").unwrap();
    let b = a.clone();
    a.flash(b"bbbb").unwrap();
    assert_eq!(b.image(), b"aaaa");
    assert_eq!(a.image(), b"bbbb");
}

//! End-to-end over-the-air update sessions: server-side preparation and
//! device-side installation of in-place reconstructible deltas.

use crate::channel::Channel;
use crate::device::{Device, DeviceError, UpdateStats};
use ipr_core::{convert_to_in_place, ConversionConfig, ConversionReport, ConvertError};
use ipr_delta::checksum::crc32;
use ipr_delta::codec::{self, DecodeError, EncodeError, Format};
use ipr_delta::diff::Differ;
use std::fmt;
use std::time::Duration;

/// A serialized in-place update ready for transmission.
#[derive(Clone, Debug)]
pub struct PreparedUpdate {
    /// The encoded delta file (wire bytes).
    pub payload: Vec<u8>,
    /// Conversion measurements from the server-side post-processing.
    pub report: ConversionReport,
    /// Size of the full new image, for speedup accounting.
    pub version_len: u64,
}

impl PreparedUpdate {
    /// Compression ratio: payload bytes over full-image bytes.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.version_len == 0 {
            0.0
        } else {
            self.payload.len() as f64 / self.version_len as f64
        }
    }
}

/// Error preparing an update on the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrepareError {
    /// In-place conversion failed.
    Convert(ConvertError),
    /// Encoding the converted script failed.
    Encode(EncodeError),
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::Convert(e) => write!(f, "conversion failed: {e}"),
            PrepareError::Encode(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for PrepareError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrepareError::Convert(e) => Some(e),
            PrepareError::Encode(e) => Some(e),
        }
    }
}

impl From<ConvertError> for PrepareError {
    fn from(e: ConvertError) -> Self {
        PrepareError::Convert(e)
    }
}

impl From<EncodeError> for PrepareError {
    fn from(e: EncodeError) -> Self {
        PrepareError::Encode(e)
    }
}

/// Server side: difference `version` against `reference`, post-process for
/// in-place reconstruction and serialize with an embedded target CRC.
///
/// `format` must be an explicit-write-offset format
/// ([`Format::supports_out_of_order`]); the converted command order is the
/// safety property and must survive serialization.
///
/// # Errors
///
/// See [`PrepareError`].
///
/// # Example
///
/// ```
/// use ipr_delta::diff::GreedyDiffer;
/// use ipr_delta::codec::Format;
/// use ipr_core::ConversionConfig;
/// use ipr_device::update::prepare_update;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let v1 = vec![1u8; 4096];
/// let mut v2 = v1.clone(); v2[0] = 9;
/// let update = prepare_update(
///     &GreedyDiffer::default(), &v1, &v2,
///     &ConversionConfig::default(), Format::InPlace,
/// )?;
/// assert!(update.payload.len() < v2.len());
/// # Ok(())
/// # }
/// ```
pub fn prepare_update(
    differ: &dyn Differ,
    reference: &[u8],
    version: &[u8],
    config: &ConversionConfig,
    format: Format,
) -> Result<PreparedUpdate, PrepareError> {
    let _span = ipr_trace::span("device.prepare");
    let script = differ.diff(reference, version);
    let outcome = convert_to_in_place(&script, reference, config)?;
    let payload = codec::encode_checked(&outcome.script, format, version)?;
    Ok(PreparedUpdate {
        payload,
        report: outcome.report,
        version_len: version.len() as u64,
    })
}

/// Engine-reusing variant of [`prepare_update`]: drives an
/// [`ipr_pipeline::Engine`] session, so a server preparing many updates
/// reuses one set of diff/convert arenas instead of reallocating per
/// call. The payload is byte-identical to [`prepare_update`] with the
/// same differ, conversion config and format (the engine's
/// [`EngineConfig`](ipr_pipeline::EngineConfig) carries both).
///
/// # Errors
///
/// See [`PrepareError`].
///
/// # Example
///
/// ```
/// use ipr_device::update::prepare_update_with;
/// use ipr_pipeline::Engine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let v1 = vec![1u8; 4096];
/// let mut v2 = v1.clone(); v2[0] = 9;
/// let mut engine = Engine::new();
/// let update = prepare_update_with(&mut engine, &v1, &v2)?;
/// assert!(update.payload.len() < v2.len());
/// # Ok(())
/// # }
/// ```
pub fn prepare_update_with<D: ipr_delta::diff::IndexedDiffer>(
    engine: &mut ipr_pipeline::Engine<D>,
    reference: &[u8],
    version: &[u8],
) -> Result<PreparedUpdate, PrepareError> {
    let _span = ipr_trace::span("device.prepare");
    let delta = engine.update(reference, version).map_err(|e| match e {
        ipr_pipeline::EngineError::Convert(e) => PrepareError::Convert(e),
        ipr_pipeline::EngineError::Encode(e) => PrepareError::Encode(e),
        // `Engine::update` only converts and encodes.
        other => unreachable!("unexpected engine error preparing an update: {other}"),
    })?;
    let prepared = PreparedUpdate {
        payload: delta.payload,
        report: delta.report,
        version_len: delta.version_len,
    };
    engine.recycle_script(delta.script);
    Ok(prepared)
}

/// Error installing an update on the device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstallError {
    /// The payload is not a valid delta file.
    Decode(DecodeError),
    /// The device rejected or faulted on the update.
    Device(DeviceError),
    /// The rebuilt image failed its CRC check.
    ChecksumMismatch {
        /// CRC carried in the delta header.
        expected: u32,
        /// CRC of the rebuilt image.
        actual: u32,
    },
    /// A resume checkpoint's records disagree with each other.
    Checkpoint(String),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Decode(e) => write!(f, "payload rejected: {e}"),
            InstallError::Device(e) => write!(f, "device error: {e}"),
            InstallError::ChecksumMismatch { expected, actual } => write!(
                f,
                "rebuilt image crc32 {actual:#010x} != expected {expected:#010x}"
            ),
            InstallError::Checkpoint(reason) => {
                write!(f, "invalid install checkpoint: {reason}")
            }
        }
    }
}

impl std::error::Error for InstallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InstallError::Decode(e) => Some(e),
            InstallError::Device(e) => Some(e),
            InstallError::ChecksumMismatch { .. } | InstallError::Checkpoint(_) => None,
        }
    }
}

impl From<DecodeError> for InstallError {
    fn from(e: DecodeError) -> Self {
        InstallError::Decode(e)
    }
}

impl From<DeviceError> for InstallError {
    fn from(e: DeviceError) -> Self {
        InstallError::Device(e)
    }
}

/// Result of a successful installation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstallReport {
    /// Bytes received over the channel.
    pub received_bytes: u64,
    /// Time the payload spent on the wire.
    pub transfer_time: Duration,
    /// Device-side application statistics.
    pub stats: UpdateStats,
    /// Whether a CRC was present and verified.
    pub crc_verified: bool,
}

/// Device side: receive `payload` over `channel`, decode it, apply it in
/// place with write-before-read checking and verify the embedded CRC.
///
/// # Errors
///
/// See [`InstallError`]. On a device fault the storage may hold a
/// partially applied image, as on a real interrupted update.
pub fn install_update(
    device: &mut Device,
    payload: &[u8],
    channel: Channel,
) -> Result<InstallReport, InstallError> {
    let _span = ipr_trace::span("device.install");
    ipr_trace::add("device.transfer_bytes", payload.len() as u64);
    let transfer_time = channel.transfer_time(payload.len() as u64);
    let decoded = codec::decode(payload)?;
    let stats = device.apply_update(&decoded.script)?;
    let crc_verified = match decoded.target_crc {
        Some(expected) => {
            let actual = crc32(device.image());
            if actual != expected {
                return Err(InstallError::ChecksumMismatch { expected, actual });
            }
            true
        }
        None => false,
    };
    Ok(InstallReport {
        received_bytes: payload.len() as u64,
        transfer_time,
        stats,
        crc_verified,
    })
}

/// Device side, streaming: decode and apply the update *while it
/// arrives*, command by command, with memory bounded by one command —
/// no buffering of the whole delta file.
///
/// `chunks` yields the payload as it comes off the wire (any chunking).
/// Every command passes the device's write-before-read and disjointness
/// checks as it is applied; the embedded CRC is verified after the last
/// command.
///
/// # Errors
///
/// See [`InstallError`]. On failure mid-stream the device image is left
/// partially updated (as a real interrupted install would be) and its
/// previous image length is retained.
///
/// # Example
///
/// ```
/// use ipr_delta::diff::GreedyDiffer;
/// use ipr_delta::codec::Format;
/// use ipr_core::ConversionConfig;
/// use ipr_device::update::{install_update_streaming, prepare_update};
/// use ipr_device::{Channel, Device};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let v1 = vec![1u8; 4096];
/// let mut v2 = v1.clone(); v2[7] = 9;
/// let upd = prepare_update(&GreedyDiffer::default(), &v1, &v2,
///                          &ConversionConfig::default(), Format::InPlace)?;
/// let mut dev = Device::new(4096);
/// dev.flash(&v1)?;
/// install_update_streaming(&mut dev, upd.payload.chunks(64), Channel::dialup())?;
/// assert_eq!(dev.image(), &v2[..]);
/// # Ok(())
/// # }
/// ```
pub fn install_update_streaming<'a>(
    device: &mut Device,
    chunks: impl IntoIterator<Item = &'a [u8]>,
    channel: Channel,
) -> Result<InstallReport, InstallError> {
    use crate::stream::StreamingInstall;
    use ipr_delta::codec::stream::StreamDecoder;

    let mut chunks = chunks.into_iter();
    let mut received = 0u64;

    // Waiting phase: buffer chunks on a bare decoder until the header
    // parses; the device is untouched until then, so garbage or a
    // too-short stream rejects before any flash write.
    let mut decoder = StreamDecoder::new();
    let mut install = loop {
        if decoder.poll_header()?.is_some() {
            break StreamingInstall::start(device, decoder)?;
        }
        let Some(chunk) = chunks.next() else {
            decoder.finish()?;
            return Err(InstallError::Decode(DecodeError::Truncated));
        };
        received += chunk.len() as u64;
        decoder.push(chunk);
    };

    // Installing phase: the session holds the device borrow and applies
    // each command the moment it completes.
    for chunk in chunks {
        received += chunk.len() as u64;
        install.feed(chunk)?;
    }
    let (header, stats) = install.commit()?;
    let crc_verified = crate::stream::verify_image_crc(device, &header)?;
    Ok(InstallReport {
        received_bytes: received,
        transfer_time: channel.transfer_time(received),
        stats,
        crc_verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_delta::diff::GreedyDiffer;

    fn pair() -> (Vec<u8>, Vec<u8>) {
        let v1: Vec<u8> = (0..16_384u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut v2 = v1.clone();
        v2.rotate_left(2048);
        for i in (0..v2.len()).step_by(777) {
            v2[i] ^= 0x5a;
        }
        (v1, v2)
    }

    #[test]
    fn engine_prepared_update_matches_legacy_and_installs() {
        let (v1, v2) = pair();
        // The legacy path diffs serially through the same greedy engine the
        // pipeline wraps; pin the engine to one thread for the comparison
        // (parallel diff output is thread-count invariant anyway).
        let mut engine =
            ipr_pipeline::Engine::with_config(ipr_pipeline::EngineConfig::with_threads(1));
        let legacy = prepare_update(
            &ipr_delta::diff::ParallelDiffer::new(GreedyDiffer::default()),
            &v1,
            &v2,
            &ConversionConfig::default(),
            Format::InPlace,
        )
        .unwrap();
        // Two rounds: the warm second round must be identical too.
        for round in 0..2 {
            let update = prepare_update_with(&mut engine, &v1, &v2).unwrap();
            assert_eq!(update.payload, legacy.payload, "round {round}");
            assert_eq!(update.version_len, legacy.version_len);
            let mut dev = Device::new(v1.len().max(v2.len()));
            dev.flash(&v1).unwrap();
            install_update(&mut dev, &update.payload, Channel::dialup()).unwrap();
            assert_eq!(dev.image(), &v2[..]);
        }
    }

    #[test]
    fn full_ota_round_trip() {
        let (v1, v2) = pair();
        let update = prepare_update(
            &GreedyDiffer::default(),
            &v1,
            &v2,
            &ConversionConfig::default(),
            Format::InPlace,
        )
        .unwrap();
        assert!(update.ratio() < 0.7, "ratio {}", update.ratio());

        let mut dev = Device::new(v1.len().max(v2.len()));
        dev.flash(&v1).unwrap();
        let report = install_update(&mut dev, &update.payload, Channel::dialup()).unwrap();
        assert_eq!(dev.image(), &v2[..]);
        assert!(report.crc_verified);
        assert_eq!(report.received_bytes, update.payload.len() as u64);
        assert!(report.transfer_time > Duration::ZERO);
        assert_eq!(report.stats.scratch_bytes, 0);
    }

    #[test]
    fn all_in_place_formats_install() {
        let (v1, v2) = pair();
        for format in [Format::InPlace, Format::PaperInPlace, Format::Improved] {
            let update = prepare_update(
                &GreedyDiffer::default(),
                &v1,
                &v2,
                &ConversionConfig::default(),
                format,
            )
            .unwrap();
            let mut dev = Device::new(v1.len().max(v2.len()));
            dev.flash(&v1).unwrap();
            install_update(&mut dev, &update.payload, Channel::isdn()).unwrap();
            assert_eq!(dev.image(), &v2[..], "{format}");
        }
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut dev = Device::new(64);
        dev.flash(b"image").unwrap();
        let err = install_update(&mut dev, b"not a delta", Channel::dialup()).unwrap_err();
        assert!(matches!(err, InstallError::Decode(_)));
        assert_eq!(dev.image(), b"image", "device untouched");
    }

    #[test]
    fn corrupted_payload_detected() {
        let (v1, v2) = pair();
        let mut update = prepare_update(
            &GreedyDiffer::default(),
            &v1,
            &v2,
            &ConversionConfig::default(),
            Format::InPlace,
        )
        .unwrap();
        // Flip a literal byte deep in the payload: decoding still succeeds
        // but the rebuilt image no longer matches the CRC.
        let n = update.payload.len();
        update.payload[n - 3] ^= 0x01;
        let mut dev = Device::new(v1.len().max(v2.len()));
        dev.flash(&v1).unwrap();
        let err = install_update(&mut dev, &update.payload, Channel::dialup()).unwrap_err();
        assert!(
            matches!(
                err,
                InstallError::ChecksumMismatch { .. } | InstallError::Decode(_)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn streaming_install_matches_batch_for_any_chunking() {
        let (v1, v2) = pair();
        let update = prepare_update(
            &GreedyDiffer::default(),
            &v1,
            &v2,
            &ConversionConfig::default(),
            Format::Improved,
        )
        .unwrap();
        for chunk in [1usize, 13, 512, update.payload.len()] {
            let mut dev = Device::new(v1.len().max(v2.len()));
            dev.flash(&v1).unwrap();
            let report =
                install_update_streaming(&mut dev, update.payload.chunks(chunk), Channel::isdn())
                    .unwrap();
            assert_eq!(dev.image(), &v2[..], "chunk {chunk}");
            assert!(report.crc_verified);
            assert_eq!(report.received_bytes, update.payload.len() as u64);
        }
    }

    #[test]
    fn streaming_install_rejects_unsafe_order_midway() {
        // An unconverted swap: the second command must fault during the
        // stream, before the transfer completes.
        let reference: Vec<u8> = (0u8..16).collect();
        let script = ipr_delta::DeltaScript::new(
            16,
            16,
            vec![
                ipr_delta::Command::copy(0, 8, 8),
                ipr_delta::Command::copy(8, 0, 8),
            ],
        )
        .unwrap();
        let payload = codec::encode(&script, Format::InPlace).unwrap();
        let mut dev = Device::new(16);
        dev.flash(&reference).unwrap();
        let err =
            install_update_streaming(&mut dev, payload.chunks(4), Channel::dialup()).unwrap_err();
        assert!(matches!(
            err,
            InstallError::Device(crate::DeviceError::WriteBeforeRead { .. })
        ));
        // The image length is untouched (content may be partially new, as
        // on real hardware).
        assert_eq!(dev.image().len(), 16);
    }

    #[test]
    fn streaming_install_rejects_truncated_stream() {
        let (v1, v2) = pair();
        let update = prepare_update(
            &GreedyDiffer::default(),
            &v1,
            &v2,
            &ConversionConfig::default(),
            Format::InPlace,
        )
        .unwrap();
        let cut = &update.payload[..update.payload.len() / 2];
        let mut dev = Device::new(v1.len().max(v2.len()));
        dev.flash(&v1).unwrap();
        let err =
            install_update_streaming(&mut dev, cut.chunks(64), Channel::dialup()).unwrap_err();
        assert!(matches!(err, InstallError::Decode(_)), "{err:?}");
    }

    #[test]
    fn streaming_install_garbage_rejected_early() {
        let mut dev = Device::new(64);
        dev.flash(b"image").unwrap();
        let err = install_update_streaming(&mut dev, [b"garbage!".as_slice()], Channel::dialup())
            .unwrap_err();
        assert!(matches!(err, InstallError::Decode(_)));
        assert_eq!(dev.image(), b"image");
    }

    #[test]
    fn delta_update_faster_than_full_image() {
        let (v1, v2) = pair();
        let update = prepare_update(
            &GreedyDiffer::default(),
            &v1,
            &v2,
            &ConversionConfig::default(),
            Format::InPlace,
        )
        .unwrap();
        let ch = Channel::dialup();
        let full = ch.transfer_time(v2.len() as u64);
        let delta = ch.transfer_time(update.payload.len() as u64);
        assert!(delta < full);
    }
}

//! Constrained-device substrate: the environment the paper's algorithm
//! targets.
//!
//! * [`Device`] — fixed-capacity storage with no scratch space and a
//!   run-time write-before-read fault detector;
//! * [`Channel`] — deterministic bandwidth/latency model for
//!   transfer-time results;
//! * [`update`] — end-to-end OTA sessions: server-side preparation
//!   ([`update::prepare_update`]) and device-side installation
//!   ([`update::install_update`]) with CRC verification.
//!
//! # Example
//!
//! ```
//! use ipr_delta::diff::GreedyDiffer;
//! use ipr_delta::codec::Format;
//! use ipr_core::ConversionConfig;
//! use ipr_device::{update, Channel, Device};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let v1 = vec![0u8; 2048];
//! let mut v2 = v1.clone(); v2[100] = 1;
//!
//! let upd = update::prepare_update(
//!     &GreedyDiffer::default(), &v1, &v2,
//!     &ConversionConfig::default(), Format::InPlace,
//! )?;
//!
//! let mut dev = Device::new(2048);
//! dev.flash(&v1)?;
//! update::install_update(&mut dev, &upd.payload, Channel::dialup())?;
//! assert_eq!(dev.image(), &v2[..]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod device;

pub mod flash;
pub mod stream;
pub mod update;

pub use channel::{Channel, LossyChannel, TransferReport};
pub use device::{Device, DeviceError, UpdateSession, UpdateStats};
pub use stream::{
    stream_install, CheckpointError, InstallCheckpoint, StreamProgress, StreamReport,
    StreamingInstall,
};

//! NOR-flash storage model: erase-before-write at block granularity.
//!
//! The paper targets devices whose firmware lives in flash. Flash cells
//! only transition 1→0 when programmed; rewriting a byte generally
//! requires erasing its whole *erase block* (which resets every bit to 1
//! and wears the block). An in-place patcher on flash therefore
//! read-modify-writes each touched block through a block-sized RAM
//! buffer — still no second image copy, which is the point of in-place
//! reconstruction.
//!
//! [`FlashUpdater`] applies a converted (Equation 2) delta script to a
//! [`FlashStorage`] under exactly those rules and accounts for erase
//! cycles and programmed bytes, so the wear advantage of delta updates
//! over full reflashes can be measured (see the `flash` experiment
//! binary).

use ipr_delta::{Command, DeltaScript};
use std::collections::HashMap;
use std::fmt;

/// Error raised by the flash model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlashError {
    /// Access beyond the end of the part.
    OutOfRange {
        /// Requested end offset.
        end: u64,
        /// Part capacity.
        capacity: u64,
    },
    /// A program operation tried to set a bit (0 → 1), which only an
    /// erase can do.
    ProgramSetsBit {
        /// Offset of the offending byte.
        offset: u64,
    },
    /// The update does not fit or does not match the installed image.
    ImageMismatch {
        /// Expected source length.
        expected: u64,
        /// Installed image length.
        actual: u64,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfRange { end, capacity } => {
                write!(f, "access to offset {end} beyond flash capacity {capacity}")
            }
            FlashError::ProgramSetsBit { offset } => {
                write!(f, "program at offset {offset} would set an erased bit")
            }
            FlashError::ImageMismatch { expected, actual } => {
                write!(
                    f,
                    "update expects a {expected} B image, device holds {actual} B"
                )
            }
        }
    }
}

impl std::error::Error for FlashError {}

/// A NOR-flash part: `blocks × block_size` bytes, erasable per block.
///
/// # Example
///
/// ```
/// use ipr_device::flash::FlashStorage;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut flash = FlashStorage::new(4, 1024);
/// flash.program(0, b"BOOT")?; // programming erased cells is fine
/// assert_eq!(flash.read(0, 4)?, b"BOOT");
/// assert!(flash.program(0, b"boot").is_err()); // would set the 0x20 bits
/// flash.erase_block(0);
/// flash.program(0, b"boot")?;
/// assert_eq!(flash.erase_count(0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FlashStorage {
    data: Vec<u8>,
    block_size: usize,
    erase_counts: Vec<u64>,
    programmed_bytes: u64,
}

impl FlashStorage {
    /// Creates an erased part (`0xff` everywhere) of `blocks` erase
    /// blocks of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(blocks: usize, block_size: usize) -> Self {
        assert!(blocks > 0, "flash needs at least one block");
        assert!(block_size > 0, "block size must be positive");
        Self {
            data: vec![0xff; blocks * block_size],
            block_size,
            erase_counts: vec![0; blocks],
            programmed_bytes: 0,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Erase-block size in bytes.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of erase blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.erase_counts.len()
    }

    /// Reads `len` bytes at `offset` (reads are unrestricted).
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] past the end of the part.
    pub fn read(&self, offset: u64, len: usize) -> Result<&[u8], FlashError> {
        let end = offset + len as u64;
        if end > self.capacity() {
            return Err(FlashError::OutOfRange {
                end,
                capacity: self.capacity(),
            });
        }
        Ok(&self.data[offset as usize..end as usize])
    }

    /// Programs `data` at `offset`. Programming can only clear bits
    /// (1 → 0); attempting to set a bit fails without modifying anything.
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] or [`FlashError::ProgramSetsBit`].
    pub fn program(&mut self, offset: u64, data: &[u8]) -> Result<(), FlashError> {
        let end = offset + data.len() as u64;
        if end > self.capacity() {
            return Err(FlashError::OutOfRange {
                end,
                capacity: self.capacity(),
            });
        }
        let start = offset as usize;
        for (i, (&old, &new)) in self.data[start..end as usize].iter().zip(data).enumerate() {
            if old & new != new {
                return Err(FlashError::ProgramSetsBit {
                    offset: offset + i as u64,
                });
            }
        }
        self.data[start..end as usize].copy_from_slice(data);
        self.programmed_bytes += data.len() as u64;
        ipr_trace::add("device.flash.programmed_bytes", data.len() as u64);
        Ok(())
    }

    /// Erases block `index` (resets it to `0xff`, bumps its wear count).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn erase_block(&mut self, index: usize) {
        let start = index * self.block_size;
        self.data[start..start + self.block_size].fill(0xff);
        self.erase_counts[index] += 1;
        ipr_trace::add("device.flash.erases", 1);
    }

    /// Wear count of block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn erase_count(&self, index: usize) -> u64 {
        self.erase_counts[index]
    }

    /// Total erase operations performed.
    #[must_use]
    pub fn total_erases(&self) -> u64 {
        self.erase_counts.iter().sum()
    }

    /// Total bytes programmed over the part's lifetime.
    #[must_use]
    pub fn programmed_bytes(&self) -> u64 {
        self.programmed_bytes
    }

    fn block_of(&self, offset: u64) -> usize {
        (offset as usize) / self.block_size
    }
}

/// Wear and traffic statistics from one flash update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlashUpdateStats {
    /// Erase operations performed by this update.
    pub erases: u64,
    /// Bytes programmed by this update (including block rewrites).
    pub programmed_bytes: u64,
    /// Bytes the update actually changed in the image (skipped identity
    /// pieces excluded).
    pub payload_bytes: u64,
}

impl FlashUpdateStats {
    /// Programmed bytes per payload byte (≥ 1; block-granular rewrites
    /// inflate it).
    #[must_use]
    pub fn write_amplification(&self) -> f64 {
        if self.payload_bytes == 0 {
            0.0
        } else {
            self.programmed_bytes as f64 / self.payload_bytes as f64
        }
    }
}

/// Applies in-place deltas and full images to a [`FlashStorage`] under
/// erase-before-write rules, buffering at most [`ram_blocks`] erase
/// blocks in RAM.
///
/// Because a converted script satisfies Equation 2, *deferring* writes is
/// always safe: no later command ever reads a byte an earlier command
/// writes, so pending writes can sit in RAM while their source regions
/// are read straight from flash. The updater exploits this to coalesce
/// all writes to an erase block into (usually) a single erase+program,
/// evicting the fullest pending block when RAM runs out.
///
/// [`ram_blocks`]: FlashUpdater::with_ram_blocks
#[derive(Debug)]
pub struct FlashUpdater<'a> {
    flash: &'a mut FlashStorage,
    image_len: usize,
    ram_blocks: usize,
}

impl<'a> FlashUpdater<'a> {
    /// Wraps a flash part holding an `image_len`-byte firmware image,
    /// with the default budget of 8 RAM blocks.
    #[must_use]
    pub fn new(flash: &'a mut FlashStorage, image_len: usize) -> Self {
        Self {
            flash,
            image_len,
            ram_blocks: 8,
        }
    }

    /// Sets how many erase blocks of RAM the updater may buffer
    /// (minimum 1). More RAM → fewer repeated erases of shared blocks.
    #[must_use]
    pub fn with_ram_blocks(mut self, ram_blocks: usize) -> Self {
        self.ram_blocks = ram_blocks.max(1);
        self
    }

    /// The installed image.
    #[must_use]
    pub fn image(&self) -> &[u8] {
        &self.flash.data[..self.image_len]
    }

    /// Installs a full image: erases every touched block, programs the
    /// image (a "full reflash" — the baseline delta updates beat).
    ///
    /// # Errors
    ///
    /// [`FlashError::OutOfRange`] if the image exceeds the part.
    pub fn reflash(&mut self, image: &[u8]) -> Result<FlashUpdateStats, FlashError> {
        if image.len() as u64 > self.flash.capacity() {
            return Err(FlashError::OutOfRange {
                end: image.len() as u64,
                capacity: self.flash.capacity(),
            });
        }
        let before = (self.flash.total_erases(), self.flash.programmed_bytes());
        let blocks = image.len().div_ceil(self.flash.block_size);
        for b in 0..blocks {
            self.flash.erase_block(b);
        }
        self.flash.program(0, image)?;
        self.image_len = image.len();
        Ok(FlashUpdateStats {
            erases: self.flash.total_erases() - before.0,
            programmed_bytes: self.flash.programmed_bytes() - before.1,
            payload_bytes: image.len() as u64,
        })
    }

    /// Applies a converted, Equation-2-safe delta script in place.
    ///
    /// Commands run serially in script order. Each command's write range
    /// is split at erase-block boundaries; every piece captures its
    /// source bytes from flash immediately (Equation 2 guarantees they
    /// are still the reference bytes) and is merged into a pending RAM
    /// copy of its destination block. A pending block is flushed —
    /// erase + program, with unwritten bytes preserved bit-exactly — once
    /// every byte the script will ever write to it has arrived, or
    /// earlier if the RAM budget forces an eviction. Blocks whose final
    /// content equals their current content (identity copies over
    /// unchanged regions) are never erased at all.
    ///
    /// # Errors
    ///
    /// [`FlashError::ImageMismatch`] if the script's source length does
    /// not match the installed image, [`FlashError::OutOfRange`] if the
    /// new version exceeds the part.
    pub fn apply_update(&mut self, script: &DeltaScript) -> Result<FlashUpdateStats, FlashError> {
        let _span = ipr_trace::span("device.flash_update");
        if script.source_len() != self.image_len as u64 {
            return Err(FlashError::ImageMismatch {
                expected: script.source_len(),
                actual: self.image_len as u64,
            });
        }
        let needed = script.source_len().max(script.target_len());
        if needed > self.flash.capacity() {
            return Err(FlashError::OutOfRange {
                end: needed,
                capacity: self.flash.capacity(),
            });
        }
        let before = (self.flash.total_erases(), self.flash.programmed_bytes());

        // Bytes each block will receive over the whole script, so a
        // pending block can be flushed the moment it is complete.
        let mut expected: HashMap<usize, u64> = HashMap::new();
        for cmd in script.commands() {
            for (_, abs, n) in self.pieces_of(cmd) {
                *expected.entry(self.flash.block_of(abs)).or_default() += n;
            }
        }

        let mut pending: HashMap<usize, PendingBlock> = HashMap::new();
        let mut merged_total: HashMap<usize, u64> = HashMap::new();
        let mut payload = 0u64;

        for cmd in script.commands() {
            for (off, abs, n) in self.pieces_of(cmd) {
                // 1. Capture the piece's bytes (source read happens now).
                let piece: Vec<u8> = match cmd {
                    Command::Copy(c) => self.flash.read(c.from + off, n as usize)?.to_vec(),
                    Command::Add(a) => a.data[off as usize..(off + n) as usize].to_vec(),
                };
                // 2. Merge into the pending copy of the destination block.
                let block = self.flash.block_of(abs);
                let block_start = (block * self.flash.block_size) as u64;
                let entry = match pending.entry(block) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let data = self
                            .flash
                            .read(block_start, self.flash.block_size)?
                            .to_vec();
                        v.insert(PendingBlock { data, dirty: false })
                    }
                };
                let rel = (abs - block_start) as usize;
                if entry.data[rel..rel + n as usize] != piece[..] {
                    entry.data[rel..rel + n as usize].copy_from_slice(&piece);
                    entry.dirty = true;
                    payload += n;
                }
                *merged_total.entry(block).or_default() += n;
                // 3. Flush complete blocks; evict if RAM is over budget.
                if merged_total[&block] >= expected[&block] {
                    let done = pending.remove(&block).expect("pending");
                    self.flush(block, done)?;
                } else if pending.len() > self.ram_blocks {
                    // Evict the pending block closest to completion (ties
                    // toward the lowest index, for determinism).
                    let victim = pending
                        .keys()
                        .copied()
                        .max_by_key(|b| {
                            let frac = merged_total[b] * 1_000_000 / expected[b].max(1);
                            (frac, std::cmp::Reverse(*b))
                        })
                        .expect("pending is non-empty");
                    let evicted = pending.remove(&victim).expect("pending");
                    self.flush(victim, evicted)?;
                }
            }
        }
        for (block, entry) in pending {
            self.flush(block, entry)?;
        }
        self.image_len = script.target_len() as usize;
        Ok(FlashUpdateStats {
            erases: self.flash.total_erases() - before.0,
            programmed_bytes: self.flash.programmed_bytes() - before.1,
            payload_bytes: payload,
        })
    }

    /// Splits `cmd`'s write interval at erase-block boundaries, honouring
    /// the §4.1 direction rule for self-overlapping copies. Yields
    /// `(offset-in-command, absolute write offset, length)`.
    fn pieces_of(&self, cmd: &Command) -> Vec<(u64, u64, u64)> {
        let to = cmd.to();
        let len = cmd.len();
        let mut pieces = Vec::new();
        let mut off = 0u64;
        while off < len {
            let abs = to + off;
            let block_end = ((self.flash.block_of(abs) + 1) * self.flash.block_size) as u64;
            let n = (block_end - abs).min(len - off);
            pieces.push((off, abs, n));
            off += n;
        }
        if matches!(cmd, Command::Copy(c) if c.from < c.to) {
            pieces.reverse();
        }
        pieces
    }

    /// Erases and reprograms one block with its pending content; skipped
    /// entirely when nothing in the block actually changed.
    fn flush(&mut self, block: usize, entry: PendingBlock) -> Result<(), FlashError> {
        if !entry.dirty {
            return Ok(());
        }
        let block_start = (block * self.flash.block_size) as u64;
        self.flash.erase_block(block);
        self.flash.program(block_start, &entry.data)
    }
}

/// A RAM copy of one erase block with writes merged in.
#[derive(Debug)]
struct PendingBlock {
    data: Vec<u8>,
    dirty: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_core::{convert_to_in_place, ConversionConfig};
    use ipr_delta::diff::{Differ, GreedyDiffer};

    fn flash_with_image(image: &[u8], blocks: usize, block_size: usize) -> FlashStorage {
        let mut flash = FlashStorage::new(blocks, block_size);
        flash.program(0, image).unwrap();
        flash
    }

    #[test]
    fn nor_semantics_enforced() {
        let mut flash = FlashStorage::new(2, 16);
        flash.program(0, &[0b1010_1010]).unwrap();
        // Clearing more bits is allowed.
        flash.program(0, &[0b1000_1000]).unwrap();
        // Setting a bit is not.
        assert_eq!(
            flash.program(0, &[0b1100_1000]),
            Err(FlashError::ProgramSetsBit { offset: 0 })
        );
        flash.erase_block(0);
        flash.program(0, &[0b1100_1000]).unwrap();
        assert_eq!(flash.erase_count(0), 1);
        assert_eq!(flash.erase_count(1), 0);
    }

    #[test]
    fn bounds_checked() {
        let mut flash = FlashStorage::new(1, 8);
        assert!(flash.read(4, 8).is_err());
        assert!(flash.program(7, &[0, 0]).is_err());
        assert!(flash.read(0, 8).is_ok());
    }

    #[test]
    fn reflash_wears_every_block() {
        let image = vec![0x42u8; 100];
        let mut flash = FlashStorage::new(8, 32);
        let mut updater = FlashUpdater::new(&mut flash, 0);
        let stats = updater.reflash(&image).unwrap();
        assert_eq!(updater.image(), &image[..]);
        assert_eq!(stats.erases, 4); // ceil(100/32)
        assert_eq!(stats.payload_bytes, 100);
    }

    #[test]
    fn delta_update_touches_fewer_blocks_than_reflash() {
        // 64 KiB image, one 256-byte edit: the delta update should erase
        // only the blocks the write intervals touch.
        let reference: Vec<u8> = (0..65536u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut version = reference.clone();
        for b in &mut version[30_000..30_256] {
            *b ^= 0xff;
        }
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();

        let block_size = 4096;
        let mut flash = flash_with_image(&reference, 17, block_size);
        let mut updater = FlashUpdater::new(&mut flash, reference.len());
        let stats = updater.apply_update(&out.script).unwrap();
        assert_eq!(updater.image(), &version[..]);
        // A full reflash would erase all 16 image blocks; the in-place
        // delta only touches the blocks the 256-byte edit spans (identity
        // pieces are skipped).
        assert!(stats.erases >= 1);
        assert!(stats.erases <= 3, "erases {}", stats.erases);
        assert!(stats.write_amplification() >= 1.0);
    }

    #[test]
    fn update_with_block_moves_round_trips() {
        let reference: Vec<u8> = (0..20_000u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(5_000);
        version.truncate(18_000);
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();

        let mut flash = flash_with_image(&reference, 6, 4096);
        let mut updater = FlashUpdater::new(&mut flash, reference.len());
        let stats = updater.apply_update(&out.script).unwrap();
        assert_eq!(updater.image(), &version[..]);
        assert!(stats.payload_bytes > 0);
        assert!(stats.payload_bytes <= version.len() as u64);
    }

    #[test]
    fn growing_update_fits_capacity_check() {
        let reference = vec![1u8; 100];
        let version = vec![2u8; 300];
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let mut flash = flash_with_image(&reference, 2, 128); // 256 B part
        let mut updater = FlashUpdater::new(&mut flash, reference.len());
        assert!(matches!(
            updater.apply_update(&out.script),
            Err(FlashError::OutOfRange { .. })
        ));
    }

    #[test]
    fn image_mismatch_rejected() {
        let script = ipr_delta::DeltaScript::new(50, 10, vec![Command::copy(0, 0, 10)]).unwrap();
        let mut flash = flash_with_image(&[0u8; 40], 2, 64);
        let mut updater = FlashUpdater::new(&mut flash, 40);
        assert_eq!(
            updater.apply_update(&script),
            Err(FlashError::ImageMismatch {
                expected: 50,
                actual: 40
            })
        );
    }

    #[test]
    fn self_overlapping_copies_on_flash() {
        // Shift right by one across block boundaries: right-to-left pieces.
        let script = ipr_delta::DeltaScript::new(
            31,
            32,
            vec![
                ipr_delta::Command::copy(0, 1, 31),
                ipr_delta::Command::add(0, vec![0x00]),
            ],
        )
        .unwrap();
        assert!(ipr_core::is_in_place_safe(&script));
        let reference: Vec<u8> = (0u8..31).collect();
        let expected = ipr_delta::apply(&script, &reference).unwrap();
        let mut flash = flash_with_image(&reference, 4, 8);
        let mut updater = FlashUpdater::new(&mut flash, reference.len());
        updater.apply_update(&script).unwrap();
        assert_eq!(updater.image(), &expected[..]);
    }

    #[test]
    fn wear_statistics_accumulate() {
        let mut flash = FlashStorage::new(2, 16);
        flash.erase_block(0);
        flash.erase_block(0);
        flash.erase_block(1);
        assert_eq!(flash.total_erases(), 3);
        flash.program(0, &[1, 2, 3]).unwrap();
        assert_eq!(flash.programmed_bytes(), 3);
    }
}

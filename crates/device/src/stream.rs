//! Resumable streaming install sessions: one path from lossy channel
//! to committed flash.
//!
//! The paper's device cannot hold two images — and on a slow, lossy
//! link it should not have to hold two *downloads* either. This module
//! ties the pieces built in earlier layers into a single session:
//!
//! * the incremental [`StreamDecoder`] pulls commands out of wire
//!   chunks with memory bounded by one command frame;
//! * each complete command is applied immediately through the
//!   [`UpdateSession`](crate::UpdateSession) write-before-read
//!   discipline, so reconstruction overlaps the transfer;
//! * every chunk boundary is a durable checkpoint: the decoder's
//!   [`StreamCheckpoint`], the [`Journal`]'s flash progress *and*
//!   stream offset, and the session's written-interval map serialize
//!   into one [`InstallCheckpoint`]. Power loss at any chunk boundary
//!   resumes from the checkpoint — re-requesting the wire from the
//!   checkpointed offset, not from byte 0.
//!
//! The session state machine:
//!
//! ```text
//!            chunks              header parsed
//! Waiting ───────────► Waiting ───────────────► Installing
//!   │                                               │  ▲
//!   │ power cut (no checkpoint yet:                 │  │ resume
//!   │ restart from byte 0)                power cut │  │ (InstallCheckpoint)
//!   ▼                                               ▼  │
//! fresh start                                   checkpointed ──► Committed
//! ```
//!
//! Drive it with [`stream_install`], which pulls chunks from an
//! [`DeltaStream`] through [`LossyChannel::simulate_transfer`] and can
//! simulate a power cut after any number of chunks.

use crate::channel::LossyChannel;
use crate::device::{Device, UpdateStats};
use crate::update::InstallError;
use ipr_core::resumable::Journal;
use ipr_delta::checksum::crc32;
use ipr_delta::codec::stream::{StreamCheckpoint, StreamDecoder, StreamHeader};
use ipr_delta::codec::DecodeError;
use ipr_pipeline::DeltaStream;
use std::fmt;
use std::time::Duration;

/// Error deserializing or validating an [`InstallCheckpoint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The bytes end before the checkpoint record does.
    Truncated,
    /// The bytes do not start with the checkpoint magic.
    BadMagic,
    /// The CRC-32 seal does not match (torn or corrupted write).
    Checksum {
        /// CRC recorded in the checkpoint.
        expected: u32,
        /// CRC of the bytes actually read.
        actual: u32,
    },
    /// The embedded decoder checkpoint is malformed.
    Decoder(DecodeError),
    /// The embedded journal is malformed.
    Journal(ipr_core::resumable::JournalDecodeError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "install checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not an install checkpoint"),
            CheckpointError::Checksum { expected, actual } => {
                write!(
                    f,
                    "install checkpoint CRC mismatch: {expected:#010x} != {actual:#010x}"
                )
            }
            CheckpointError::Decoder(e) => write!(f, "embedded decoder checkpoint: {e}"),
            CheckpointError::Journal(e) => write!(f, "embedded journal: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Magic prefix of a serialized [`InstallCheckpoint`].
const INSTALL_CHECKPOINT_MAGIC: [u8; 4] = *b"IPC1";

/// Durable snapshot of a [`StreamingInstall`] at a chunk boundary.
///
/// Composes the three progress records a mid-stream power cut needs:
/// the decoder's wire position ([`StreamCheckpoint`]), the journal's
/// flash progress and stream offset ([`Journal`]), and the update
/// session's write-before-read state (covered bytes plus the written
/// bitmap as coalesced intervals). A device persists this (a few dozen
/// bytes plus the interval list) alongside its storage; resuming
/// validates the records against each other before touching flash.
#[derive(Clone, Debug, PartialEq)]
pub struct InstallCheckpoint {
    /// Decoder state at the last command boundary.
    pub decoder: StreamCheckpoint,
    /// Flash progress + stream offset (the durable authority).
    pub journal: Journal,
    /// Target bytes covered by the applied commands.
    pub covered: u64,
    /// Written regions as coalesced `[start, end)` intervals.
    pub written: Vec<(u64, u64)>,
    /// Running update statistics (carried across power cycles).
    pub stats: UpdateStats,
    /// Power cycles this install has already survived.
    pub resumes: u64,
}

impl InstallCheckpoint {
    /// Serializes the checkpoint (fixed-width little-endian fields,
    /// CRC-32 sealed).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&INSTALL_CHECKPOINT_MAGIC);
        let decoder = self.decoder.encode();
        out.extend_from_slice(&(decoder.len() as u64).to_le_bytes());
        out.extend_from_slice(&decoder);
        let journal = self.journal.encode();
        out.extend_from_slice(&(journal.len() as u64).to_le_bytes());
        out.extend_from_slice(&journal);
        for v in [
            self.covered,
            self.stats.commands as u64,
            self.stats.bytes_written,
            self.stats.bytes_read,
            self.stats.scratch_bytes,
            self.resumes,
            self.written.len() as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &(start, end) in &self.written {
            out.extend_from_slice(&start.to_le_bytes());
            out.extend_from_slice(&end.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a checkpoint written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on truncation, bad magic, CRC mismatch, or a
    /// malformed embedded record.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < INSTALL_CHECKPOINT_MAGIC.len() + 4 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..4] != INSTALL_CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let actual = crc32(body);
        if expected != actual {
            return Err(CheckpointError::Checksum { expected, actual });
        }
        let mut at = 4usize;
        let read_u64 = |at: &mut usize| -> Result<u64, CheckpointError> {
            let end = at.checked_add(8).ok_or(CheckpointError::Truncated)?;
            let raw = body.get(*at..end).ok_or(CheckpointError::Truncated)?;
            *at = end;
            Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
        };
        let read_block = |at: &mut usize| -> Result<&[u8], CheckpointError> {
            let len = usize::try_from(read_u64(at)?).map_err(|_| CheckpointError::Truncated)?;
            let end = at.checked_add(len).ok_or(CheckpointError::Truncated)?;
            let raw = body.get(*at..end).ok_or(CheckpointError::Truncated)?;
            *at = end;
            Ok(raw)
        };
        let decoder =
            StreamCheckpoint::decode(read_block(&mut at)?).map_err(CheckpointError::Decoder)?;
        let journal = Journal::decode(read_block(&mut at)?).map_err(CheckpointError::Journal)?;
        let covered = read_u64(&mut at)?;
        let stats = UpdateStats {
            commands: read_u64(&mut at)? as usize,
            bytes_written: read_u64(&mut at)?,
            bytes_read: read_u64(&mut at)?,
            scratch_bytes: read_u64(&mut at)?,
        };
        let resumes = read_u64(&mut at)?;
        let intervals = read_u64(&mut at)?;
        let mut written = Vec::new();
        for _ in 0..intervals {
            let start = read_u64(&mut at)?;
            let end = read_u64(&mut at)?;
            written.push((start, end));
        }
        if at != body.len() {
            return Err(CheckpointError::Truncated);
        }
        Ok(Self {
            decoder,
            journal,
            covered,
            written,
            stats,
            resumes,
        })
    }

    /// The wire offset a resuming device re-requests from.
    #[must_use]
    pub fn stream_offset(&self) -> u64 {
        self.decoder.byte_offset
    }

    /// Cross-checks the three progress records against each other;
    /// returns a human-readable reason if they disagree (corrupted or
    /// hand-forged checkpoint).
    fn validate(&self) -> Result<(), String> {
        if self.journal.has_pending_chunk() {
            return Err("streaming journal carries a staged chunk".into());
        }
        if self.journal.command_index() as u64 != self.decoder.commands_decoded {
            return Err(format!(
                "journal has {} commands, decoder checkpoint {}",
                self.journal.command_index(),
                self.decoder.commands_decoded
            ));
        }
        if self.journal.stream_offset() != self.decoder.byte_offset {
            return Err(format!(
                "journal stream offset {} != decoder byte offset {}",
                self.journal.stream_offset(),
                self.decoder.byte_offset
            ));
        }
        let needed = self
            .decoder
            .header
            .source_len
            .max(self.decoder.header.target_len);
        let mut previous_end = 0u64;
        let mut total = 0u64;
        for &(start, end) in &self.written {
            if start >= end || end > needed || (previous_end > 0 && start < previous_end) {
                return Err(format!("bad written interval [{start}, {end})"));
            }
            previous_end = end;
            total += end - start;
        }
        if total != self.covered {
            return Err(format!(
                "written intervals cover {total} bytes, checkpoint claims {}",
                self.covered
            ));
        }
        Ok(())
    }
}

/// An open streaming install: commands are applied to flash as soon as
/// they decode, and every state transition is checkpointable.
///
/// Created by [`start`](Self::start) (fresh, once the header has been
/// received) or [`resume`](Self::resume) (after a power cut). The
/// session exclusively borrows the device — the same borrow discipline
/// as [`Device::begin_update`] — so nothing else can touch storage
/// while an install is in flight.
#[derive(Debug)]
pub struct StreamingInstall<'a> {
    session: crate::device::UpdateSession<'a>,
    decoder: StreamDecoder,
    journal: Journal,
    resumes: u64,
    buffered_high_water: u64,
}

impl<'a> StreamingInstall<'a> {
    /// Opens a fresh session over `decoder`, whose header must already
    /// have been parsed (feed it bytes until
    /// [`StreamDecoder::poll_header`] returns the header). Any commands
    /// already buffered in the decoder are applied immediately.
    ///
    /// # Errors
    ///
    /// [`InstallError::Decode`] with [`DecodeError::Truncated`] if the
    /// header has not been parsed yet, plus any device or wire error
    /// from applying buffered commands.
    pub fn start(device: &'a mut Device, decoder: StreamDecoder) -> Result<Self, InstallError> {
        let Some(header) = decoder.header().copied() else {
            return Err(InstallError::Decode(DecodeError::Truncated));
        };
        let session = device.begin_update(header.source_len, header.target_len)?;
        let mut journal = Journal::new();
        journal
            .record_stream_progress(decoder.commands_decoded() as usize, decoder.stream_offset());
        let mut install = Self {
            session,
            decoder,
            journal,
            resumes: 0,
            buffered_high_water: 0,
        };
        install.drain()?;
        Ok(install)
    }

    /// Reopens a session from a checkpoint after a power cut. The
    /// device storage must hold the partially reconstructed image the
    /// checkpoint describes (on real hardware it does — flash is the
    /// durable medium the checkpoint was taken against).
    ///
    /// # Errors
    ///
    /// [`InstallError::Checkpoint`] if the checkpoint's records
    /// disagree with each other, or a device error if the declared
    /// dimensions no longer fit.
    pub fn resume(
        device: &'a mut Device,
        checkpoint: &InstallCheckpoint,
    ) -> Result<Self, InstallError> {
        checkpoint.validate().map_err(InstallError::Checkpoint)?;
        let header = checkpoint.decoder.header;
        let session = device.resume_session(
            header.source_len,
            header.target_len,
            &checkpoint.written,
            checkpoint.covered,
            checkpoint.stats,
        )?;
        ipr_trace::add("stream.resumes", 1);
        Ok(Self {
            session,
            decoder: StreamDecoder::resume(checkpoint.decoder),
            journal: checkpoint.journal.clone(),
            resumes: checkpoint.resumes + 1,
            buffered_high_water: 0,
        })
    }

    /// Feeds one wire chunk and applies every command that completes,
    /// returning how many were applied.
    ///
    /// # Errors
    ///
    /// Wire errors ([`InstallError::Decode`]) or device faults
    /// ([`InstallError::Device`] — e.g. a write-before-read violation).
    /// On error the session should be dropped; storage may hold a
    /// partial image, as on real interrupted hardware.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<u64, InstallError> {
        self.decoder.push(chunk);
        self.drain()
    }

    fn drain(&mut self) -> Result<u64, InstallError> {
        let mut applied = 0u64;
        while let Some(cmd) = self.decoder.next_command()? {
            self.session.apply_command(&cmd)?;
            applied += 1;
        }
        // Chunk boundary: align the journal with the decoder. Whole
        // commands only — the decoder checkpoints at command edges.
        self.journal.record_stream_progress(
            self.decoder.commands_decoded() as usize,
            self.decoder.stream_offset(),
        );
        self.buffered_high_water = self
            .buffered_high_water
            .max(self.decoder.buffered_high_water() as u64);
        Ok(applied)
    }

    /// The next wire byte the session needs (all received bytes,
    /// including buffered partial-command residue).
    #[must_use]
    pub fn wire_offset(&self) -> u64 {
        self.decoder.stream_offset() + self.decoder.buffered_bytes() as u64
    }

    /// Commands applied to flash so far (across all power cycles).
    #[must_use]
    pub fn commands_applied(&self) -> usize {
        self.session.commands_applied()
    }

    /// Power cycles this install has survived.
    #[must_use]
    pub fn resumes(&self) -> u64 {
        self.resumes
    }

    /// High-water mark of the decoder's resident buffer this power
    /// cycle — the bound asserted by the streaming bench.
    #[must_use]
    pub fn buffered_high_water(&self) -> u64 {
        self.buffered_high_water
    }

    /// Whether every declared command has been decoded and applied.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.decoder.is_complete()
    }

    /// Snapshots the session for durable storage. Call at chunk
    /// boundaries; partial-command bytes are deliberately excluded (the
    /// resumed session re-requests them).
    #[must_use]
    pub fn checkpoint(&self) -> InstallCheckpoint {
        InstallCheckpoint {
            decoder: self
                .decoder
                .checkpoint()
                .expect("sessions exist only after the header"),
            journal: self.journal.clone(),
            covered: self.session.covered(),
            written: self.session.written_intervals(),
            stats: self.session.stats_so_far(),
            resumes: self.resumes,
        }
    }

    /// Commits the install: the stream must be complete (no missing or
    /// trailing bytes) and the commands must cover the declared target
    /// exactly. Returns the header and the final statistics; the caller
    /// verifies the header CRC against the device image (the device
    /// borrow is released by this call).
    ///
    /// # Errors
    ///
    /// [`InstallError::Decode`] (truncated / trailing wire bytes) or
    /// [`InstallError::Device`] (incomplete target coverage). The
    /// device image length is only updated on success.
    pub fn commit(self) -> Result<(StreamHeader, UpdateStats), InstallError> {
        let header = self.decoder.finish()?;
        let stats = self.session.commit()?;
        Ok((header, stats))
    }
}

/// Accounting for one [`stream_install`] power cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamReport {
    /// Wire bytes received this power cycle.
    pub received_bytes: u64,
    /// Simulated channel time this power cycle (includes
    /// retransmissions).
    pub transfer_time: Duration,
    /// Simulated time at which the first target byte was reconstructed
    /// this cycle, if any command was applied — the streaming path's
    /// headline metric against download-then-apply.
    pub time_to_first_byte: Option<Duration>,
    /// Frames re-sent by the lossy channel this cycle.
    pub retransmissions: u64,
    /// Chunks transferred this cycle.
    pub chunks: u64,
    /// Commands applied to flash (cumulative across power cycles).
    pub commands_applied: u64,
    /// Commands applied while wire bytes were still outstanding —
    /// "waves applied pre-EOF", the overlap the streaming path buys.
    pub commands_pre_eof: u64,
    /// Power cycles survived (cumulative).
    pub resumes: u64,
    /// Decoder resident-buffer high water this cycle.
    pub buffered_high_water: u64,
    /// Final update statistics; present only on completion.
    pub stats: Option<UpdateStats>,
    /// Whether a CRC was present and verified (completion only).
    pub crc_verified: bool,
}

/// Outcome of one [`stream_install`] power cycle.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamProgress {
    /// The update committed (and, if a CRC was embedded, verified).
    Complete(StreamReport),
    /// Simulated power cut after the requested number of chunks. The
    /// checkpoint is `None` when the cut landed before the header
    /// finished arriving — there is nothing to resume; start over.
    Killed {
        /// Snapshot to persist and pass to the next power cycle.
        checkpoint: Option<InstallCheckpoint>,
        /// Accounting for this (truncated) cycle.
        report: StreamReport,
    },
}

/// Runs one power cycle of a streaming install: pulls chunks from
/// `stream` through [`LossyChannel::simulate_transfer`] (frame drops
/// retransmit inside a chunk; they never restart the stream), applies
/// commands as they complete, and — if `kill_after_chunks` is set —
/// simulates a power cut after that many chunk transfers.
///
/// Fresh installs pass `resume_from: None`; after a
/// [`StreamProgress::Killed`] outcome, persist the checkpoint and call
/// again with it. The resumed cycle re-requests the wire from the
/// checkpointed offset, not from byte 0.
///
/// Emits `stream.install` span plus `stream.chunks`,
/// `stream.resumes`, `stream.commands_pre_eof` counters and the
/// `stream.buffered_high_water` gauge.
///
/// # Errors
///
/// See [`InstallError`]. On error the device image may be partially
/// updated, exactly as on real interrupted hardware.
///
/// # Panics
///
/// Panics if `mtu == 0` (the channel model requires a frame size).
pub fn stream_install(
    device: &mut Device,
    stream: &DeltaStream,
    channel: LossyChannel,
    mtu: usize,
    resume_from: Option<&InstallCheckpoint>,
    kill_after_chunks: Option<u64>,
) -> Result<StreamProgress, InstallError> {
    let _span = ipr_trace::span("stream.install");
    let mut time = Duration::ZERO;
    let mut retransmissions = 0u64;
    let mut chunks = 0u64;
    let mut received = 0u64;
    let mut time_to_first_byte = None;
    let mut commands_pre_eof = 0u64;

    let report = |time: Duration,
                  retransmissions: u64,
                  chunks: u64,
                  received: u64,
                  ttfb: Option<Duration>,
                  pre_eof: u64,
                  commands: u64,
                  resumes: u64,
                  high_water: u64| StreamReport {
        received_bytes: received,
        transfer_time: time,
        time_to_first_byte: ttfb,
        retransmissions,
        chunks,
        commands_applied: commands,
        commands_pre_eof: pre_eof,
        resumes,
        buffered_high_water: high_water,
        stats: None,
        crc_verified: false,
    };

    let mut install = match resume_from {
        Some(checkpoint) => StreamingInstall::resume(device, checkpoint)?,
        None => {
            // Waiting state: pull chunks until the header parses. No
            // checkpoint exists yet — a power cut here restarts from
            // byte 0 (the header is a handful of bytes; nothing of
            // value is lost).
            let mut decoder = StreamDecoder::new();
            loop {
                let offset = decoder.stream_offset() + decoder.buffered_bytes() as u64;
                let Some(chunk) = stream.chunk_at(offset) else {
                    return Err(InstallError::Decode(DecodeError::Truncated));
                };
                let frames = channel.simulate_transfer(chunk.len() as u64, mtu);
                time += frames.time;
                retransmissions += frames.retransmissions;
                chunks += 1;
                received += chunk.len() as u64;
                decoder.push(chunk);
                if decoder.poll_header()?.is_some() {
                    break;
                }
                if kill_after_chunks.is_some_and(|k| chunks >= k) {
                    ipr_trace::add("stream.chunks", chunks);
                    return Ok(StreamProgress::Killed {
                        checkpoint: None,
                        report: report(
                            time,
                            retransmissions,
                            chunks,
                            received,
                            None,
                            0,
                            0,
                            0,
                            decoder.buffered_high_water() as u64,
                        ),
                    });
                }
            }
            StreamingInstall::start(device, decoder)?
        }
    };

    // Installing state: the loop invariant is that every iteration
    // boundary is a durable checkpoint (whole commands applied, journal
    // aligned with the decoder).
    let wire_len = stream.wire_len();
    loop {
        if install.commands_applied() > 0 {
            if time_to_first_byte.is_none() {
                time_to_first_byte = Some(time);
            }
            if install.wire_offset() < wire_len {
                commands_pre_eof = install.commands_applied() as u64;
            }
        }
        if install.is_complete() {
            break;
        }
        if kill_after_chunks.is_some_and(|k| chunks >= k) {
            let checkpoint = install.checkpoint();
            ipr_trace::with(|r| {
                r.add("stream.chunks", chunks);
                r.add("stream.commands_pre_eof", commands_pre_eof);
                r.gauge("stream.buffered_high_water", install.buffered_high_water());
            });
            return Ok(StreamProgress::Killed {
                report: report(
                    time,
                    retransmissions,
                    chunks,
                    received,
                    time_to_first_byte,
                    commands_pre_eof,
                    install.commands_applied() as u64,
                    install.resumes(),
                    install.buffered_high_water(),
                ),
                checkpoint: Some(checkpoint),
            });
        }
        let Some(chunk) = stream.chunk_at(install.wire_offset()) else {
            // Wire exhausted before the declared command count: let
            // commit report the truncation.
            break;
        };
        let frames = channel.simulate_transfer(chunk.len() as u64, mtu);
        time += frames.time;
        retransmissions += frames.retransmissions;
        chunks += 1;
        received += chunk.len() as u64;
        install.feed(chunk)?;
    }

    let commands = install.commands_applied() as u64;
    let resumes = install.resumes();
    let high_water = install.buffered_high_water();
    let (header, stats) = install.commit()?;
    let crc_verified = verify_image_crc(device, &header)?;
    ipr_trace::with(|r| {
        r.add("stream.chunks", chunks);
        r.add("stream.commands_pre_eof", commands_pre_eof);
        r.gauge("stream.buffered_high_water", high_water);
    });
    let mut done = report(
        time,
        retransmissions,
        chunks,
        received,
        time_to_first_byte,
        commands_pre_eof,
        commands,
        resumes,
        high_water,
    );
    done.stats = Some(stats);
    done.crc_verified = crc_verified;
    Ok(StreamProgress::Complete(done))
}

/// Verifies the device image against the header's embedded CRC, if any.
pub(crate) fn verify_image_crc(
    device: &Device,
    header: &StreamHeader,
) -> Result<bool, InstallError> {
    match header.target_crc {
        Some(expected) => {
            let actual = crc32(device.image());
            if actual != expected {
                return Err(InstallError::ChecksumMismatch { expected, actual });
            }
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use ipr_pipeline::Engine;

    fn pair() -> (Vec<u8>, Vec<u8>) {
        let v1: Vec<u8> = (0..16_384u32).map(|i| (i * 13 % 251) as u8).collect();
        let mut v2 = v1.clone();
        v2.rotate_left(2048);
        for i in (0..v2.len()).step_by(777) {
            v2[i] ^= 0x5a;
        }
        (v1, v2)
    }

    fn lossy(loss: f64, seed: u64) -> LossyChannel {
        LossyChannel::new(Channel::dialup(), loss, seed)
    }

    #[test]
    fn uninterrupted_stream_install_matches_offline_apply() {
        let (v1, v2) = pair();
        let mut engine = Engine::new();
        let stream = engine.stream_update(&v1, &v2, 1024).unwrap();

        let mut dev = Device::new(v1.len().max(v2.len()));
        dev.flash(&v1).unwrap();
        let progress = stream_install(&mut dev, &stream, lossy(0.1, 7), 576, None, None).unwrap();
        let StreamProgress::Complete(report) = progress else {
            panic!("no kill requested");
        };
        assert_eq!(dev.image(), &v2[..]);
        assert!(report.crc_verified);
        assert_eq!(report.received_bytes, stream.wire_len());
        assert_eq!(report.resumes, 0);
        // Streaming means work happened before the last byte arrived.
        assert!(report.commands_pre_eof > 0);
        let ttfb = report.time_to_first_byte.unwrap();
        assert!(ttfb < report.transfer_time);
    }

    #[test]
    fn kill_and_resume_at_every_chunk_boundary() {
        let (v1, v2) = pair();
        let mut engine = Engine::new();
        let stream = engine.stream_update(&v1, &v2, 64).unwrap();
        let total_chunks = stream.wire_len().div_ceil(64);
        assert!(total_chunks > 10, "want a real boundary sweep");

        for kill_at in 1..=total_chunks {
            let mut dev = Device::new(v1.len().max(v2.len()));
            dev.flash(&v1).unwrap();
            let channel = lossy(0.05, kill_at);
            match stream_install(&mut dev, &stream, channel, 576, None, Some(kill_at)).unwrap() {
                StreamProgress::Complete(_) => {
                    assert_eq!(kill_at, total_chunks, "only the last chunk completes");
                }
                StreamProgress::Killed { checkpoint, report } => {
                    assert_eq!(report.chunks, kill_at);
                    // Round-trip the checkpoint through serialization,
                    // as a device writing it to flash would.
                    let restored = checkpoint
                        .map(|c| InstallCheckpoint::decode(&c.encode()).expect("round trip"));
                    let resumed =
                        stream_install(&mut dev, &stream, channel, 576, restored.as_ref(), None)
                            .unwrap();
                    let StreamProgress::Complete(done) = resumed else {
                        panic!("no second kill");
                    };
                    if restored.is_some() {
                        assert_eq!(done.resumes, 1, "kill at {kill_at}");
                    }
                    assert!(done.crc_verified);
                }
            }
            assert_eq!(dev.image(), &v2[..], "kill at {kill_at}");
        }
    }

    #[test]
    fn resume_is_idempotent_from_the_same_checkpoint() {
        // Replaying the same checkpoint against two copies of the same
        // mid-update storage must converge to identical images.
        let (v1, v2) = pair();
        let mut engine = Engine::new();
        let stream = engine.stream_update(&v1, &v2, 64).unwrap();
        let mut dev = Device::new(v1.len().max(v2.len()));
        dev.flash(&v1).unwrap();
        let StreamProgress::Killed { checkpoint, .. } =
            stream_install(&mut dev, &stream, lossy(0.0, 1), 576, None, Some(5)).unwrap()
        else {
            panic!("killed at chunk 5");
        };
        let checkpoint = checkpoint.expect("header fits in five chunks");
        let mut replica = dev.clone();
        for d in [&mut dev, &mut replica] {
            let progress =
                stream_install(d, &stream, lossy(0.0, 1), 576, Some(&checkpoint), None).unwrap();
            assert!(matches!(progress, StreamProgress::Complete(_)));
        }
        assert_eq!(dev.image(), replica.image());
        assert_eq!(dev.image(), &v2[..]);
    }

    #[test]
    fn forged_checkpoint_rejected() {
        let (v1, v2) = pair();
        let mut engine = Engine::new();
        let stream = engine.stream_update(&v1, &v2, 64).unwrap();
        let mut dev = Device::new(v1.len().max(v2.len()));
        dev.flash(&v1).unwrap();
        let StreamProgress::Killed { checkpoint, .. } =
            stream_install(&mut dev, &stream, lossy(0.0, 1), 576, None, Some(4)).unwrap()
        else {
            panic!("killed at chunk 4");
        };
        let good = checkpoint.expect("header arrived");

        let mut wrong_count = good.clone();
        wrong_count.decoder.commands_decoded += 1;
        let mut wrong_cover = good.clone();
        wrong_cover.covered += 1;
        for bad in [wrong_count, wrong_cover] {
            let err = stream_install(&mut dev, &stream, lossy(0.0, 1), 576, Some(&bad), None)
                .unwrap_err();
            assert!(matches!(err, InstallError::Checkpoint(_)), "{err}");
        }
        // Corrupted serialized form is caught by the CRC seal.
        let mut bytes = good.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            InstallCheckpoint::decode(&bytes),
            Err(CheckpointError::Checksum { .. })
        ));
    }

    #[test]
    fn kill_before_header_restarts_from_scratch() {
        let (v1, v2) = pair();
        let mut engine = Engine::new();
        // One-byte chunks: the header needs several chunks to arrive.
        let stream = engine.stream_update(&v1, &v2, 1).unwrap();
        let mut dev = Device::new(v1.len().max(v2.len()));
        dev.flash(&v1).unwrap();
        let StreamProgress::Killed { checkpoint, report } =
            stream_install(&mut dev, &stream, lossy(0.0, 3), 576, None, Some(2)).unwrap()
        else {
            panic!("killed at chunk 2");
        };
        assert!(checkpoint.is_none(), "no checkpoint before the header");
        assert_eq!(report.chunks, 2);
        assert_eq!(dev.image(), &v1[..], "device untouched");
        // Restart from byte 0 (resume_from: None) and finish.
        let progress = stream_install(&mut dev, &stream, lossy(0.0, 3), 576, None, None).unwrap();
        assert!(matches!(progress, StreamProgress::Complete(_)));
        assert_eq!(dev.image(), &v2[..]);
    }

    #[test]
    fn loss_rate_changes_time_not_bytes() {
        let (v1, v2) = pair();
        let mut engine = Engine::new();
        let stream = engine.stream_update(&v1, &v2, 64).unwrap();
        let mut times = Vec::new();
        for loss in [0.0, 0.2, 0.6] {
            let mut dev = Device::new(v1.len().max(v2.len()));
            dev.flash(&v1).unwrap();
            let StreamProgress::Complete(report) =
                stream_install(&mut dev, &stream, lossy(loss, 11), 16, None, None).unwrap()
            else {
                panic!("no kill");
            };
            assert_eq!(dev.image(), &v2[..], "loss {loss}");
            assert_eq!(report.received_bytes, stream.wire_len(), "loss {loss}");
            times.push(report.transfer_time);
        }
        // Same bytes on every run; only the time changes with loss.
        assert!(times[0] <= times[1] && times[1] <= times[2]);
        assert!(times[0] < times[2], "{times:?}");
    }

    #[test]
    fn decoder_memory_stays_bounded() {
        let (v1, v2) = pair();
        let mut engine = Engine::new();
        let chunk_len = 512usize;
        let stream = engine.stream_update(&v1, &v2, chunk_len).unwrap();
        // Largest possible command frame: tag + 3 ten-byte varints +
        // the largest add literal in the delta.
        let delta = engine.update(&v1, &v2).unwrap();
        let max_literal = delta
            .script
            .commands()
            .iter()
            .map(|c| match c {
                ipr_delta::Command::Add(a) => a.len(),
                ipr_delta::Command::Copy(_) => 0,
            })
            .max()
            .unwrap_or(0);
        let mut dev = Device::new(v1.len().max(v2.len()));
        dev.flash(&v1).unwrap();
        let StreamProgress::Complete(report) =
            stream_install(&mut dev, &stream, lossy(0.0, 1), 576, None, None).unwrap()
        else {
            panic!("no kill");
        };
        let bound = max_literal + 31 + chunk_len as u64;
        assert!(
            report.buffered_high_water <= bound,
            "high water {} exceeds frame+chunk bound {bound}",
            report.buffered_high_water
        );
    }
}

//! A simulated storage-constrained network device.
//!
//! The paper's motivation: PDAs, set-top boxes and sensors that cannot
//! hold two file versions at once. [`Device`] models exactly that — a
//! fixed-capacity storage region and *no* scratch buffer — and adds what
//! real update engines add on top: a run-time write-before-read fault
//! detector, so applying a delta that violates Equation 2 fails loudly
//! instead of silently corrupting the image.

use ipr_delta::{Command, DeltaScript};
use std::fmt;

/// Error returned by device operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The image or update does not fit in device storage.
    CapacityExceeded {
        /// Bytes required.
        needed: u64,
        /// Device storage size.
        capacity: u64,
    },
    /// A copy command tried to read a region an earlier command already
    /// overwrote — the delta is not in-place reconstructible in this
    /// order.
    WriteBeforeRead {
        /// Index of the faulting command in application order.
        command: usize,
        /// First already-written offset the command tried to read.
        offset: u64,
    },
    /// No image has been flashed yet.
    NotFlashed,
    /// A resumable update's journal does not match its script.
    Resume(ipr_core::resumable::ResumeError),
    /// A streamed command is malformed: it reads or writes outside the
    /// declared dimensions, or overlaps an earlier command's write.
    InvalidCommand {
        /// Index (application order) of the offending command.
        command: usize,
    },
    /// A streamed update ended before covering the declared target.
    IncompleteUpdate {
        /// Bytes covered by the applied commands.
        covered: u64,
        /// Declared target length.
        target_len: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::CapacityExceeded { needed, capacity } => {
                write!(f, "update needs {needed} bytes, device has {capacity}")
            }
            DeviceError::WriteBeforeRead { command, offset } => {
                write!(
                    f,
                    "command {command} reads offset {offset} after it was overwritten"
                )
            }
            DeviceError::NotFlashed => write!(f, "no image installed on the device"),
            DeviceError::Resume(e) => write!(f, "resumable update failed: {e}"),
            DeviceError::InvalidCommand { command } => {
                write!(f, "streamed command {command} is malformed")
            }
            DeviceError::IncompleteUpdate {
                covered,
                target_len,
            } => {
                write!(f, "update covered {covered} of {target_len} target bytes")
            }
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Resume(e) => Some(e),
            _ => None,
        }
    }
}

/// Statistics from one in-place update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Commands applied.
    pub commands: usize,
    /// Bytes written to storage.
    pub bytes_written: u64,
    /// Bytes read from storage (copy sources).
    pub bytes_read: u64,
    /// Scratch bytes allocated beyond device storage — always 0; kept in
    /// the report to make the paper's headline property auditable.
    pub scratch_bytes: u64,
}

/// A fixed-capacity device holding one firmware image.
///
/// # Example
///
/// ```
/// use ipr_device::Device;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = Device::new(1024);
/// dev.flash(b"firmware v1")?;
/// assert_eq!(dev.image(), b"firmware v1");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Device {
    storage: Vec<u8>,
    image_len: usize,
    flashed: bool,
}

impl Device {
    /// Creates a device with `capacity` bytes of storage.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            storage: vec![0xff; capacity], // erased flash reads 0xff
            image_len: 0,
            flashed: false,
        }
    }

    /// Storage capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.storage.len() as u64
    }

    /// Installs a full image, replacing any previous contents.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::CapacityExceeded`] if the image does not fit.
    pub fn flash(&mut self, image: &[u8]) -> Result<(), DeviceError> {
        if image.len() > self.storage.len() {
            return Err(DeviceError::CapacityExceeded {
                needed: image.len() as u64,
                capacity: self.capacity(),
            });
        }
        self.storage[..image.len()].copy_from_slice(image);
        self.image_len = image.len();
        self.flashed = true;
        Ok(())
    }

    /// The currently installed image.
    ///
    /// Empty if nothing has been flashed.
    #[must_use]
    pub fn image(&self) -> &[u8] {
        &self.storage[..self.image_len]
    }

    /// The raw flash contents, full capacity. During an interrupted
    /// update this is the durable hybrid of old and new image that a
    /// resume checkpoint describes — persist it alongside the
    /// checkpoint to survive a power cycle of the simulator itself.
    #[must_use]
    pub fn storage(&self) -> &[u8] {
        &self.storage
    }

    /// Applies a delta update in place, *with* run-time write-before-read
    /// fault detection.
    ///
    /// The script's commands are applied serially against device storage;
    /// before each copy, its read interval is checked against the set of
    /// already-written bytes. A script produced by
    /// [`convert_to_in_place`](ipr_core::convert_to_in_place) always
    /// passes; an unconverted delta will typically fault here instead of
    /// corrupting the image (the update is abandoned mid-way in that case,
    /// exactly the hazard the paper's algorithm exists to avoid).
    ///
    /// # Errors
    ///
    /// * [`DeviceError::NotFlashed`] — no image installed.
    /// * [`DeviceError::CapacityExceeded`] — the script needs more than
    ///   the device's storage (`max(source_len, target_len)` bytes) or its
    ///   source length does not match the installed image.
    /// * [`DeviceError::WriteBeforeRead`] — runtime Equation 2 violation.
    pub fn apply_update(&mut self, script: &DeltaScript) -> Result<UpdateStats, DeviceError> {
        self.apply_inner(script, true)
    }

    /// Applies a delta update in place *without* write-before-read
    /// checking, as a naive device would. Unsafe scripts silently corrupt
    /// the image; used to demonstrate the failure mode.
    ///
    /// # Errors
    ///
    /// Same as [`Device::apply_update`] except no
    /// [`DeviceError::WriteBeforeRead`] is ever raised.
    pub fn apply_update_unchecked(
        &mut self,
        script: &DeltaScript,
    ) -> Result<UpdateStats, DeviceError> {
        self.apply_inner(script, false)
    }

    /// Applies a delta update incrementally with a durable
    /// [`Journal`](ipr_core::resumable::Journal),
    /// surviving power loss at any point: call repeatedly (persisting the
    /// journal between calls) until it returns
    /// [`Progress::Complete`](ipr_core::resumable::Progress::Complete).
    /// `max_bytes` bounds the work per call — the simulation's stand-in
    /// for "the device lost power after this much progress".
    ///
    /// The script is verified against Equation 2 up front, so an unsafe
    /// delta is rejected before the image is touched.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::NotFlashed`] / [`DeviceError::CapacityExceeded`] —
    ///   as for [`Device::apply_update`]. The source length is only
    ///   checked on a fresh journal: mid-update the image is already a
    ///   hybrid of old and new.
    /// * [`DeviceError::WriteBeforeRead`] — the delta violates Equation 2.
    /// * [`DeviceError::Resume`] — journal/script mismatch.
    pub fn apply_update_resumable(
        &mut self,
        script: &DeltaScript,
        journal: &mut ipr_core::resumable::Journal,
        max_bytes: u64,
    ) -> Result<ipr_core::resumable::Progress, DeviceError> {
        use ipr_core::resumable::{resume_in_place, Progress};
        if !self.flashed {
            return Err(DeviceError::NotFlashed);
        }
        let needed = script.source_len().max(script.target_len());
        if needed > self.capacity() {
            return Err(DeviceError::CapacityExceeded {
                needed,
                capacity: self.capacity(),
            });
        }
        let fresh = journal.command_index() == 0
            && journal.bytes_done_in_command() == 0
            && !journal.has_pending_chunk();
        if fresh {
            if script.source_len() != self.image_len as u64 {
                return Err(DeviceError::CapacityExceeded {
                    needed: script.source_len(),
                    capacity: self.capacity(),
                });
            }
            if let Err(v) = ipr_core::check_in_place_safe(script) {
                return Err(DeviceError::WriteBeforeRead {
                    command: v.reader,
                    offset: v.read.start(),
                });
            }
        }
        let end = needed as usize;
        let progress = resume_in_place(script, &mut self.storage[..end], journal, 4096, max_bytes)
            .map_err(DeviceError::Resume)?;
        if progress == Progress::Complete {
            self.image_len = script.target_len() as usize;
        }
        Ok(progress)
    }

    /// Applies a *spilled* update: a script converted with
    /// [`convert_with_spill`](ipr_core::spill::convert_with_spill), whose
    /// stashed copies are staged through a bounded scratch buffer. The
    /// report's `scratch_bytes` records the actual scratch used — the
    /// middle ground between the paper's zero-scratch reconstruction and
    /// holding a whole second image.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::NotFlashed`] / [`DeviceError::CapacityExceeded`] —
    ///   as for [`Device::apply_update`].
    /// * [`DeviceError::InvalidCommand`] — bad stash metadata, scratch
    ///   budget exceeded, or the script is unsafe under stash semantics.
    pub fn apply_update_spilled(
        &mut self,
        script: &DeltaScript,
        stashed: &[usize],
        scratch_budget: u64,
    ) -> Result<UpdateStats, DeviceError> {
        if !self.flashed {
            return Err(DeviceError::NotFlashed);
        }
        let needed = script.source_len().max(script.target_len());
        if needed > self.capacity() || script.source_len() != self.image_len as u64 {
            return Err(DeviceError::CapacityExceeded {
                needed: needed.max(script.source_len()),
                capacity: self.capacity(),
            });
        }
        if !ipr_core::spill::is_spill_safe(script, stashed) {
            return Err(DeviceError::InvalidCommand { command: 0 });
        }
        let end = needed as usize;
        ipr_core::spill::apply_in_place_spilled(
            script,
            stashed,
            &mut self.storage[..end],
            scratch_budget,
        )
        .map_err(|_| DeviceError::InvalidCommand { command: 0 })?;
        self.image_len = script.target_len() as usize;
        let scratch_bytes: u64 = stashed
            .iter()
            .filter_map(|&i| script.commands().get(i))
            .map(Command::len)
            .sum();
        Ok(UpdateStats {
            commands: script.len(),
            bytes_written: script.target_len(),
            bytes_read: script.copied_bytes(),
            scratch_bytes,
        })
    }

    /// Begins a command-at-a-time update of declared dimensions, for
    /// streaming installation: commands are applied as they arrive off
    /// the wire, each checked against the write-before-read fault
    /// detector, with memory bounded by one command.
    ///
    /// The update takes effect (the device's image length changes) only
    /// when [`UpdateSession::commit`] is called; dropping the session
    /// mid-way models an interrupted transfer (storage may hold a partial
    /// image, as on real hardware).
    ///
    /// # Errors
    ///
    /// [`DeviceError::NotFlashed`] or [`DeviceError::CapacityExceeded`]
    /// (dimensions out of range or source length not matching the
    /// installed image).
    pub fn begin_update(
        &mut self,
        source_len: u64,
        target_len: u64,
    ) -> Result<UpdateSession<'_>, DeviceError> {
        if !self.flashed {
            return Err(DeviceError::NotFlashed);
        }
        let needed = source_len.max(target_len);
        if needed > self.capacity() || source_len != self.image_len as u64 {
            return Err(DeviceError::CapacityExceeded {
                needed: needed.max(source_len),
                capacity: self.capacity(),
            });
        }
        Ok(UpdateSession {
            written: vec![false; needed as usize],
            covered: 0,
            target_len,
            stats: UpdateStats::default(),
            device: self,
        })
    }

    /// Rebuilds an [`UpdateSession`] from checkpointed progress after a
    /// power cut mid-streaming-install. The caller (the streaming
    /// install layer) has already validated the checkpoint; storage is
    /// expected to hold the partially reconstructed hybrid image, so
    /// the image length is restored from the declared source length
    /// rather than checked against it.
    pub(crate) fn resume_session(
        &mut self,
        source_len: u64,
        target_len: u64,
        written: &[(u64, u64)],
        covered: u64,
        stats: UpdateStats,
    ) -> Result<UpdateSession<'_>, DeviceError> {
        if !self.flashed {
            return Err(DeviceError::NotFlashed);
        }
        let needed = source_len.max(target_len);
        if needed > self.capacity() {
            return Err(DeviceError::CapacityExceeded {
                needed,
                capacity: self.capacity(),
            });
        }
        self.image_len = source_len as usize;
        let mut map = vec![false; needed as usize];
        for &(start, end) in written {
            map[start as usize..end as usize].fill(true);
        }
        Ok(UpdateSession {
            written: map,
            covered,
            target_len,
            stats,
            device: self,
        })
    }

    fn apply_inner(
        &mut self,
        script: &DeltaScript,
        checked: bool,
    ) -> Result<UpdateStats, DeviceError> {
        if !self.flashed {
            return Err(DeviceError::NotFlashed);
        }
        let needed = script.source_len().max(script.target_len());
        if needed > self.capacity() || script.source_len() != self.image_len as u64 {
            return Err(DeviceError::CapacityExceeded {
                needed: needed.max(script.source_len()),
                capacity: self.capacity(),
            });
        }

        let mut written = if checked {
            vec![false; needed as usize]
        } else {
            Vec::new()
        };
        let mut stats = UpdateStats::default();
        for (index, cmd) in script.commands().iter().enumerate() {
            match cmd {
                Command::Copy(c) => {
                    let src = c.read_interval().as_usize_range();
                    if checked {
                        if let Some(bad) = written[src.clone()].iter().position(|&w| w) {
                            return Err(DeviceError::WriteBeforeRead {
                                command: index,
                                offset: c.from + bad as u64,
                            });
                        }
                    }
                    let dst = c.write_interval().as_usize_range();
                    self.storage.copy_within(src, dst.start);
                    if checked {
                        written[dst].fill(true);
                    }
                    stats.bytes_read += c.len;
                    stats.bytes_written += c.len;
                }
                Command::Add(a) => {
                    let dst = a.write_interval().as_usize_range();
                    self.storage[dst.clone()].copy_from_slice(&a.data);
                    if checked {
                        written[dst].fill(true);
                    }
                    stats.bytes_written += a.len();
                }
            }
            stats.commands += 1;
        }
        self.image_len = script.target_len() as usize;
        Ok(stats)
    }
}

/// An in-flight streaming update (see [`Device::begin_update`]).
#[derive(Debug)]
pub struct UpdateSession<'a> {
    device: &'a mut Device,
    written: Vec<bool>,
    covered: u64,
    target_len: u64,
    stats: UpdateStats,
}

impl UpdateSession<'_> {
    /// Applies one command, enforcing the write-before-read check and
    /// that writes land inside the declared target.
    ///
    /// # Errors
    ///
    /// * [`DeviceError::WriteBeforeRead`] — the command reads an
    ///   already-written region (the delta is unsafe or mis-ordered).
    /// * [`DeviceError::InvalidCommand`] — the command reads or writes
    ///   outside the declared dimensions, or overlaps an earlier write
    ///   (write intervals must be disjoint).
    pub fn apply_command(&mut self, cmd: &Command) -> Result<(), DeviceError> {
        match cmd.to().checked_add(cmd.len()) {
            Some(end) if end <= self.target_len => {}
            _ => {
                return Err(DeviceError::InvalidCommand {
                    command: self.stats.commands,
                })
            }
        }
        match cmd {
            Command::Copy(c) => {
                match c.from.checked_add(c.len) {
                    Some(end) if end <= self.device.image_len as u64 => {}
                    _ => {
                        return Err(DeviceError::InvalidCommand {
                            command: self.stats.commands,
                        })
                    }
                }
                let src = c.read_interval().as_usize_range();
                if let Some(bad) = self.written[src.clone()].iter().position(|&w| w) {
                    return Err(DeviceError::WriteBeforeRead {
                        command: self.stats.commands,
                        offset: c.from + bad as u64,
                    });
                }
                let dst = c.write_interval().as_usize_range();
                self.check_disjoint(&dst)?;
                self.device.storage.copy_within(src, dst.start);
                self.written[dst].fill(true);
                self.stats.bytes_read += c.len;
                self.stats.bytes_written += c.len;
            }
            Command::Add(a) => {
                let dst = a.write_interval().as_usize_range();
                self.check_disjoint(&dst)?;
                self.device.storage[dst.clone()].copy_from_slice(&a.data);
                self.written[dst].fill(true);
                self.stats.bytes_written += a.len();
            }
        }
        self.covered += cmd.len();
        self.stats.commands += 1;
        Ok(())
    }

    fn check_disjoint(&self, dst: &std::ops::Range<usize>) -> Result<(), DeviceError> {
        if self.written[dst.clone()].iter().any(|&w| w) {
            return Err(DeviceError::InvalidCommand {
                command: self.stats.commands,
            });
        }
        Ok(())
    }

    /// Commands applied so far.
    #[must_use]
    pub fn commands_applied(&self) -> usize {
        self.stats.commands
    }

    /// Target bytes covered by the applied commands so far.
    pub(crate) fn covered(&self) -> u64 {
        self.covered
    }

    /// Running statistics (the commit-time report in progress).
    pub(crate) fn stats_so_far(&self) -> UpdateStats {
        self.stats
    }

    /// The written bitmap as coalesced `[start, end)` intervals — the
    /// serializable form of the session's write-before-read state.
    pub(crate) fn written_intervals(&self) -> Vec<(u64, u64)> {
        let mut runs = Vec::new();
        let mut start = None;
        for (i, &w) in self.written.iter().enumerate() {
            match (w, start) {
                (true, None) => start = Some(i as u64),
                (false, Some(s)) => {
                    runs.push((s, i as u64));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push((s, self.written.len() as u64));
        }
        runs
    }

    /// Finalizes the update; fails unless the commands exactly covered
    /// the declared target.
    ///
    /// # Errors
    ///
    /// [`DeviceError::IncompleteUpdate`] when the applied commands do not
    /// cover the declared target exactly.
    pub fn commit(self) -> Result<UpdateStats, DeviceError> {
        if self.covered != self.target_len {
            return Err(DeviceError::IncompleteUpdate {
                covered: self.covered,
                target_len: self.target_len,
            });
        }
        self.device.image_len = self.target_len as usize;
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_core::{convert_to_in_place, ConversionConfig};
    use ipr_delta::diff::{Differ, GreedyDiffer};

    fn firmware_pair() -> (Vec<u8>, Vec<u8>) {
        let reference: Vec<u8> = (0..8192u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut version = reference.clone();
        version.rotate_left(1024); // block move: cycles ahead
        version[4096] ^= 0xff;
        (reference, version)
    }

    #[test]
    fn flash_and_read_back() {
        let mut dev = Device::new(64);
        dev.flash(b"hello").unwrap();
        assert_eq!(dev.image(), b"hello");
        assert_eq!(dev.capacity(), 64);
    }

    #[test]
    fn flash_rejects_oversize() {
        let mut dev = Device::new(4);
        let err = dev.flash(b"too big").unwrap_err();
        assert_eq!(
            err,
            DeviceError::CapacityExceeded {
                needed: 7,
                capacity: 4
            }
        );
    }

    #[test]
    fn update_requires_flash() {
        let mut dev = Device::new(16);
        let script = DeltaScript::new(0, 0, vec![]).unwrap();
        assert_eq!(dev.apply_update(&script), Err(DeviceError::NotFlashed));
    }

    #[test]
    fn converted_update_applies_cleanly() {
        let (reference, version) = firmware_pair();
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();

        let mut dev = Device::new(8192);
        dev.flash(&reference).unwrap();
        let stats = dev.apply_update(&out.script).unwrap();
        assert_eq!(dev.image(), &version[..]);
        assert_eq!(stats.scratch_bytes, 0);
        assert!(stats.bytes_written >= version.len() as u64);
    }

    #[test]
    fn unsafe_update_faults_when_checked() {
        // A block swap applied without conversion must raise a WR fault.
        let reference: Vec<u8> = (0u8..16).collect();
        let script =
            DeltaScript::new(16, 16, vec![Command::copy(8, 0, 8), Command::copy(0, 8, 8)]).unwrap();
        let mut dev = Device::new(16);
        dev.flash(&reference).unwrap();
        let err = dev.apply_update(&script).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::WriteBeforeRead { command: 1, .. }
        ));
    }

    #[test]
    fn unsafe_update_corrupts_when_unchecked() {
        let reference: Vec<u8> = (0u8..16).collect();
        let script =
            DeltaScript::new(16, 16, vec![Command::copy(8, 0, 8), Command::copy(0, 8, 8)]).unwrap();
        let expected = ipr_delta::apply(&script, &reference).unwrap();
        let mut dev = Device::new(16);
        dev.flash(&reference).unwrap();
        dev.apply_update_unchecked(&script).unwrap();
        assert_ne!(dev.image(), &expected[..], "naive device corrupts silently");
    }

    #[test]
    fn capacity_checked_against_max_of_lengths() {
        let (reference, version) = firmware_pair();
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let mut dev = Device::new(reference.len() - 1);
        assert!(dev.flash(&reference).is_err());
        // Flash a truncated image: the update then fails the source check.
        dev.flash(&reference[..reference.len() - 1]).unwrap();
        assert!(matches!(
            dev.apply_update(&out.script),
            Err(DeviceError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn growing_update_fits_by_capacity() {
        let reference = vec![1u8; 100];
        let version = vec![2u8; 150];
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let mut small = Device::new(100);
        small.flash(&reference).unwrap();
        assert!(matches!(
            small.apply_update(&out.script),
            Err(DeviceError::CapacityExceeded { needed: 150, .. })
        ));
        let mut big = Device::new(150);
        big.flash(&reference).unwrap();
        big.apply_update(&out.script).unwrap();
        assert_eq!(big.image(), &version[..]);
    }

    #[test]
    fn resumable_update_survives_power_loss_loop() {
        use ipr_core::resumable::{Journal, Progress};
        let (reference, version) = firmware_pair();
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();

        let mut dev = Device::new(8192);
        dev.flash(&reference).unwrap();
        // Power fails every 501 bytes; the persisted journal survives.
        let mut persisted = Journal::new();
        let mut reboots = 0;
        loop {
            let mut journal = persisted.clone(); // "load from stable storage"
            match dev
                .apply_update_resumable(&out.script, &mut journal, 501)
                .unwrap()
            {
                Progress::Complete => break,
                Progress::Suspended => {
                    persisted = journal; // "flush to stable storage"
                    reboots += 1;
                }
            }
            assert!(reboots < 100_000);
        }
        assert!(
            reboots > 3,
            "the update must actually have been interrupted"
        );
        assert_eq!(dev.image(), &version[..]);
    }

    #[test]
    fn resumable_update_rejects_unsafe_script_upfront() {
        use ipr_core::resumable::Journal;
        let reference: Vec<u8> = (0u8..16).collect();
        let unsafe_script =
            DeltaScript::new(16, 16, vec![Command::copy(0, 8, 8), Command::copy(8, 0, 8)]).unwrap();
        let mut dev = Device::new(16);
        dev.flash(&reference).unwrap();
        let mut journal = Journal::new();
        let err = dev
            .apply_update_resumable(&unsafe_script, &mut journal, u64::MAX)
            .unwrap_err();
        assert!(matches!(err, DeviceError::WriteBeforeRead { .. }));
        assert_eq!(
            dev.image(),
            &reference[..],
            "image untouched after rejection"
        );
    }

    #[test]
    fn resumable_single_shot_equals_plain_update() {
        use ipr_core::resumable::{Journal, Progress};
        let (reference, version) = firmware_pair();
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        let mut dev = Device::new(8192);
        dev.flash(&reference).unwrap();
        let mut journal = Journal::new();
        assert_eq!(
            dev.apply_update_resumable(&out.script, &mut journal, u64::MAX)
                .unwrap(),
            Progress::Complete
        );
        assert_eq!(dev.image(), &version[..]);
    }

    #[test]
    fn spilled_update_uses_scratch_and_saves_literals() {
        use ipr_core::spill::{convert_with_spill, SpillConfig};
        let (reference, version) = firmware_pair();
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_with_spill(
            &script,
            &reference,
            &SpillConfig {
                conversion: ConversionConfig::default(),
                scratch_budget: 4096,
            },
        )
        .unwrap();
        let mut dev = Device::new(8192);
        dev.flash(&reference).unwrap();
        let stats = dev
            .apply_update_spilled(&out.script, &out.stashed, 4096)
            .unwrap();
        assert_eq!(dev.image(), &version[..]);
        assert_eq!(stats.scratch_bytes, out.scratch_used);
        // The rotation creates cycles, so with budget some copy should
        // actually have been stashed.
        assert!(stats.scratch_bytes > 0);
    }

    #[test]
    fn spilled_update_rejects_bad_stash() {
        use ipr_core::spill::{convert_with_spill, SpillConfig};
        let (reference, version) = firmware_pair();
        let script = GreedyDiffer::default().diff(&reference, &version);
        let out = convert_with_spill(
            &script,
            &reference,
            &SpillConfig {
                conversion: ConversionConfig::default(),
                scratch_budget: 4096,
            },
        )
        .unwrap();
        let mut dev = Device::new(8192);
        dev.flash(&reference).unwrap();
        // Claiming no stash renders the script unsafe.
        if !out.stashed.is_empty() {
            let err = dev
                .apply_update_spilled(&out.script, &[], 4096)
                .unwrap_err();
            assert!(matches!(err, DeviceError::InvalidCommand { .. }));
        }
    }

    #[test]
    fn self_overlapping_copy_allowed() {
        // A command may read bytes it itself overwrites (§4.1); only
        // *prior* writes fault.
        let script = DeltaScript::new(16, 12, vec![Command::copy(4, 0, 12)]).unwrap();
        let reference: Vec<u8> = (0u8..16).collect();
        let mut dev = Device::new(16);
        dev.flash(&reference).unwrap();
        dev.apply_update(&script).unwrap();
        assert_eq!(dev.image(), &reference[4..16]);
    }
}

//! A deterministic bandwidth/latency channel model.
//!
//! The paper's premise is distribution "over low bandwidth channels, such
//! as the Internet" circa 1998; the channel model turns delta sizes into
//! transfer times so the headline benefit (4–10× less data → 4–10× faster
//! updates) can be reported as time.

use std::fmt;
use std::time::Duration;

/// A point-to-point channel with fixed bandwidth and round-trip latency.
///
/// # Example
///
/// ```
/// use ipr_device::Channel;
/// use std::time::Duration;
///
/// let modem = Channel::new(56_000, Duration::from_millis(200));
/// // 70 kB over 56 kbit/s: ten seconds of transfer plus latency.
/// assert_eq!(modem.transfer_time(70_000).as_secs(), 10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Channel {
    bits_per_second: u64,
    latency: Duration,
}

impl Channel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_second` is zero.
    #[must_use]
    pub fn new(bits_per_second: u64, latency: Duration) -> Self {
        assert!(bits_per_second > 0, "bandwidth must be positive");
        Self {
            bits_per_second,
            latency,
        }
    }

    /// A 56 kbit/s dial-up modem with 200 ms latency (the paper's "low
    /// bandwidth channel" era).
    #[must_use]
    pub fn dialup() -> Self {
        Self::new(56_000, Duration::from_millis(200))
    }

    /// A 128 kbit/s ISDN line with 50 ms latency.
    #[must_use]
    pub fn isdn() -> Self {
        Self::new(128_000, Duration::from_millis(50))
    }

    /// A 2 Mbit/s cellular link with 300 ms latency.
    #[must_use]
    pub fn cellular() -> Self {
        Self::new(2_000_000, Duration::from_millis(300))
    }

    /// Channel bandwidth in bits per second.
    #[must_use]
    pub fn bits_per_second(&self) -> u64 {
        self.bits_per_second
    }

    /// One-way latency.
    #[must_use]
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Time to deliver `bytes` of payload: latency plus serialization.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let nanos = (bytes as u128 * 8 * 1_000_000_000) / self.bits_per_second as u128;
        self.latency + Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }

    /// Speedup factor of sending `delta_bytes` instead of `full_bytes`.
    #[must_use]
    pub fn speedup(&self, full_bytes: u64, delta_bytes: u64) -> f64 {
        let full = self.transfer_time(full_bytes).as_secs_f64();
        let delta = self.transfer_time(delta_bytes).as_secs_f64();
        if delta == 0.0 {
            f64::INFINITY
        } else {
            full / delta
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kbit/s, {} ms latency",
            self.bits_per_second / 1000,
            self.latency.as_millis()
        )
    }
}

/// A lossy channel delivering frames under stop-and-wait ARQ.
///
/// The paper's "low bandwidth channels" (1998 Internet) were also lossy;
/// retransmissions multiply the cost of every payload byte, sharpening
/// the case for small deltas. The model is deterministic in its seed.
///
/// # Example
///
/// ```
/// use ipr_device::{Channel, LossyChannel};
/// use std::time::Duration;
///
/// let base = Channel::new(56_000, Duration::from_millis(100));
/// let lossless = LossyChannel::new(base, 0.0, 1).simulate_transfer(14_000, 1400);
/// let lossy = LossyChannel::new(base, 0.2, 1).simulate_transfer(14_000, 1400);
/// assert_eq!(lossless.retransmissions, 0);
/// assert!(lossy.time > lossless.time);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossyChannel {
    base: Channel,
    loss_rate: f64,
    seed: u64,
}

/// Result of one simulated transfer over a [`LossyChannel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferReport {
    /// Total wall-clock time including retransmissions.
    pub time: Duration,
    /// Frames delivered (payload ÷ MTU, rounded up).
    pub frames: u64,
    /// Frames that had to be re-sent.
    pub retransmissions: u64,
}

impl LossyChannel {
    /// Wraps `base` with an independent per-frame loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss_rate < 1.0`.
    #[must_use]
    pub fn new(base: Channel, loss_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_rate),
            "loss rate must be in [0, 1)"
        );
        Self {
            base,
            loss_rate,
            seed,
        }
    }

    /// The underlying lossless channel.
    #[must_use]
    pub fn base(&self) -> Channel {
        self.base
    }

    /// Per-frame loss probability.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    /// Seed of the deterministic loss stream.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Simulates delivering `bytes` of payload in `mtu`-byte frames under
    /// stop-and-wait ARQ: each attempt costs one round trip plus frame
    /// serialization; lost frames (deterministically drawn from the seed)
    /// are retried until delivered.
    ///
    /// # Panics
    ///
    /// Panics if `mtu == 0`.
    #[must_use]
    pub fn simulate_transfer(&self, bytes: u64, mtu: usize) -> TransferReport {
        assert!(mtu > 0, "mtu must be positive");
        let frames = bytes.div_ceil(mtu as u64);
        let mut time = Duration::ZERO;
        let mut retransmissions = 0u64;
        // Deterministic splitmix64 stream.
        let mut state = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let mut remaining = bytes;
        for _ in 0..frames {
            let frame = remaining.min(mtu as u64);
            remaining -= frame;
            loop {
                time += self.base.transfer_time(frame); // latency + serialization
                if next() >= self.loss_rate {
                    break;
                }
                retransmissions += 1;
            }
        }
        ipr_trace::with(|r| {
            r.add("device.channel.bytes", bytes);
            r.add("device.channel.frames", frames);
            r.add("device.channel.retransmissions", retransmissions);
        });
        TransferReport {
            time,
            frames,
            retransmissions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let c = Channel::new(8_000, Duration::ZERO); // 1000 bytes/s
        assert_eq!(c.transfer_time(1000), Duration::from_secs(1));
        assert_eq!(c.transfer_time(2000), Duration::from_secs(2));
        assert_eq!(c.transfer_time(0), Duration::ZERO);
    }

    #[test]
    fn latency_added_once() {
        let c = Channel::new(8_000, Duration::from_millis(500));
        assert_eq!(c.transfer_time(0), Duration::from_millis(500));
        assert_eq!(c.transfer_time(1000), Duration::from_millis(1500));
    }

    #[test]
    fn speedup_matches_compression_factor_at_zero_latency() {
        let c = Channel::new(56_000, Duration::ZERO);
        let s = c.speedup(1_000_000, 153_000); // the paper's 15.3%
        assert!((s - 1_000_000.0 / 153_000.0).abs() < 1e-9);
    }

    #[test]
    fn latency_dampens_speedup() {
        let c = Channel::new(56_000, Duration::from_secs(5));
        assert!(c.speedup(1_000_000, 153_000) < 1_000_000.0 / 153_000.0);
    }

    #[test]
    fn presets_are_ordered_by_bandwidth() {
        assert!(Channel::dialup().bits_per_second() < Channel::isdn().bits_per_second());
        assert!(Channel::isdn().bits_per_second() < Channel::cellular().bits_per_second());
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Channel::new(0, Duration::ZERO);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Channel::dialup().to_string().is_empty());
    }

    #[test]
    fn lossless_channel_never_retransmits() {
        let c = LossyChannel::new(Channel::isdn(), 0.0, 42);
        let r = c.simulate_transfer(100_000, 1400);
        assert_eq!(r.retransmissions, 0);
        assert_eq!(r.frames, 100_000u64.div_ceil(1400));
    }

    #[test]
    fn loss_increases_time_monotonically() {
        let base = Channel::new(128_000, Duration::from_millis(50));
        let mut previous = Duration::ZERO;
        for loss in [0.0, 0.1, 0.3, 0.6] {
            let r = LossyChannel::new(base, loss, 7).simulate_transfer(200_000, 1400);
            assert!(r.time > previous, "loss {loss}");
            previous = r.time;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let base = Channel::dialup();
        let a = LossyChannel::new(base, 0.25, 9).simulate_transfer(50_000, 576);
        let b = LossyChannel::new(base, 0.25, 9).simulate_transfer(50_000, 576);
        assert_eq!(a, b);
        let c = LossyChannel::new(base, 0.25, 10).simulate_transfer(50_000, 576);
        assert!(a != c || a.retransmissions == c.retransmissions);
    }

    #[test]
    fn retransmission_rate_tracks_loss_rate() {
        let base = Channel::cellular();
        let loss = 0.2;
        let r = LossyChannel::new(base, loss, 3).simulate_transfer(10_000_000, 1400);
        // Expected retransmissions per frame = p/(1-p) = 0.25.
        let per_frame = r.retransmissions as f64 / r.frames as f64;
        assert!((per_frame - 0.25).abs() < 0.03, "rate {per_frame}");
    }

    #[test]
    fn empty_payload_costs_nothing() {
        let r = LossyChannel::new(Channel::dialup(), 0.5, 1).simulate_transfer(0, 1400);
        assert_eq!(r.frames, 0);
        assert_eq!(r.time, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn total_loss_rejected() {
        let _ = LossyChannel::new(Channel::dialup(), 1.0, 0);
    }
}

//! Workload generators for the in-place reconstruction experiments.
//!
//! The paper evaluates on multi-version GNU/BSD software distributions,
//! which we cannot ship; this crate synthesizes seeded equivalents
//! (DESIGN.md §3 documents the substitution):
//!
//! * [`content`] — source-like and binary-like file content;
//! * [`mutate`] — revision mutators (point edits, block
//!   insert/delete/move/duplicate) whose block moves are what create CRWI
//!   cycles;
//! * [`corpus`] — deterministic corpora of (reference, version) pairs;
//! * [`adversarial`] — the paper's Figure 2 (tree digraph defeating the
//!   locally-minimum policy) and Figure 3 (quadratic edge count)
//!   constructions, realized as real file pairs.
//!
//! # Example
//!
//! ```
//! use ipr_workloads::corpus::CorpusSpec;
//!
//! let corpus = CorpusSpec::small().build();
//! assert_eq!(corpus.len(), 10);
//! // Same spec, same corpus: every experiment is reproducible.
//! assert_eq!(corpus, CorpusSpec::small().build());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod archive;
pub mod chain;
pub mod content;
pub mod corpus;
pub mod mutate;
pub mod reduction;

pub use adversarial::AdversarialCase;
pub use corpus::{CorpusSpec, FilePair};
pub use mutate::MutationProfile;

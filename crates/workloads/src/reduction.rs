//! Realizing arbitrary digraphs as CRWI digraphs — the gadget
//! construction behind the paper's NP-hardness claim.
//!
//! §5 of the paper states that minimum-cost cycle breaking is NP-hard "by
//! reduction from Karp's well known problem" (feedback vertex set), via
//! "a construction that encodes the input general digraph … into a
//! digraph with membership in class CRWI" — and then omits the
//! construction. This module supplies one and verifies it executably.
//!
//! The difficulty is that a copy command has a *single contiguous* read
//! interval, so a CRWI vertex cannot point at arbitrarily many scattered
//! write intervals. The gadget for a node `u` of the input digraph
//! therefore fans out through a chain of routers, each straddling one
//! port and the next router:
//!
//! ```text
//!           ┌────────┐     ┌────────┐
//!  (in) ──▶ │ neck_u │ ──▶ │ router │ ──▶ … ──▶ port_u,i ──▶ neck_{v_i} (out)
//!           └────────┘     └────────┘
//! ```
//!
//! * the **neck** (32-byte copy) is the only command whose write interval
//!   external ports read: every path through the gadget enters at the
//!   neck;
//! * **routers** (96-byte copies) straddle the adjacent write intervals
//!   of their two children, exactly like the paper's Figure 2 tree;
//! * **ports** (48-byte copies, one per out-edge) read a region covering
//!   the target node's neck write interval: the only cross-gadget edges.
//!
//! Every cycle of the realized CRWI digraph traverses necks in exact
//! correspondence with a cycle of the input digraph, and necks are
//! strictly the cheapest vertices (32 < 48 < 96 bytes), so a minimum-cost
//! vertex deletion of the realization deletes exactly the necks of a
//! minimum feedback vertex set of the input — which the tests confirm
//! with the exact solver.

use ipr_delta::{apply, Command, Copy, DeltaScript};
use ipr_digraph::{Digraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Copy length of a neck vertex (the cheap, representative command).
pub const NECK_LEN: u64 = 32;
/// Copy length of a port vertex (one per out-edge).
pub const PORT_LEN: u64 = 48;
/// Copy length of a router vertex (binary fan-out).
pub const ROUTER_LEN: u64 = 96;
/// Unwritten guard gap placed around gadget pieces.
const GAP: u64 = 64;

/// A digraph realized as a delta script whose CRWI digraph embeds it.
#[derive(Clone, Debug)]
pub struct CrwiRealization {
    /// The realized script (copies + filler adds, tiling the target).
    pub script: DeltaScript,
    /// A consistent reference file.
    pub reference: Vec<u8>,
    /// The version the script materializes.
    pub version: Vec<u8>,
    /// For each input node, the write offset (`to`) of its neck command —
    /// the stable identity of the node inside the realization.
    pub neck_to: Vec<u64>,
}

impl CrwiRealization {
    /// Maps a set of copy commands (e.g. the converted ones reported by
    /// the in-place algorithm) back to input-digraph nodes via their
    /// write offsets; non-neck commands map to `None`.
    #[must_use]
    pub fn node_of_write_offset(&self, to: u64) -> Option<NodeId> {
        self.neck_to
            .iter()
            .position(|&t| t == to)
            .map(|i| i as NodeId)
    }
}

/// Realizes `g` as a CRWI digraph (see the module docs).
///
/// The realization has one neck per node, one port per edge and
/// `out-degree - 1` routers per node of out-degree ≥ 2. Self-loops in
/// `g` are realized too: the node's port reads its own neck.
///
/// # Panics
///
/// Panics if `g` has no nodes.
///
/// # Example
///
/// ```
/// use ipr_digraph::Digraph;
/// use ipr_workloads::reduction::realize_digraph;
/// use ipr_core::CrwiGraph;
/// use ipr_digraph::topo;
///
/// // A 2-cycle realizes to a cyclic CRWI digraph.
/// let g = Digraph::from_edges(2, [(0, 1), (1, 0)]);
/// let realized = realize_digraph(&g, 7);
/// let crwi = CrwiGraph::build(realized.script.copies());
/// assert!(topo::find_cycle(crwi.graph()).is_some());
/// ```
#[must_use]
pub fn realize_digraph(g: &Digraph, seed: u64) -> CrwiRealization {
    let n = g.node_count();
    assert!(n > 0, "cannot realize an empty digraph");

    // ---- Layout pass: assign write intervals. --------------------------
    let mut cursor = GAP;
    let alloc = |len: u64, cursor: &mut u64| -> u64 {
        let at = *cursor;
        *cursor += len + GAP;
        at
    };

    // Necks first, so ports can target them regardless of node order.
    let mut neck_to = Vec::with_capacity(n);
    for _ in 0..n {
        neck_to.push(alloc(NECK_LEN, &mut cursor));
    }

    // Per node: the fan-out *caterpillar*. For out-degree k >= 2 the
    // routers form a chain r_1 … r_{k-1}; router r_i's read straddles the
    // adjacent pair [port_i][r_{i+1}] (the last router straddles
    // [port_{k-1}][port_k]). The neck reads the head of r_1. Chains make
    // the required adjacencies trivial: each straddled pair is allocated
    // as one contiguous block.
    struct NodePlan {
        /// Write offset of the chain head (read by the neck), if any.
        root: Option<u64>,
        /// Port write offsets in successor order.
        ports: Vec<u64>,
        /// Router placements: (write offset, straddle read start).
        routers: Vec<(u64, u64)>,
    }

    let mut plans = Vec::with_capacity(n);
    for u in 0..n as NodeId {
        let k = g.out_degree(u);
        if k == 0 {
            plans.push(NodePlan {
                root: None,
                ports: Vec::new(),
                routers: Vec::new(),
            });
            continue;
        }
        if k == 1 {
            // The lone port is the chain head itself.
            let at = alloc(PORT_LEN, &mut cursor);
            plans.push(NodePlan {
                root: Some(at),
                ports: vec![at],
                routers: Vec::new(),
            });
            continue;
        }
        // Router write offsets; r_1 stands alone, r_{i+1} shares a block
        // with port_i so r_i can straddle their boundary.
        let mut routers: Vec<(u64, u64)> = Vec::with_capacity(k - 1);
        let mut ports: Vec<u64> = Vec::with_capacity(k);
        let r1 = alloc(ROUTER_LEN, &mut cursor);
        let mut pending_router = r1; // router whose read is not yet placed
        for i in 0..k - 2 {
            // Block [port_{i+1} (PORT_LEN)][r_{i+2} (ROUTER_LEN)].
            let block = alloc(PORT_LEN + ROUTER_LEN, &mut cursor);
            let port = block;
            let next_router = block + PORT_LEN;
            ports.push(port);
            // pending router straddles the boundary at `next_router`.
            routers.push((pending_router, next_router - ROUTER_LEN / 2));
            pending_router = next_router;
            let _ = i;
        }
        // Tail block [port_{k-1}][port_k].
        let block = alloc(2 * PORT_LEN, &mut cursor);
        ports.push(block);
        ports.push(block + PORT_LEN);
        routers.push((pending_router, block + PORT_LEN - ROUTER_LEN / 2));
        plans.push(NodePlan {
            root: Some(r1),
            ports,
            routers,
        });
    }

    let total = cursor + GAP;

    // ---- Command pass: emit copies with the planned reads. -------------
    let mut copies: Vec<Copy> = Vec::new();
    let mut dead_zone = total; // sinks read from a growing dead region
    let mut extra = 0u64;
    for u in 0..n {
        let plan = &plans[u];
        match plan.root {
            Some(root_at) => {
                // Neck reads the first NECK_LEN bytes of the chain head
                // (a router or the lone port — both longer than a neck).
                copies.push(Copy {
                    from: root_at,
                    to: neck_to[u],
                    len: NECK_LEN,
                });
            }
            None => {
                // Sink: read from a dedicated unwritten region.
                copies.push(Copy {
                    from: dead_zone,
                    to: neck_to[u],
                    len: NECK_LEN,
                });
                dead_zone += NECK_LEN + GAP;
                extra += NECK_LEN + GAP;
            }
        }
        for &(at, read_start) in &plan.routers {
            copies.push(Copy {
                from: read_start,
                to: at,
                len: ROUTER_LEN,
            });
        }
        for (i, &at) in plan.ports.iter().enumerate() {
            let v = g.successors(u as NodeId)[i] as usize;
            // Port reads PORT_LEN bytes ending exactly at the end of the
            // target neck's write interval: (PORT_LEN - NECK_LEN) guard
            // bytes from the gap before the neck, then the whole neck.
            let read_start = neck_to[v] + NECK_LEN - PORT_LEN;
            copies.push(Copy {
                from: read_start,
                to: at,
                len: PORT_LEN,
            });
        }
    }
    let address_space = total + extra;

    // ---- Materialize a consistent file pair. ---------------------------
    let mut commands: Vec<Command> = copies.iter().map(|&c| Command::Copy(c)).collect();
    commands.sort_by_key(Command::to);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut filled = Vec::new();
    let mut at = 0u64;
    for cmd in &commands {
        if cmd.to() > at {
            let data: Vec<u8> = (at..cmd.to()).map(|_| rng.random()).collect();
            filled.push(Command::add(at, data));
        }
        at = cmd.write_interval().end();
    }
    if at < address_space {
        let data: Vec<u8> = (at..address_space).map(|_| rng.random()).collect();
        filled.push(Command::add(at, data));
    }
    commands.extend(filled);
    commands.sort_by_key(Command::to);
    let reference: Vec<u8> = (0..address_space).map(|_| rng.random()).collect();
    let script = DeltaScript::new(address_space, address_space, commands)
        .expect("gadget layout tiles the target");
    let version = apply(&script, &reference).expect("consistent lengths");

    CrwiRealization {
        script,
        reference,
        version,
        neck_to,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_core::CrwiGraph;
    use ipr_digraph::{fvs, topo};
    use std::collections::HashMap;

    /// Extracts the neck-to-neck digraph embedded in the realization's
    /// CRWI graph: an edge u -> v iff some path of gadget vertices leads
    /// from neck_u to neck_v without passing another neck.
    fn embedded_digraph(realized: &CrwiRealization, nodes: usize) -> Digraph {
        let crwi = CrwiGraph::build(realized.script.copies());
        let copies = crwi.copies();
        let neck_of: HashMap<u64, usize> = realized
            .neck_to
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .collect();
        let mut g = Digraph::new(nodes);
        // BFS from each neck through non-neck vertices.
        for (start, copy) in copies.iter().enumerate() {
            let Some(&u) = neck_of.get(&copy.to) else {
                continue;
            };
            let mut queue = vec![start as NodeId];
            let mut seen = vec![false; copies.len()];
            seen[start] = true;
            let mut found = std::collections::BTreeSet::new();
            while let Some(x) = queue.pop() {
                for &y in crwi.graph().successors(x) {
                    // Necks terminate a path (and may be the start itself,
                    // for self-loops); only non-necks are traversed.
                    if let Some(&v) = neck_of.get(&copies[y as usize].to) {
                        found.insert(v);
                        continue;
                    }
                    if seen[y as usize] {
                        continue;
                    }
                    seen[y as usize] = true;
                    queue.push(y);
                }
            }
            for v in found {
                g.add_edge(u as NodeId, v as NodeId);
            }
        }
        g
    }

    fn assert_embeds(edges: &[(NodeId, NodeId)], nodes: usize) {
        let g = Digraph::from_edges(nodes, edges.iter().copied());
        let realized = realize_digraph(&g, 5);
        let embedded = embedded_digraph(&realized, nodes);
        let mut want: Vec<(NodeId, NodeId)> = edges.to_vec();
        want.sort_unstable();
        want.dedup();
        let mut got: Vec<(NodeId, NodeId)> = embedded.edges().collect();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn realizes_assorted_shapes() {
        assert_embeds(&[], 1);
        assert_embeds(&[(0, 1)], 2);
        assert_embeds(&[(0, 1), (1, 0)], 2);
        assert_embeds(&[(0, 1), (1, 2), (2, 0)], 3);
        assert_embeds(&[(0, 1), (0, 2), (0, 3)], 4); // fan-out 3: routers
        assert_embeds(&[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)], 6); // fan-out 5
        assert_embeds(&[(0, 0)], 1); // self-loop
        assert_embeds(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 3)], 4);
    }

    #[test]
    fn acyclicity_preserved_both_ways() {
        let dag = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let realized = realize_digraph(&dag, 1);
        let crwi = CrwiGraph::build(realized.script.copies());
        assert!(topo::find_cycle(crwi.graph()).is_none());

        let cyclic = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let realized = realize_digraph(&cyclic, 1);
        let crwi = CrwiGraph::build(realized.script.copies());
        assert!(topo::find_cycle(crwi.graph()).is_some());
    }

    #[test]
    fn minimum_fvs_of_realization_picks_necks_of_minimum_fvs() {
        // Two cycles sharing node 1: min FVS of G = {1}. The realization's
        // min-cost FVS must delete exactly neck_1.
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 1)]);
        let g_fvs = fvs::minimum_feedback_vertex_set(&g, &[1, 1, 1, 1], 10).unwrap();
        assert_eq!(g_fvs, vec![1]);

        let realized = realize_digraph(&g, 3);
        let crwi = CrwiGraph::build(realized.script.copies());
        let costs: Vec<u64> = crwi.copies().iter().map(|c| c.len).collect();
        let set = fvs::minimum_feedback_vertex_set(crwi.graph(), &costs, 24).unwrap();
        let removed_nodes: Vec<Option<NodeId>> = set
            .iter()
            .map(|&v| realized.node_of_write_offset(crwi.copies()[v as usize].to))
            .collect();
        assert_eq!(removed_nodes, vec![Some(1)], "only neck_1 is deleted");
    }

    #[test]
    fn conversion_of_realization_round_trips() {
        use ipr_core::{apply_in_place, convert_to_in_place, ConversionConfig};
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0), (0, 2)]);
        let realized = realize_digraph(&g, 9);
        let out = convert_to_in_place(
            &realized.script,
            &realized.reference,
            &ConversionConfig::default(),
        )
        .unwrap();
        assert!(out.report.cycles_broken > 0);
        let mut buf = realized.reference.clone();
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(buf, realized.version);
    }

    #[test]
    fn locally_minimum_deletes_only_necks() {
        use ipr_core::{convert_to_in_place, ConversionConfig, CyclePolicy};
        // A ring: every node is on the single cycle; LM should delete one
        // neck (the cheapest vertices on the cycle are necks).
        let n = 5;
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Digraph::from_edges(n as usize, edges);
        let realized = realize_digraph(&g, 4);
        let out = convert_to_in_place(
            &realized.script,
            &realized.reference,
            &ConversionConfig::with_policy(CyclePolicy::LocallyMinimum),
        )
        .unwrap();
        assert_eq!(out.report.copies_converted, 1);
        assert_eq!(out.report.bytes_converted, NECK_LEN);
    }

    #[test]
    #[should_panic(expected = "empty digraph")]
    fn empty_digraph_rejected() {
        let _ = realize_digraph(&Digraph::new(0), 0);
    }
}

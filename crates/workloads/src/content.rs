//! Synthetic file content with software-distribution-like structure.
//!
//! The paper's corpus is multi-version GNU/BSD software (source trees and
//! binaries). We cannot ship that corpus, so these generators produce
//! seeded stand-ins with the two structural regimes that matter to a
//! differencing algorithm: line-structured source text with heavy token
//! reuse, and sectioned binary images mixing low- and high-entropy
//! regions.

use rand::rngs::StdRng;
use rand::Rng;

/// The structural flavour of a generated file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContentKind {
    /// Line-structured ASCII resembling program source: repeated
    /// identifiers, keywords and indentation.
    SourceLike,
    /// Sectioned binary resembling an executable or firmware image:
    /// header, repetitive code-like bytes, data tables, high-entropy blob.
    BinaryLike,
}

/// Generates `len` bytes of the requested flavour from `rng`.
///
/// Deterministic for a given RNG state.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use ipr_workloads::content::{generate, ContentKind};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let a = generate(&mut rng, ContentKind::SourceLike, 1000);
/// assert_eq!(a.len(), 1000);
/// let mut rng2 = rand::rngs::StdRng::seed_from_u64(7);
/// assert_eq!(a, generate(&mut rng2, ContentKind::SourceLike, 1000));
/// ```
#[must_use]
pub fn generate(rng: &mut StdRng, kind: ContentKind, len: usize) -> Vec<u8> {
    match kind {
        ContentKind::SourceLike => source_like(rng, len),
        ContentKind::BinaryLike => binary_like(rng, len),
    }
}

const KEYWORDS: &[&str] = &[
    "static", "return", "struct", "switch", "sizeof", "typedef", "const", "while", "break", "void",
    "char", "unsigned", "int32_t", "uint8_t", "extern", "inline", "register", "if", "else", "for",
    "goto", "case", "default", "do", "enum", "union", "continue",
];

const IDENT_PARTS: &[&str] = &[
    "buf", "len", "ptr", "ctx", "dev", "pkt", "hdr", "cfg", "init", "read", "write", "send",
    "recv", "open", "close", "flush", "state", "flags", "index", "count", "offset", "table",
    "queue", "lock", "timer", "event", "frame", "block",
];

/// Line-structured ASCII with a small vocabulary, so cross-version matches
/// are long and frequent (as in real source trees).
fn source_like(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 80);
    // A per-file identifier pool: some lines repeat verbatim, as real code
    // repeats idioms.
    let pool: Vec<String> = (0..24)
        .map(|_| {
            let a = IDENT_PARTS[rng.random_range(0..IDENT_PARTS.len())];
            let b = IDENT_PARTS[rng.random_range(0..IDENT_PARTS.len())];
            format!("{a}_{b}")
        })
        .collect();
    while out.len() < len {
        let indent = rng.random_range(0..4usize);
        for _ in 0..indent {
            out.extend_from_slice(b"    ");
        }
        let words = rng.random_range(2..7usize);
        for w in 0..words {
            if w > 0 {
                out.push(b' ');
            }
            if rng.random_range(0..3) == 0 {
                out.extend_from_slice(KEYWORDS[rng.random_range(0..KEYWORDS.len())].as_bytes());
            } else {
                out.extend_from_slice(pool[rng.random_range(0..pool.len())].as_bytes());
            }
        }
        match rng.random_range(0..4) {
            0 => out.extend_from_slice(b";"),
            1 => out.extend_from_slice(b" {"),
            2 => out.extend_from_slice(b"}"),
            _ => out.extend_from_slice(b"();"),
        }
        out.push(b'\n');
    }
    out.truncate(len);
    out
}

/// Sectioned binary: 16-byte header, code-like section (repeating
/// instruction-ish patterns), a pointer-table section (regular strides),
/// and a compressed-payload-like high-entropy tail.
fn binary_like(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    // Header.
    out.extend_from_slice(b"\x7fBIN");
    while out.len() < 16.min(len) {
        out.push(rng.random());
    }
    if out.len() >= len {
        out.truncate(len);
        return out;
    }
    let code_end = len * 55 / 100;
    let table_end = len * 75 / 100;
    // Code-like: a small dictionary of 4-byte "instructions", heavily
    // repeated with occasional literal operands.
    let dict: Vec<[u8; 4]> = (0..32)
        .map(|_| [rng.random(), rng.random(), rng.random(), 0x00])
        .collect();
    while out.len() < code_end {
        if rng.random_range(0..8) == 0 {
            out.extend_from_slice(&rng.random::<u32>().to_le_bytes());
        } else {
            out.extend_from_slice(&dict[rng.random_range(0..dict.len())]);
        }
    }
    // Table-like: monotone 4-byte entries with a fixed stride.
    let mut value: u32 = rng.random_range(0..1 << 16);
    let stride: u32 = rng.random_range(8..64);
    while out.len() < table_end {
        out.extend_from_slice(&value.to_le_bytes());
        value = value.wrapping_add(stride);
    }
    // High-entropy tail.
    while out.len() < len {
        out.push(rng.random());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exact_lengths() {
        for kind in [ContentKind::SourceLike, ContentKind::BinaryLike] {
            for len in [0usize, 1, 15, 16, 17, 1000, 65_536] {
                assert_eq!(
                    generate(&mut rng(1), kind, len).len(),
                    len,
                    "{kind:?} {len}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for kind in [ContentKind::SourceLike, ContentKind::BinaryLike] {
            assert_eq!(
                generate(&mut rng(42), kind, 5000),
                generate(&mut rng(42), kind, 5000)
            );
            assert_ne!(
                generate(&mut rng(42), kind, 5000),
                generate(&mut rng(43), kind, 5000)
            );
        }
    }

    #[test]
    fn source_is_ascii_lines() {
        let data = generate(&mut rng(3), ContentKind::SourceLike, 10_000);
        assert!(data.iter().all(u8::is_ascii));
        assert!(data.iter().filter(|&&b| b == b'\n').count() > 100);
    }

    #[test]
    fn source_self_similarity_compresses() {
        // Token reuse should make a file compress well against itself
        // shifted — i.e. the differ should find long matches.
        use ipr_delta::diff::{Differ, GreedyDiffer};
        let data = generate(&mut rng(5), ContentKind::SourceLike, 20_000);
        let script = GreedyDiffer::default().diff(&data, &data);
        assert_eq!(script.added_bytes(), 0);
    }

    #[test]
    fn binary_sections_have_different_entropy() {
        let data = generate(&mut rng(9), ContentKind::BinaryLike, 100_000);
        let distinct_grams = |s: &[u8]| {
            s.windows(4)
                .map(<[u8]>::to_vec)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        // The code section repeats a 32-entry dictionary, so it has far
        // fewer distinct 4-grams than the uniformly random tail.
        let code = &data[16..16_016];
        let tail = &data[80_000..96_000];
        assert!(distinct_grams(code) * 2 < distinct_grams(tail));
    }
}

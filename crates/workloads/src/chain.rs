//! Multi-version release chains: `v1 → v2 → … → vn`.
//!
//! Software distribution is rarely a single hop — a device several
//! releases behind applies a *chain* of deltas, and every hop must be
//! in-place reconstructible on its own. These generators produce seeded
//! release histories with per-hop severity patterns.

use crate::content::{generate, ContentKind};
use crate::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A linear release history of one artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionChain {
    /// The releases, oldest first; `releases[0]` is the initial version.
    releases: Vec<Vec<u8>>,
}

/// How severities vary along a chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainPattern {
    /// Every hop is a light patch release.
    Patches,
    /// Light hops with a heavy (major) release every `major_every` hops.
    MajorEvery(
        /// Period of major releases (≥ 1).
        usize,
    ),
    /// Severity cycles light → moderate → heavy.
    Escalating,
}

impl VersionChain {
    /// Generates a chain of `releases` versions starting from a
    /// `base_len`-byte initial release of `kind` content.
    ///
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `releases == 0` or `MajorEvery(0)` is requested.
    ///
    /// # Example
    ///
    /// ```
    /// use ipr_workloads::chain::{ChainPattern, VersionChain};
    /// use ipr_workloads::content::ContentKind;
    ///
    /// let chain = VersionChain::generate(7, ContentKind::BinaryLike, 16 * 1024,
    ///                                    5, ChainPattern::Patches);
    /// assert_eq!(chain.len(), 5);
    /// ```
    #[must_use]
    pub fn generate(
        seed: u64,
        kind: ContentKind,
        base_len: usize,
        releases: usize,
        pattern: ChainPattern,
    ) -> Self {
        assert!(releases > 0, "a chain needs at least one release");
        if let ChainPattern::MajorEvery(0) = pattern {
            panic!("major release period must be at least 1");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(releases);
        out.push(generate(&mut rng, kind, base_len));
        for hop in 1..releases {
            let profile = match pattern {
                ChainPattern::Patches => MutationProfile::light(),
                ChainPattern::MajorEvery(n) => {
                    if hop % n == 0 {
                        MutationProfile::heavy()
                    } else {
                        MutationProfile::light()
                    }
                }
                ChainPattern::Escalating => match hop % 3 {
                    1 => MutationProfile::light(),
                    2 => MutationProfile::default(),
                    _ => MutationProfile::heavy(),
                },
            };
            let next = mutate(&mut rng, out.last().expect("non-empty"), &profile);
            out.push(next);
        }
        Self { releases: out }
    }

    /// Number of releases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Whether the chain is empty (never true for generated chains).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// The releases, oldest first.
    #[must_use]
    pub fn releases(&self) -> &[Vec<u8>] {
        &self.releases
    }

    /// Release `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn release(&self, i: usize) -> &[u8] {
        &self.releases[i]
    }

    /// Iterates the consecutive `(old, new)` hops.
    pub fn hops(&self) -> impl Iterator<Item = (&[u8], &[u8])> + '_ {
        self.releases
            .windows(2)
            .map(|w| (w[0].as_slice(), w[1].as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let a = VersionChain::generate(1, ContentKind::SourceLike, 8192, 4, ChainPattern::Patches);
        let b = VersionChain::generate(1, ContentKind::SourceLike, 8192, 4, ChainPattern::Patches);
        assert_eq!(a, b);
        let c = VersionChain::generate(2, ContentKind::SourceLike, 8192, 4, ChainPattern::Patches);
        assert_ne!(a, c);
        // Consecutive releases differ.
        for (old, new) in a.hops() {
            assert_ne!(old, new);
        }
    }

    #[test]
    fn hop_count() {
        let chain = VersionChain::generate(
            3,
            ContentKind::BinaryLike,
            4096,
            6,
            ChainPattern::Escalating,
        );
        assert_eq!(chain.len(), 6);
        assert_eq!(chain.hops().count(), 5);
    }

    #[test]
    fn major_hops_change_more() {
        use ipr_delta::diff::{Differ, OnePassDiffer};
        let chain = VersionChain::generate(
            5,
            ContentKind::BinaryLike,
            64 * 1024,
            5,
            ChainPattern::MajorEvery(4),
        );
        let differ = OnePassDiffer::default();
        let literal: Vec<u64> = chain
            .hops()
            .map(|(old, new)| differ.diff(old, new).added_bytes())
            .collect();
        // Hop 3→4 (index 3) is the major one.
        assert!(
            literal[3] > literal[0] * 2,
            "major hop {} vs patch hop {}",
            literal[3],
            literal[0]
        );
    }

    #[test]
    fn patch_chain_stays_compressible() {
        use ipr_delta::diff::{Differ, GreedyDiffer};
        let chain = VersionChain::generate(
            9,
            ContentKind::SourceLike,
            32 * 1024,
            8,
            ChainPattern::Patches,
        );
        let differ = GreedyDiffer::default();
        for (old, new) in chain.hops() {
            let script = differ.diff(old, new);
            assert!(
                (script.added_bytes() as f64) < 0.3 * new.len() as f64,
                "patch hop too large"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one release")]
    fn empty_chain_rejected() {
        let _ = VersionChain::generate(1, ContentKind::SourceLike, 100, 0, ChainPattern::Patches);
    }
}

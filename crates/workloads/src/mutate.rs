//! Version mutation: derive a plausible "next release" from a base file.
//!
//! Software revisions are dominated by a few edit species: point edits,
//! inserted and deleted regions, and *moved* blocks. Block moves matter
//! most here — they are what cross read and write intervals and create
//! cycles in the CRWI digraph.

use rand::rngs::StdRng;
use rand::Rng;

/// Edit-rate profile controlling [`mutate`].
///
/// Each `*_ops` field is the number of edits of that species applied per
/// 64 KiB of base file (scaled, minimum one when non-zero); block sizes
/// are drawn uniformly from `block_range`.
#[derive(Clone, Debug, PartialEq)]
pub struct MutationProfile {
    /// Single-byte overwrites.
    pub point_ops: u32,
    /// Contiguous insertions of fresh random bytes.
    pub insert_ops: u32,
    /// Contiguous deletions.
    pub delete_ops: u32,
    /// Block moves (cut a block, reinsert elsewhere).
    pub move_ops: u32,
    /// Block duplications (copy a block elsewhere, growing the file).
    pub dup_ops: u32,
    /// Block size range for insert/delete/move/dup, in bytes.
    pub block_range: std::ops::Range<usize>,
}

impl Default for MutationProfile {
    /// A moderate revision: the regime where delta compression achieves
    /// the paper's 4–10× factors.
    fn default() -> Self {
        Self {
            point_ops: 24,
            insert_ops: 4,
            delete_ops: 4,
            move_ops: 3,
            dup_ops: 1,
            block_range: 64..2048,
        }
    }
}

impl MutationProfile {
    /// A near-identical revision (security-patch sized).
    #[must_use]
    pub fn light() -> Self {
        Self {
            point_ops: 4,
            insert_ops: 1,
            delete_ops: 1,
            move_ops: 1,
            dup_ops: 0,
            block_range: 16..256,
        }
    }

    /// A layout-preserving revision: point edits only, no length changes.
    ///
    /// Models firmware with a fixed section layout, where patches edit
    /// bytes in place. Every unshifted byte keeps its offset, so an
    /// in-place update touches only the storage blocks containing actual
    /// edits — the best case for flash wear (see the `flash` experiment).
    #[must_use]
    pub fn aligned() -> Self {
        Self {
            point_ops: 4,
            insert_ops: 0,
            delete_ops: 0,
            move_ops: 0,
            dup_ops: 0,
            block_range: 1..2,
        }
    }

    /// A heavy revision (major version): much more literal data.
    #[must_use]
    pub fn heavy() -> Self {
        Self {
            point_ops: 64,
            insert_ops: 16,
            delete_ops: 12,
            move_ops: 8,
            dup_ops: 4,
            block_range: 256..8192,
        }
    }

    fn scaled(&self, ops: u32, len: usize) -> u32 {
        if ops == 0 || len == 0 {
            return 0;
        }
        let scaled = (ops as u64 * len as u64 / (64 * 1024)) as u32;
        scaled.max(1)
    }
}

/// Applies the profile's edits to `base`, returning the mutated version.
///
/// Deterministic for a given RNG state. The result length may differ from
/// the base length (inserts, deletes and duplications resize the file).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use ipr_workloads::mutate::{mutate, MutationProfile};
///
/// let base = vec![7u8; 100_000];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let version = mutate(&mut rng, &base, &MutationProfile::default());
/// assert_ne!(version, base);
/// ```
#[must_use]
pub fn mutate(rng: &mut StdRng, base: &[u8], profile: &MutationProfile) -> Vec<u8> {
    let mut data = base.to_vec();
    let len0 = base.len();

    // Moves first: they act on the largest intact regions.
    for _ in 0..profile.scaled(profile.move_ops, len0) {
        block_move(rng, &mut data, &profile.block_range);
    }
    for _ in 0..profile.scaled(profile.dup_ops, len0) {
        block_dup(rng, &mut data, &profile.block_range);
    }
    for _ in 0..profile.scaled(profile.delete_ops, len0) {
        block_delete(rng, &mut data, &profile.block_range);
    }
    for _ in 0..profile.scaled(profile.insert_ops, len0) {
        block_insert(rng, &mut data, &profile.block_range);
    }
    for _ in 0..profile.scaled(profile.point_ops, len0) {
        if data.is_empty() {
            break;
        }
        let i = rng.random_range(0..data.len());
        data[i] = data[i].wrapping_add(rng.random_range(1..=255u8));
    }
    data
}

fn draw_block(rng: &mut StdRng, len: usize, range: &std::ops::Range<usize>) -> usize {
    let max = range.end.min(len.max(1));
    let min = range.start.min(max.saturating_sub(1)).max(1);
    if min >= max {
        min
    } else {
        rng.random_range(min..max)
    }
}

fn block_move(rng: &mut StdRng, data: &mut Vec<u8>, range: &std::ops::Range<usize>) {
    if data.len() < 2 {
        return;
    }
    let size = draw_block(rng, data.len(), range).min(data.len() - 1);
    let src = rng.random_range(0..=data.len() - size);
    let block: Vec<u8> = data.drain(src..src + size).collect();
    let dst = rng.random_range(0..=data.len());
    data.splice(dst..dst, block);
}

fn block_dup(rng: &mut StdRng, data: &mut Vec<u8>, range: &std::ops::Range<usize>) {
    if data.is_empty() {
        return;
    }
    let size = draw_block(rng, data.len(), range).min(data.len());
    let src = rng.random_range(0..=data.len() - size);
    let block: Vec<u8> = data[src..src + size].to_vec();
    let dst = rng.random_range(0..=data.len());
    data.splice(dst..dst, block);
}

fn block_delete(rng: &mut StdRng, data: &mut Vec<u8>, range: &std::ops::Range<usize>) {
    if data.len() < 2 {
        return;
    }
    let size = draw_block(rng, data.len(), range).min(data.len() - 1);
    let src = rng.random_range(0..=data.len() - size);
    data.drain(src..src + size);
}

fn block_insert(rng: &mut StdRng, data: &mut Vec<u8>, range: &std::ops::Range<usize>) {
    let size = draw_block(rng, data.len().max(64), range);
    let dst = rng.random_range(0..=data.len());
    let fresh: Vec<u8> = (0..size).map(|_| rng.random()).collect();
    data.splice(dst..dst, fresh);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic() {
        let base: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        let p = MutationProfile::default();
        assert_eq!(
            mutate(&mut rng(1), &base, &p),
            mutate(&mut rng(1), &base, &p)
        );
        assert_ne!(
            mutate(&mut rng(1), &base, &p),
            mutate(&mut rng(2), &base, &p)
        );
    }

    #[test]
    fn light_changes_less_than_heavy() {
        use ipr_delta::diff::{Differ, GreedyDiffer};
        let base: Vec<u8> = (0..100_000u32).map(|i| (i * 17 % 251) as u8).collect();
        let light = mutate(&mut rng(3), &base, &MutationProfile::light());
        let heavy = mutate(&mut rng(3), &base, &MutationProfile::heavy());
        let d = GreedyDiffer::default();
        let light_adds = d.diff(&base, &light).added_bytes();
        let heavy_adds = d.diff(&base, &heavy).added_bytes();
        assert!(
            light_adds < heavy_adds,
            "light {light_adds} vs heavy {heavy_adds}"
        );
    }

    #[test]
    fn still_mostly_similar_to_base() {
        use ipr_delta::diff::{Differ, GreedyDiffer};
        let base: Vec<u8> = (0..200_000u32).map(|i| (i * 13 % 251) as u8).collect();
        let version = mutate(&mut rng(4), &base, &MutationProfile::default());
        let script = GreedyDiffer::default().diff(&base, &version);
        // The default profile mirrors the paper's regime: most of the
        // version should still come from copies.
        let literal = script.added_bytes() as f64 / version.len() as f64;
        assert!(literal < 0.5, "literal fraction {literal}");
    }

    #[test]
    fn handles_tiny_bases() {
        for len in [0usize, 1, 2, 10] {
            let base = vec![9u8; len];
            let out = mutate(&mut rng(5), &base, &MutationProfile::default());
            // Must not panic; some growth from inserts is fine.
            let _ = out;
        }
    }

    #[test]
    fn moves_preserve_multiset_of_bytes() {
        let base: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let mut data = base.clone();
        block_move(&mut rng(6), &mut data, &(64..512));
        let mut a = base.clone();
        let mut b = data.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

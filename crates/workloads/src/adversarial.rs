//! The paper's adversarial constructions, realized as genuine delta
//! scripts over genuine file pairs.
//!
//! * [`tree_digraph`] — Figure 2: a binary-tree CRWI digraph with an edge
//!   from every leaf back to the root. Every root-to-leaf path closes a
//!   cycle, and the locally-minimum policy deletes the (cheap) leaf of
//!   each cycle where deleting the (single) root is globally optimal, so
//!   its cost exceeds the optimum by a factor that grows with the leaf
//!   count.
//! * [`quadratic_edges`] — Figure 3: a file pair of length `L = b²` whose
//!   CRWI digraph has `(b-1)·b = L - √L` edges, realizing the `Ω(|C|²)`
//!   edge bound (§6) while Lemma 1 caps edges at `L_V`.

use ipr_delta::{apply, Command, DeltaScript};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An adversarial workload: a delta script together with a consistent
/// reference/version file pair (`version == apply(script, reference)`).
#[derive(Clone, Debug)]
pub struct AdversarialCase {
    /// Human-readable description of the construction.
    pub label: String,
    /// The delta script whose CRWI digraph has the adversarial shape.
    pub script: DeltaScript,
    /// A reference file the script applies to.
    pub reference: Vec<u8>,
    /// The version file the script materializes.
    pub version: Vec<u8>,
}

/// Leaf copy length of [`tree_digraph`]; the cheapest vertices.
pub const TREE_LEAF_LEN: u64 = 64;
/// Internal (and root) copy length of [`tree_digraph`].
pub const TREE_INTERNAL_LEN: u64 = 128;
/// Gap between sibling groups so reads never spill into cousins.
const TREE_GAP: u64 = 256;

/// Builds the Figure 2 construction for a complete binary tree of the
/// given depth (`depth >= 1`; the tree has `2^depth` leaves and
/// `2^(depth+1) - 1` copy commands).
///
/// The CRWI digraph of the returned script is exactly the tree plus one
/// back edge per leaf:
///
/// * each internal node's read interval straddles the boundary between
///   its two children's (adjacent) write intervals;
/// * each leaf reads from inside the root's write interval.
///
/// Leaf copies are [`TREE_LEAF_LEN`] bytes and internal copies
/// [`TREE_INTERNAL_LEN`], so leaves are always the cheapest vertex on a
/// cycle and the locally-minimum policy deletes all `2^depth` of them,
/// while deleting the root alone is optimal.
///
/// # Panics
///
/// Panics if `depth == 0`.
///
/// # Example
///
/// ```
/// use ipr_workloads::adversarial::tree_digraph;
/// use ipr_core::CrwiGraph;
///
/// let case = tree_digraph(3);
/// let crwi = CrwiGraph::build(case.script.copies());
/// assert_eq!(crwi.node_count(), 15);        // 2^4 - 1 vertices
/// assert_eq!(crwi.edge_count(), 14 + 8);    // tree edges + leaf back edges
/// ```
#[must_use]
pub fn tree_digraph(depth: usize) -> AdversarialCase {
    assert!(depth >= 1, "tree depth must be at least 1");
    let half_straddle = TREE_LEAF_LEN; // 64 bytes into each child

    // Lay out per-level rows; siblings adjacent, sibling pairs separated by
    // a gap, rows separated by a gap.
    let mut offsets: Vec<Vec<u64>> = Vec::with_capacity(depth + 1);
    let mut cursor = 0u64;
    for level in 0..=depth {
        let node_len = if level == depth {
            TREE_LEAF_LEN
        } else {
            TREE_INTERNAL_LEN
        };
        let nodes = 1usize << level;
        let mut row = Vec::with_capacity(nodes);
        if level == 0 {
            row.push(cursor);
            cursor += node_len;
        } else {
            for pair in 0..nodes / 2 {
                if pair > 0 {
                    cursor += TREE_GAP;
                }
                row.push(cursor);
                cursor += node_len;
                row.push(cursor);
                cursor += node_len;
            }
        }
        offsets.push(row);
        cursor += TREE_GAP;
    }
    let total = cursor;

    // Copy commands.
    let mut copies = Vec::new();
    for level in 0..depth {
        let child_level = level + 1;
        for (i, &to) in offsets[level].iter().enumerate() {
            // Children 2i and 2i+1 are adjacent; read straddles their
            // boundary by `half_straddle` bytes on each side.
            let boundary = offsets[child_level][2 * i + 1];
            copies.push(Command::copy(
                boundary - half_straddle,
                to,
                TREE_INTERNAL_LEN,
            ));
        }
    }
    let root = offsets[0][0];
    for &to in &offsets[depth] {
        // Leaves read from inside the root's write interval.
        copies.push(Command::copy(root + 32, to, TREE_LEAF_LEN));
    }

    finish_case(
        format!("figure-2 tree, depth {depth}"),
        copies,
        total,
        0xF162,
    )
}

/// Builds the Figure 3 construction: a version file of `block * block`
/// bytes split into `block` blocks of `block` bytes. Block 0 is written
/// by `block` one-byte copies; every other block copies reference block 0
/// wholesale, so each of those `block - 1` copies conflicts with each of
/// the `block` one-byte writers: `(block - 1) * block` CRWI edges from
/// `2 * block - 1` commands.
///
/// # Panics
///
/// Panics if `block < 2`.
///
/// # Example
///
/// ```
/// use ipr_workloads::adversarial::quadratic_edges;
/// use ipr_core::CrwiGraph;
///
/// let case = quadratic_edges(16);
/// let crwi = CrwiGraph::build(case.script.copies());
/// assert_eq!(crwi.edge_count(), 15 * 16);
/// ```
#[must_use]
pub fn quadratic_edges(block: u64) -> AdversarialCase {
    assert!(block >= 2, "block size must be at least 2");
    let total = block * block;
    let mut copies = Vec::new();
    // Version block 0: one-byte identity copies (self-conflicts excluded).
    for i in 0..block {
        copies.push(Command::copy(i, i, 1));
    }
    // Version blocks 1..block: copies of reference block 0.
    for blk in 1..block {
        copies.push(Command::copy(0, blk * block, block));
    }
    finish_case(
        format!("figure-3 quadratic edges, {block} blocks of {block} bytes"),
        copies,
        total,
        0xF163,
    )
}

/// Fills uncovered target bytes with add commands, materializes a seeded
/// reference and derives the version by scratch application.
fn finish_case(
    label: String,
    mut commands: Vec<Command>,
    total: u64,
    seed: u64,
) -> AdversarialCase {
    // Find coverage gaps (commands currently all copies, disjoint writes).
    commands.sort_by_key(Command::to);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fillers = Vec::new();
    let mut cursor = 0u64;
    for cmd in &commands {
        let start = cmd.to();
        if start > cursor {
            let fill: Vec<u8> = (cursor..start).map(|_| rng.random()).collect();
            fillers.push(Command::add(cursor, fill));
        }
        cursor = cmd.write_interval().end();
    }
    if cursor < total {
        let fill: Vec<u8> = (cursor..total).map(|_| rng.random()).collect();
        fillers.push(Command::add(cursor, fill));
    }
    commands.extend(fillers);
    commands.sort_by_key(Command::to);

    let reference: Vec<u8> = (0..total).map(|_| rng.random()).collect();
    let script = DeltaScript::new(total, total, commands)
        .expect("adversarial construction tiles the target");
    let version = apply(&script, &reference).expect("reference length matches");
    AdversarialCase {
        label,
        script,
        reference,
        version,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_core::{
        apply_in_place, convert_to_in_place, is_in_place_safe, ConversionConfig, CrwiGraph,
        CyclePolicy,
    };

    #[test]
    fn tree_edge_structure() {
        for depth in 1..=4usize {
            let case = tree_digraph(depth);
            let crwi = CrwiGraph::build(case.script.copies());
            let nodes = (1 << (depth + 1)) - 1;
            let leaves = 1 << depth;
            assert_eq!(crwi.node_count(), nodes, "depth {depth}");
            assert_eq!(crwi.edge_count(), (nodes - 1) + leaves, "depth {depth}");
        }
    }

    #[test]
    fn tree_locally_minimum_deletes_every_leaf() {
        let depth = 4;
        let case = tree_digraph(depth);
        let reference = case.reference.clone();
        let out = convert_to_in_place(
            &case.script,
            &reference,
            &ConversionConfig::with_policy(CyclePolicy::LocallyMinimum),
        )
        .unwrap();
        assert_eq!(out.report.copies_converted, 1 << depth);
        // Each converted copy is a leaf: TREE_LEAF_LEN bytes.
        assert_eq!(out.report.bytes_converted, (1u64 << depth) * TREE_LEAF_LEN);
    }

    #[test]
    fn tree_exhaustive_deletes_only_root() {
        let depth = 3; // 15 vertices: exhaustive is feasible
        let case = tree_digraph(depth);
        let out = convert_to_in_place(
            &case.script,
            &case.reference,
            &ConversionConfig::with_policy(CyclePolicy::Exhaustive { limit: 20 }),
        )
        .unwrap();
        assert_eq!(out.report.copies_converted, 1);
        assert_eq!(out.report.bytes_converted, TREE_INTERNAL_LEN);
    }

    #[test]
    fn tree_case_round_trips_in_place() {
        let case = tree_digraph(3);
        for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
            let out = convert_to_in_place(
                &case.script,
                &case.reference,
                &ConversionConfig::with_policy(policy),
            )
            .unwrap();
            assert!(is_in_place_safe(&out.script));
            let mut buf = case.reference.clone();
            apply_in_place(&out.script, &mut buf).unwrap();
            assert_eq!(buf, case.version, "{policy}");
        }
    }

    #[test]
    fn quadratic_edge_count_exact() {
        for block in [2u64, 4, 8, 32] {
            let case = quadratic_edges(block);
            let crwi = CrwiGraph::build(case.script.copies());
            assert_eq!(
                crwi.edge_count() as u64,
                (block - 1) * block,
                "block {block}"
            );
            assert_eq!(crwi.node_count() as u64, 2 * block - 1);
        }
    }

    #[test]
    fn quadratic_graph_is_acyclic_reorder_suffices() {
        let case = quadratic_edges(16);
        let out = convert_to_in_place(&case.script, &case.reference, &ConversionConfig::default())
            .unwrap();
        assert_eq!(out.report.copies_converted, 0);
        assert_eq!(out.report.cycles_broken, 0);
        let mut buf = case.reference.clone();
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(buf, case.version);
    }

    #[test]
    fn lemma1_bound_respected_by_adversarial_cases() {
        for case in [tree_digraph(4), quadratic_edges(32)] {
            let crwi = CrwiGraph::build(case.script.copies());
            assert!(
                (crwi.edge_count() as u64) <= case.script.target_len(),
                "{}",
                case.label
            );
        }
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        let _ = tree_digraph(0);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn tiny_block_rejected() {
        let _ = quadratic_edges(1);
    }
}

//! Distribution archives: tar-like containers of member files.
//!
//! The paper's corpus is *packaged distributions* (GNU tools, BSD
//! releases) — single large artifacts concatenating many member files.
//! Their versions have a distinctive delta structure: most members are
//! untouched but *shifted* whenever an earlier member changes size, some
//! members are edited, and members appear and disappear. These generators
//! produce container pairs with exactly that structure.

use crate::content::{generate, ContentKind};
use crate::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Magic bytes of the toy container format.
const MAGIC: &[u8; 4] = b"IPAR";

/// Serializes members into a single container image.
///
/// Layout: magic, member count (u32 LE), then per member a name length
/// (u16 LE), the name bytes, a data length (u32 LE) and the data.
///
/// # Panics
///
/// Panics if a name exceeds `u16::MAX` bytes or a member exceeds
/// `u32::MAX` bytes.
#[must_use]
pub fn build_archive(members: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(
        &u32::try_from(members.len())
            .expect("member count")
            .to_le_bytes(),
    );
    for (name, data) in members {
        let name_len = u16::try_from(name.len()).expect("name length fits u16");
        out.extend_from_slice(&name_len.to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        let data_len = u32::try_from(data.len()).expect("member length fits u32");
        out.extend_from_slice(&data_len.to_le_bytes());
        out.extend_from_slice(data);
    }
    out
}

/// Parses a container image back into members.
///
/// Returns `None` on any structural error (wrong magic, truncation,
/// invalid UTF-8 names).
#[must_use]
pub fn parse_archive(image: &[u8]) -> Option<Vec<(String, Vec<u8>)>> {
    let rest = image.strip_prefix(MAGIC.as_slice())?;
    let (count_bytes, mut rest) = rest.split_at_checked(4)?;
    let count = u32::from_le_bytes(count_bytes.try_into().ok()?) as usize;
    let mut members = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let (len_bytes, r) = rest.split_at_checked(2)?;
        let name_len = u16::from_le_bytes(len_bytes.try_into().ok()?) as usize;
        let (name_bytes, r) = r.split_at_checked(name_len)?;
        let name = std::str::from_utf8(name_bytes).ok()?.to_string();
        let (len_bytes, r) = r.split_at_checked(4)?;
        let data_len = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
        let (data, r) = r.split_at_checked(data_len)?;
        members.push((name, data.to_vec()));
        rest = r;
    }
    rest.is_empty().then_some(members)
}

/// A pair of distribution images: consecutive releases of the same
/// packaged software.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistributionPair {
    /// The old release image.
    pub old: Vec<u8>,
    /// The new release image.
    pub new: Vec<u8>,
    /// Members edited between the releases.
    pub edited_members: usize,
    /// Members added in the new release.
    pub added_members: usize,
    /// Members removed from the old release.
    pub removed_members: usize,
}

/// Generates a release pair of a `members`-file distribution with member
/// sizes in `member_len` (bytes). Roughly one in four members is edited,
/// one member is added and one removed per release — so most members
/// survive byte-identical but *shifted*, the structure that makes
/// distribution deltas compress so well (§2's "factor of 4 to 10").
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `members == 0` or `member_len` is empty.
///
/// # Example
///
/// ```
/// use ipr_workloads::archive::distribution_pair;
///
/// let pair = distribution_pair(7, 20, 1024..4096);
/// assert_ne!(pair.old, pair.new);
/// assert!(pair.edited_members > 0);
/// ```
#[must_use]
pub fn distribution_pair(
    seed: u64,
    members: usize,
    member_len: std::ops::Range<usize>,
) -> DistributionPair {
    assert!(members > 0, "a distribution needs at least one member");
    assert!(
        !member_len.is_empty(),
        "member length range must be non-empty"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut files: Vec<(String, Vec<u8>)> = (0..members)
        .map(|i| {
            let kind = if rng.random_bool(0.5) {
                ContentKind::SourceLike
            } else {
                ContentKind::BinaryLike
            };
            let len = rng.random_range(member_len.clone());
            let ext = match kind {
                ContentKind::SourceLike => "c",
                ContentKind::BinaryLike => "o",
            };
            (
                format!("pkg/src/file-{i:03}.{ext}"),
                generate(&mut rng, kind, len),
            )
        })
        .collect();
    let old = build_archive(&files);

    // Next release: edit ~1/4 of members, drop one, add one.
    let mut edited = 0;
    for (_, data) in &mut files {
        if rng.random_bool(0.25) {
            *data = mutate(&mut rng, data, &MutationProfile::light());
            edited += 1;
        }
    }
    let removed = if files.len() > 1 {
        let victim = rng.random_range(0..files.len());
        files.remove(victim);
        1
    } else {
        0
    };
    let len = rng.random_range(member_len.clone());
    let insert_at = rng.random_range(0..=files.len());
    files.insert(
        insert_at,
        (
            "pkg/src/new-module.c".to_string(),
            generate(&mut rng, ContentKind::SourceLike, len),
        ),
    );
    let new = build_archive(&files);

    DistributionPair {
        old,
        new,
        edited_members: edited,
        added_members: 1,
        removed_members: removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipr_delta::diff::{Differ, GreedyDiffer};

    #[test]
    fn container_round_trips() {
        let members = vec![
            ("a/b.txt".to_string(), b"hello".to_vec()),
            ("empty".to_string(), Vec::new()),
            ("c".to_string(), vec![0xff; 1000]),
        ];
        let image = build_archive(&members);
        assert_eq!(parse_archive(&image), Some(members));
    }

    #[test]
    fn parse_rejects_corruption() {
        let members = vec![("x".to_string(), vec![1, 2, 3])];
        let image = build_archive(&members);
        assert!(parse_archive(&image[..image.len() - 1]).is_none()); // truncated
        assert!(parse_archive(b"NOPE").is_none());
        let mut extra = image.clone();
        extra.push(0);
        assert!(parse_archive(&extra).is_none()); // trailing bytes
    }

    #[test]
    fn distribution_pair_deterministic() {
        let a = distribution_pair(3, 12, 500..2000);
        let b = distribution_pair(3, 12, 500..2000);
        assert_eq!(a, b);
        assert_ne!(a, distribution_pair(4, 12, 500..2000));
    }

    #[test]
    fn releases_are_valid_archives_with_expected_membership() {
        let pair = distribution_pair(9, 16, 500..2000);
        let old = parse_archive(&pair.old).expect("old parses");
        let new = parse_archive(&pair.new).expect("new parses");
        assert_eq!(old.len(), 16);
        assert_eq!(new.len(), 16 - pair.removed_members + pair.added_members);
        assert!(new.iter().any(|(n, _)| n == "pkg/src/new-module.c"));
    }

    #[test]
    fn distribution_deltas_compress_despite_member_shifts() {
        // Removing an early member shifts every later byte, yet the delta
        // must stay small: unchanged members are found at their new
        // offsets.
        let pair = distribution_pair(11, 24, 1000..4000);
        let script = GreedyDiffer::default().diff(&pair.old, &pair.new);
        assert_eq!(ipr_delta::apply(&script, &pair.old).unwrap(), pair.new);
        let literal = script.added_bytes() as f64 / pair.new.len() as f64;
        assert!(literal < 0.35, "literal fraction {literal}");
    }

    #[test]
    fn distribution_delta_round_trips_in_place() {
        use ipr_core::{apply_in_place, convert_to_in_place, required_capacity, ConversionConfig};
        let pair = distribution_pair(13, 10, 1000..3000);
        let script = GreedyDiffer::default().diff(&pair.old, &pair.new);
        let out = convert_to_in_place(&script, &pair.old, &ConversionConfig::default()).unwrap();
        let mut buf = pair.old.clone();
        buf.resize(required_capacity(&out.script) as usize, 0);
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(&buf[..pair.new.len()], &pair.new[..]);
        // The rebuilt image is still a valid archive.
        assert!(parse_archive(&buf[..pair.new.len()]).is_some());
    }
}

//! Seeded corpora of (reference, version) file pairs standing in for the
//! paper's GNU/BSD software distributions.

use crate::content::{generate, ContentKind};
use crate::mutate::{mutate, MutationProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One reference/version pair of the corpus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilePair {
    /// Synthetic file name (`src-0013.c`, `bin-0002.img`, …).
    pub name: String,
    /// The old version (on the device).
    pub reference: Vec<u8>,
    /// The new version (to be distributed).
    pub version: Vec<u8>,
}

/// Specification of a synthetic software-distribution corpus.
///
/// Everything is derived deterministically from `seed`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Number of file pairs.
    pub pairs: usize,
    /// Smallest reference size in bytes.
    pub min_len: usize,
    /// Largest reference size in bytes.
    pub max_len: usize,
    /// Master seed.
    pub seed: u64,
    /// Percentage (0–100) of source-like files; the rest are binary-like.
    pub source_percent: u8,
}

impl Default for CorpusSpec {
    /// 60 pairs, 4 KiB – 256 KiB, an even source/binary mix.
    fn default() -> Self {
        Self {
            pairs: 60,
            min_len: 4 * 1024,
            max_len: 256 * 1024,
            seed: 0x1998_0624, // PODC '98
            source_percent: 50,
        }
    }
}

impl CorpusSpec {
    /// A small corpus for fast unit tests.
    #[must_use]
    pub fn small() -> Self {
        Self {
            pairs: 10,
            min_len: 2 * 1024,
            max_len: 16 * 1024,
            ..Self::default()
        }
    }

    /// Generates the corpus.
    ///
    /// Mutation severity cycles through light / default / heavy profiles so
    /// the corpus spans near-identical to heavily-revised pairs.
    #[must_use]
    pub fn build(&self) -> Vec<FilePair> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.pairs)
            .map(|i| {
                let len = if self.max_len > self.min_len {
                    // Log-uniform sizes: small files dominate real trees.
                    let lo = (self.min_len.max(1) as f64).ln();
                    let hi = (self.max_len as f64).ln();
                    let x: f64 = rng.random_range(lo..hi);
                    x.exp() as usize
                } else {
                    self.min_len
                };
                let kind = if rng.random_range(0..100u8) < self.source_percent {
                    ContentKind::SourceLike
                } else {
                    ContentKind::BinaryLike
                };
                // Severity mix weighted toward small revisions (patch
                // releases dominate real distribution traffic), calibrated
                // so corpus-wide compression lands near the paper's ~15%
                // regime.
                let profile = match i % 6 {
                    0..=2 => MutationProfile::light(),
                    3 | 4 => MutationProfile::default(),
                    _ => MutationProfile::heavy(),
                };
                let reference = generate(&mut rng, kind, len);
                let version = mutate(&mut rng, &reference, &profile);
                let name = match kind {
                    ContentKind::SourceLike => format!("src-{i:04}.c"),
                    ContentKind::BinaryLike => format!("bin-{i:04}.img"),
                };
                FilePair {
                    name,
                    reference,
                    version,
                }
            })
            .collect()
    }
}

/// Loads a corpus from two directory trees holding the *same relative
/// paths*: `reference_dir/X` is the old version of `version_dir/X`.
///
/// This is how the paper's actual evaluation corpus (two releases of a
/// software distribution, unpacked side by side) plugs into the
/// experiment harnesses: point `IPR_CORPUS_OLD` / `IPR_CORPUS_NEW` at the
/// trees and every experiment runs on real data instead of the synthetic
/// corpus.
///
/// Files present in only one tree are skipped (they have no counterpart
/// to delta against); directories are walked recursively; pairs are
/// sorted by relative path for determinism.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading either tree.
pub fn from_dirs(
    reference_dir: &std::path::Path,
    version_dir: &std::path::Path,
) -> std::io::Result<Vec<FilePair>> {
    fn walk(
        root: &std::path::Path,
        dir: &std::path::Path,
        out: &mut Vec<std::path::PathBuf>,
    ) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                walk(root, &path, out)?;
            } else {
                out.push(
                    path.strip_prefix(root)
                        .expect("walked paths live under the root")
                        .to_path_buf(),
                );
            }
        }
        Ok(())
    }
    let mut relative = Vec::new();
    walk(reference_dir, reference_dir, &mut relative)?;
    relative.sort();
    let mut pairs = Vec::new();
    for rel in relative {
        let new_path = version_dir.join(&rel);
        if !new_path.is_file() {
            continue; // no counterpart: nothing to delta against
        }
        pairs.push(FilePair {
            name: rel.to_string_lossy().into_owned(),
            reference: std::fs::read(reference_dir.join(&rel))?,
            version: std::fs::read(new_path)?,
        });
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let spec = CorpusSpec::small();
        assert_eq!(spec.build(), spec.build());
        let other = CorpusSpec {
            seed: 99,
            ..CorpusSpec::small()
        };
        assert_ne!(spec.build(), other.build());
    }

    #[test]
    fn respects_pair_count_and_sizes() {
        let spec = CorpusSpec {
            pairs: 7,
            min_len: 1000,
            max_len: 2000,
            ..CorpusSpec::small()
        };
        let corpus = spec.build();
        assert_eq!(corpus.len(), 7);
        for pair in &corpus {
            assert!(pair.reference.len() >= 1000, "{}", pair.name);
            assert!(pair.reference.len() <= 2000, "{}", pair.name);
            assert!(!pair.name.is_empty());
        }
    }

    #[test]
    fn mix_of_kinds_present() {
        let corpus = CorpusSpec {
            pairs: 30,
            ..CorpusSpec::small()
        }
        .build();
        let sources = corpus.iter().filter(|p| p.name.starts_with("src")).count();
        assert!(sources > 0 && sources < 30);
    }

    #[test]
    fn from_dirs_pairs_by_relative_path() {
        let root = std::env::temp_dir().join(format!("ipr-corpus-test-{}", std::process::id()));
        let old = root.join("old");
        let new = root.join("new");
        std::fs::create_dir_all(old.join("sub")).unwrap();
        std::fs::create_dir_all(new.join("sub")).unwrap();
        std::fs::write(old.join("a.bin"), b"old a").unwrap();
        std::fs::write(new.join("a.bin"), b"new a!").unwrap();
        std::fs::write(old.join("sub/b.bin"), b"old b").unwrap();
        std::fs::write(new.join("sub/b.bin"), b"new b").unwrap();
        std::fs::write(old.join("only-old.bin"), b"gone").unwrap();
        std::fs::write(new.join("only-new.bin"), b"fresh").unwrap();

        let pairs = from_dirs(&old, &new).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].name, "a.bin");
        assert_eq!(pairs[0].reference, b"old a");
        assert_eq!(pairs[0].version, b"new a!");
        assert!(pairs[1].name.ends_with("b.bin"));

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn from_dirs_missing_root_errors() {
        let bogus = std::path::Path::new("/nonexistent/ipr-test-dir");
        assert!(from_dirs(bogus, bogus).is_err());
    }

    #[test]
    fn versions_are_deltas_of_references() {
        use ipr_delta::diff::{Differ, OnePassDiffer};
        let corpus = CorpusSpec::small().build();
        let differ = OnePassDiffer::default();
        let mut compressible = 0;
        for pair in &corpus {
            let script = differ.diff(&pair.reference, &pair.version);
            assert_eq!(
                ipr_delta::apply(&script, &pair.reference).unwrap(),
                pair.version
            );
            if (script.added_bytes() as f64) < 0.5 * pair.version.len() as f64 {
                compressible += 1;
            }
        }
        // Most pairs must be delta-compressible, like the paper's corpus.
        assert!(
            compressible * 10 >= corpus.len() * 7,
            "{compressible}/{}",
            corpus.len()
        );
    }
}

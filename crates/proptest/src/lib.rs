//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no crate registry, so this workspace vendors
//! the slice of proptest its tests use: the [`proptest!`] macro,
//! `prop_assert*` macros, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, [`collection::vec`], [`sample::Index`], and
//! [`test_runner::Config`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   per-test RNG seed; re-running the test replays the identical sequence
//!   (generation is deterministic per test name), so failures remain
//!   reproducible even without minimization.
//! * **No persistence files.** Every run executes `Config::cases` fresh
//!   deterministic cases.
//!
//! The surface is intentionally small; extend it in-repo if a new test
//! needs more of the upstream API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case driving: configuration, RNG, failure type.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion (e.g. `prop_assert!`) did not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Result type of a generated test-case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test generator.
    ///
    /// Seeded from the test's name so distinct tests explore distinct
    /// sequences but every run of one test replays the same cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates the RNG for the named test.
        #[must_use]
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-spread seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical whole-domain strategy, built by [`any`].
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// Strategy over the whole domain of `A` (see [`any`]).
    #[derive(Clone, Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`: uniform over its domain.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<E::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` values with
    /// length in `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An abstract index into a collection of as-yet-unknown length,
    /// generated by `any::<Index>()` and resolved with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Self(raw)
        }

        /// Resolves to a concrete index in `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }

        /// Resolves against a slice and returns the element.
        ///
        /// # Panics
        ///
        /// Panics if `slice` is empty.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use super::strategy::{any, Just, Strategy};
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module-tree alias so `prop::sample::Index` etc. resolve as they do
    /// upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running [`test_runner::Config::cases`] random cases.
///
/// Supports the upstream `#![proptest_config(expr)]` header, doc comments
/// and attributes on each test, tuple-pattern bindings, and early
/// `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch [$cfg] $($rest)*);
    };
    (@munch [$cfg:expr]) => {};
    (@munch [$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let result: $crate::test_runner::TestCaseResult =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::proptest!(@munch [$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch [$crate::test_runner::Config::default()] $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            ),
        }
    };
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: both sides equal `{:?}`",
                left
            ),
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges honor their bounds.
        #[test]
        fn range_bounds(v in 10u64..20, w in 3usize..=5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((3..=5).contains(&w));
        }

        /// Tuple + map + vec composition.
        #[test]
        fn composed_strategies(
            pairs in prop::collection::vec((0u32..10, any::<bool>()), 0..8),
            (a, b) in (1u8..5, 1u8..5).prop_map(|(x, y)| (x + y, x)),
        ) {
            prop_assert!(pairs.len() < 8);
            for (n, _) in &pairs {
                prop_assert!(*n < 10);
            }
            prop_assert!(a >= b, "{} < {}", a, b);
            prop_assert_eq!(a - b, a - b);
            prop_assert_ne!(a, 0);
        }

        /// prop_flat_map produces dependent values.
        #[test]
        fn flat_mapped(v in (1usize..10).prop_flat_map(|n| prop::collection::vec(0u8..=255, n))) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 10);
        }

        /// Index resolves in bounds and early return works.
        #[test]
        fn index_in_bounds(idx in any::<prop::sample::Index>(), len in 0usize..40) {
            if len == 0 {
                return Ok(());
            }
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn exact_size_vec() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic("exact");
        let s = crate::collection::vec(0u8..4, 7usize);
        assert_eq!(s.sample(&mut rng).len(), 7);
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn failure_reports_case() {
        let result = std::panic::catch_unwind(|| {
            let config = crate::test_runner::Config::with_cases(5);
            let mut _rng = crate::test_runner::TestRng::deterministic("fail");
            for case in 0..config.cases {
                let r: crate::test_runner::TestCaseResult =
                    Err(crate::test_runner::TestCaseError::fail("boom"));
                if let Err(e) = r {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("case 1/5"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }
}

//! Edge-case coverage for conversion, scheduling and resumable apply that
//! the unit tests do not reach.

use ipr_core::resumable::{resume_in_place, Journal, Progress};
use ipr_core::{
    apply_in_place, convert_to_in_place, count_wr_conflicts, is_in_place_safe, required_capacity,
    ConversionConfig, CrwiGraph, CyclePolicy, ParallelSchedule,
};
use ipr_delta::codec::Format;
use ipr_delta::{Command, Copy, DeltaScript};

#[test]
fn single_command_scripts() {
    let reference: Vec<u8> = (0u8..32).collect();
    for script in [
        DeltaScript::new(32, 32, vec![Command::copy(0, 0, 32)]).unwrap(),
        DeltaScript::new(32, 8, vec![Command::copy(24, 0, 8)]).unwrap(),
        DeltaScript::new(32, 4, vec![Command::add(0, vec![1; 4])]).unwrap(),
        DeltaScript::new(32, 16, vec![Command::copy(8, 0, 16)]).unwrap(), // self-overlap
    ] {
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
        assert_eq!(out.report.cycles_broken, 0);
        assert!(is_in_place_safe(&out.script));
        let expected = ipr_delta::apply(&script, &reference).unwrap();
        let mut buf = reference.clone();
        buf.resize(required_capacity(&out.script) as usize, 0);
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(&buf[..expected.len()], &expected[..]);
    }
}

#[test]
fn empty_version_converts() {
    let script = DeltaScript::new(16, 0, vec![]).unwrap();
    let reference = vec![9u8; 16];
    let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
    assert!(out.script.is_empty());
    assert_eq!(out.report.input_copies, 0);
    assert_eq!(out.report.edges, 0);
}

#[test]
fn conversion_report_cost_matches_format_cost_model() {
    // Force conversions via a 2-cycle; the reported cost must equal the
    // cost model's value for the converted copy.
    let script =
        DeltaScript::new(16, 16, vec![Command::copy(8, 0, 8), Command::copy(0, 8, 8)]).unwrap();
    let reference: Vec<u8> = (0u8..16).collect();
    for format in [Format::InPlace, Format::PaperInPlace, Format::Improved] {
        let out = convert_to_in_place(
            &script,
            &reference,
            &ConversionConfig {
                policy: CyclePolicy::LocallyMinimum,
                cost_format: format,
            },
        )
        .unwrap();
        assert_eq!(out.report.copies_converted, 1);
        let adds = out.script.adds();
        assert_eq!(adds.len(), 1);
        let converted_copy = Copy {
            from: if adds[0].to == 0 { 8 } else { 0 },
            to: adds[0].to,
            len: 8,
        };
        assert_eq!(
            out.report.conversion_cost,
            format.conversion_cost(&converted_copy),
            "{format}"
        );
    }
}

#[test]
fn conflicts_eliminated_not_just_reduced() {
    // Dense random-ish move scripts: conversion output must have exactly
    // zero conflicts, whatever the input looked like.
    let mut commands = Vec::new();
    let blocks = 32u64;
    for i in 0..blocks {
        let from = ((i * 17 + 5) % blocks) * 8;
        commands.push(Command::copy(from, i * 8, 8));
    }
    let script = DeltaScript::new(blocks * 8, blocks * 8, commands).unwrap();
    let reference: Vec<u8> = (0..blocks * 8).map(|i| (i % 251) as u8).collect();
    assert!(count_wr_conflicts(&script) > 0);
    for policy in [CyclePolicy::ConstantTime, CyclePolicy::LocallyMinimum] {
        let out = convert_to_in_place(&script, &reference, &ConversionConfig::with_policy(policy))
            .unwrap();
        assert_eq!(count_wr_conflicts(&out.script), 0, "{policy}");
        let expected = ipr_delta::apply(&script, &reference).unwrap();
        let mut buf = reference.clone();
        apply_in_place(&out.script, &mut buf).unwrap();
        assert_eq!(buf, expected, "{policy}");
    }
}

#[test]
fn schedule_of_quadratic_graph_is_two_waves() {
    // Fig. 3 construction (inlined to avoid a cyclic dev-dependency on
    // ipr-workloads): all big copies read what the 1-byte commands write —
    // after conversion the big copies form wave 1, the small ones wave 2.
    // Dense edges, tiny critical path.
    let b = 32u64;
    let mut commands = Vec::new();
    for i in 0..b {
        commands.push(Command::copy(i, i, 1));
    }
    for blk in 1..b {
        commands.push(Command::copy(0, blk * b, b));
    }
    let script = DeltaScript::new(b * b, b * b, commands).unwrap();
    let reference: Vec<u8> = (0..b * b).map(|i| (i % 251) as u8).collect();
    let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
    let plan = ParallelSchedule::plan(&out.script).unwrap();
    assert_eq!(plan.wave_count(), 2);
    assert!(plan.parallelism() > 10.0);
}

#[test]
fn resumable_chunk_larger_than_any_command() {
    let reference: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
    let mut version = reference.clone();
    version.rotate_left(100);
    let script = ipr_delta::diff::Differ::diff(
        &ipr_delta::diff::GreedyDiffer::default(),
        &reference,
        &version,
    );
    let out = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
    let mut buf = reference.clone();
    buf.resize(required_capacity(&out.script) as usize, 0);
    let mut journal = Journal::new();
    // Chunk far larger than the whole file: one chunk per command.
    let p = resume_in_place(&out.script, &mut buf, &mut journal, 1 << 20, u64::MAX).unwrap();
    assert_eq!(p, Progress::Complete);
    assert_eq!(&buf[..version.len()], &version[..]);
}

#[test]
fn crwi_graph_empty_and_single() {
    let empty = CrwiGraph::build(vec![]);
    assert_eq!(empty.node_count(), 0);
    assert_eq!(empty.edge_count(), 0);
    let single = CrwiGraph::build(vec![Copy {
        from: 0,
        to: 100,
        len: 4,
    }]);
    assert_eq!(single.node_count(), 1);
    assert_eq!(single.edge_count(), 0);
}

#[test]
fn exhaustive_policy_on_realistic_small_pair_not_worse() {
    let reference: Vec<u8> = (0..3000u32).map(|i| (i * 11 % 251) as u8).collect();
    let mut version = reference.clone();
    version.rotate_left(500);
    let script = ipr_delta::diff::Differ::diff(
        &ipr_delta::diff::GreedyDiffer::default(),
        &reference,
        &version,
    );
    let Ok(exact) = convert_to_in_place(
        &script,
        &reference,
        &ConversionConfig::with_policy(CyclePolicy::Exhaustive { limit: 18 }),
    ) else {
        return; // component too large: nothing to compare
    };
    let lm = convert_to_in_place(&script, &reference, &ConversionConfig::default()).unwrap();
    assert!(exact.report.conversion_cost <= lm.report.conversion_cost);
    assert!(is_in_place_safe(&exact.script));
}
